"""Benchmark suite: regenerates every table and figure of the paper."""
