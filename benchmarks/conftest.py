"""Shared helpers for the benchmark suite.

Every file under ``benchmarks/`` regenerates one table or figure of the
paper's evaluation (Section 6).  The experiments run a full simulated
deployment once (``benchmark.pedantic`` with a single round -- a run *is*
the measurement; re-running it only repeats the same deterministic
simulation) and print the resulting series in the paper's format.

Sizing is selected with ``REPRO_BENCH_PROFILE`` = smoke | quick | full
(default: quick).  Shape assertions (who wins, which direction curves
bend) are part of every benchmark, so ``pytest benchmarks/`` failing
means the reproduction lost a qualitative result, not a absolute number.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def profile():
    from repro.bench.experiments import bench_profile

    return bench_profile()
