"""Smoke tests for the perf microbenchmark suite.

One tiny iteration per benchmark, no thresholds: the goal is that
``benchmarks/perf`` cannot bit-rot, not to gate CI on host speed.  Real
measurements come from ``tools/perf_report.py`` (see docs/performance.md).
"""

from __future__ import annotations

import pytest

from repro.bench.perfsuite import (
    BENCHMARKS,
    SMOKE_KWARGS,
    build_report,
    run_suite,
)


@pytest.mark.parametrize("name", sorted(BENCHMARKS))
def test_microbench_runs(name):
    result = BENCHMARKS[name](**SMOKE_KWARGS[name])
    assert result["name"] == name
    assert result["value"] > 0
    assert result["wall_s"] > 0
    assert result["work"] > 0


def test_tpcc_e2e_digest_is_deterministic():
    first = BENCHMARKS["tpcc_e2e"](**SMOKE_KWARGS["tpcc_e2e"])
    second = BENCHMARKS["tpcc_e2e"](**SMOKE_KWARGS["tpcc_e2e"])
    assert first["digest"] == second["digest"]


def test_report_shape_and_speedup_math():
    suite = run_suite(["snapshot"], repeat=1, smoke=True, verbose=False)
    report = build_report(suite, before=suite)
    entry = report["benchmarks"]["snapshot"]
    assert entry["speedup"] == pytest.approx(1.0)
    assert report["schema"] == "repro-perf/1"


def test_report_flags_digest_mismatch():
    after = {"tpcc_e2e": {"value": 2.0, "digest": "aaa"}}
    before = {"tpcc_e2e": {"value": 1.0, "digest": "bbb"}}
    report = build_report(after, before)
    assert report["invariance"]["identical"] is False
