"""Ablation: request batching on/off (design choice of Section 5.1).

The paper credits aggressive batching for Tell's low request counts;
turning it off sends every storage operation as its own round trip.
Expected: substantially more messages per transaction and lower
throughput without batching.
"""

from benchmarks.conftest import run_once
from repro.bench.experiments import run_ablation_batching
from repro.bench.tables import print_table


def test_ablation_batching(benchmark):
    rows = run_once(benchmark, run_ablation_batching)
    print_table(
        ["Batching", "TpmC", "Messages/txn", "Latency (ms)"],
        [
            ("on" if r["batching"] else "off", r["tpmc"],
             r["messages_per_txn"], r["latency_ms"])
            for r in rows
        ],
        title="Ablation: operation batching (standard mix, RF1)",
    )
    on = next(r for r in rows if r["batching"])
    off = next(r for r in rows if not r["batching"])
    assert off["messages_per_txn"] > on["messages_per_txn"] * 1.5
    assert on["tpmc"] > off["tpmc"]
