"""Ablation: continuous tid ranges vs interleaved tids (2 commit mgrs).

Section 4.2 opts for continuous tid ranges "because it is simple to
implement" but notes the approach's higher abort rate and lists
interleaved tid ranges as near-future work.  This repository implements
both; the ablation compares them: interleaved tids keep snapshots from
different managers finely ordered, which should not *hurt* the abort
rate, while removing the shared counter round trips entirely.
"""

from benchmarks.conftest import run_once
from repro.bench.experiments import bench_profile, run_tell, tell_config
from repro.bench.tables import print_table


def run_comparison():
    profile = bench_profile()
    pns = max(profile.pn_counts)
    rows = []
    for interleaved in (False, True):
        metrics = run_tell(tell_config(
            profile,
            processing_nodes=pns,
            commit_managers=2,
            interleaved_tids=interleaved,
        ))
        rows.append({
            "scheme": "interleaved" if interleaved else "continuous-ranges",
            "tpmc": metrics.tpmc,
            "abort_rate": metrics.abort_rate,
        })
    return rows


def test_ablation_interleaved_tids(benchmark):
    rows = run_once(benchmark, run_comparison)
    print_table(
        ["tid scheme", "TpmC", "Abort rate"],
        [(r["scheme"], r["tpmc"], f"{r['abort_rate'] * 100:.2f}%")
         for r in rows],
        title="Ablation: tid assignment scheme (2 commit managers)",
    )
    continuous = next(r for r in rows if r["scheme"] == "continuous-ranges")
    interleaved = next(r for r in rows if r["scheme"] == "interleaved")
    # Interleaving must be competitive: no large throughput regression.
    assert interleaved["tpmc"] > continuous["tpmc"] * 0.7
