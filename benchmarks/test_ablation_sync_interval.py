"""Ablation: commit-manager snapshot synchronization interval.

Section 4.2 synchronizes multi-manager snapshots through the store every
~1 ms and claims the delay "did not noticeably affect the overall abort
rate".  This sweep verifies the claim and shows where it stops holding:
longer delays mean staler snapshots, hence (slightly) more conflicts.
"""

from benchmarks.conftest import run_once
from repro.bench.experiments import run_ablation_sync_interval
from repro.bench.tables import print_table


def test_ablation_sync_interval(benchmark):
    rows = run_once(benchmark, run_ablation_sync_interval)
    print_table(
        ["Sync interval (ms)", "TpmC", "Abort rate"],
        [
            (r["sync_interval_ms"], r["tpmc"], f"{r['abort_rate'] * 100:.2f}%")
            for r in rows
        ],
        title="Ablation: commit-manager sync interval (2 CMs)",
    )
    rows.sort(key=lambda r: r["sync_interval_ms"])
    # The paper's claim at ~1 ms: no dramatic impact on throughput.
    fast, default = rows[0], rows[1]
    assert default["tpmc"] > fast["tpmc"] * 0.7
    # Staleness never *reduces* conflicts by design; allow noise.
    assert rows[-1]["abort_rate"] >= rows[0]["abort_rate"] - 0.05
