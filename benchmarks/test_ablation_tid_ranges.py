"""Ablation: tid range size (Section 4.2).

Commit managers acquire *ranges* of tids (e.g. 256) from the shared
counter to avoid making it a bottleneck; the paper notes the approach's
cost is a (slightly) higher abort rate from coarser snapshot ordering.
Range size 1 means one storage round trip per transaction start.
"""

from benchmarks.conftest import run_once
from repro.bench.experiments import run_ablation_tid_ranges
from repro.bench.tables import print_table


def test_ablation_tid_ranges(benchmark):
    rows = run_once(benchmark, run_ablation_tid_ranges)
    print_table(
        ["tid range", "TpmC", "Abort rate", "Latency (ms)"],
        [
            (r["tid_range"], r["tpmc"], f"{r['abort_rate'] * 100:.2f}%",
             r["latency_ms"])
            for r in rows
        ],
        title="Ablation: tid range size (standard mix, RF1)",
    )
    by_range = {r["tid_range"]: r for r in rows}
    # Ranges amortize the counter round trip; range 1 must not be faster.
    assert by_range[256]["tpmc"] >= by_range[1]["tpmc"] * 0.9
