"""Figure 10 + Table 5: InfiniBand vs 10 Gb Ethernet (standard mix, RF1).

Paper shapes: with Tell's synchronous processing model, low-latency
RDMA-style networking delivers *several times* the throughput of kernel-
TCP Ethernet at every PN count (paper: >6x); mean response time mirrors
the throughput difference, and tail percentiles stay bounded (the
network is not congested).
"""

from benchmarks.conftest import run_once
from repro.bench.experiments import run_network_comparison
from repro.bench.tables import print_table


def test_fig10_network_and_table5(benchmark):
    rows = run_once(benchmark, run_network_comparison)
    print_table(
        ["Network", "PNs", "TpmC", "Latency (ms)", "TP99 (ms)", "TP999 (ms)"],
        [
            (r["network"], r["pns"], r["tpmc"], r["latency_ms"],
             r["tp99_ms"], r["tp999_ms"])
            for r in rows
        ],
        title="Figure 10 / Table 5: InfiniBand vs 10GbE (standard mix, RF1)",
    )
    by_network = {}
    for row in rows:
        by_network.setdefault(row["network"], {})[row["pns"]] = row

    infiniband = by_network["infiniband"]
    ethernet = by_network["ethernet-10g"]
    for pns in infiniband:
        # InfiniBand wins by a large factor at every PN count (paper: >6x).
        assert infiniband[pns]["tpmc"] > 2.5 * ethernet[pns]["tpmc"], (
            f"at {pns} PNs"
        )
        # Ethernet latency is higher.
        assert ethernet[pns]["latency_ms"] > infiniband[pns]["latency_ms"]
    # Tails bounded: no congestion collapse (paper: low outlier counts).
    top = max(infiniband)
    assert infiniband[top]["tp999_ms"] < 40 * infiniband[top]["latency_ms"]
    assert ethernet[top]["tp999_ms"] < 40 * ethernet[top]["latency_ms"]
