"""Figure 11: buffering strategies TB / SB / SBVS-10 / SBVS-1000.

Paper shapes (a key negative result): for TPC-C over fast RDMA, the
plain transaction buffer (TB) wins -- shared-buffer management overhead
outweighs its benefit (SB's hit ratio is ~1.4%), and version-set
synchronization (SBVS) achieves a much higher hit ratio (~37% at unit
size 1000) but pays extra update requests that cancel the savings.
"""

from benchmarks.conftest import run_once
from repro.bench.experiments import run_buffering_strategies
from repro.bench.tables import print_table


def test_fig11_buffering(benchmark):
    rows = run_once(benchmark, run_buffering_strategies)
    print_table(
        ["Strategy", "PNs", "TpmC", "Cache hit ratio"],
        [
            (r["strategy"], r["pns"], r["tpmc"],
             f"{r['hit_ratio'] * 100:.2f}%")
            for r in rows
        ],
        title="Figure 11: buffering strategies (standard mix, RF1)",
    )
    peak = {}
    hits = {}
    for row in rows:
        name = row["strategy"]
        peak[name] = max(peak.get(name, 0.0), row["tpmc"])
        hits[name] = max(hits.get(name, 0.0), row["hit_ratio"])

    # TB reaches the highest throughput (within noise it must at least
    # match every shared-buffer variant).
    for other in ("sb", "sbvs10", "sbvs1000"):
        assert peak["tb"] >= peak[other] * 0.95, (
            f"TB should win or tie, but {other} got {peak[other]:.0f} "
            f"vs tb {peak['tb']:.0f}"
        )
    # SB's hit ratio is tiny for TPC-C; SBVS with big units is much higher.
    assert hits["sb"] < 0.25
    assert hits["sbvs1000"] > hits["sb"]
