"""Figure 5: processing scale-out, write-intensive mix, RF1/RF2/RF3.

Paper shapes to reproduce: throughput grows with PNs (sub-linearly, due
to contention on the warehouse table); the abort rate rises with PNs
(paper: 2.91% at 1 PN -> 14.72% at 8 PNs at 200 warehouses); synchronous
replication costs heavily under writes (RF3 ~ -63% vs RF1 at 8 PNs).
"""

from benchmarks.conftest import run_once
from repro.bench.experiments import run_scaleout_processing
from repro.bench.tables import print_table


def test_fig5_scaleout_write(benchmark):
    rows = run_once(benchmark, run_scaleout_processing, "standard")
    print_table(
        ["RF", "PNs", "TpmC", "Abort rate", "Latency (ms)"],
        [
            (r["rf"], r["pns"], r["tpmc"], f"{r['abort_rate'] * 100:.2f}%",
             r["latency_ms"])
            for r in rows
        ],
        title="Figure 5: scale-out processing (TPC-C standard mix)",
    )
    by_rf = {}
    for row in rows:
        by_rf.setdefault(row["rf"], []).append(row)

    for rf, series in by_rf.items():
        series.sort(key=lambda r: r["pns"])
        # Throughput grows with processing nodes ...
        assert series[-1]["tpmc"] > series[0]["tpmc"] * 1.5, (
            f"RF{rf}: no scale-out"
        )
        # ... and the abort rate grows with contention.
        assert series[-1]["abort_rate"] > series[0]["abort_rate"]

    # Replication is expensive under the write-intensive mix.
    top_rf1 = max(r["tpmc"] for r in by_rf[1])
    top_rf3 = max(r["tpmc"] for r in by_rf[3])
    assert top_rf3 < top_rf1 * 0.75, "RF3 should cost >25% under writes"
    # RF2 sits in between.
    top_rf2 = max(r["tpmc"] for r in by_rf[2])
    assert top_rf3 <= top_rf2 <= top_rf1
