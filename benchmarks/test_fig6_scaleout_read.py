"""Figure 6: processing scale-out, read-intensive mix, RF1/RF2/RF3.

Paper shapes: throughput (Tps) scales with PNs; because reads are served
by the master copy only, replication hurts far less than under the
write-intensive mix (paper: RF3 is -25.7% vs RF1 here, against -63% in
Figure 5).
"""

from benchmarks.conftest import run_once
from repro.bench.experiments import run_scaleout_processing
from repro.bench.tables import print_table


def test_fig6_scaleout_read(benchmark):
    rows = run_once(benchmark, run_scaleout_processing, "read-intensive")
    print_table(
        ["RF", "PNs", "Tps", "Abort rate", "Latency (ms)"],
        [
            (r["rf"], r["pns"], r["tps"], f"{r['abort_rate'] * 100:.2f}%",
             r["latency_ms"])
            for r in rows
        ],
        title="Figure 6: scale-out processing (TPC-C read-intensive mix)",
    )
    by_rf = {}
    for row in rows:
        by_rf.setdefault(row["rf"], []).append(row)
    for rf, series in by_rf.items():
        series.sort(key=lambda r: r["pns"])
        assert series[-1]["tps"] > series[0]["tps"] * 1.5

    top_rf1 = max(r["tps"] for r in by_rf[1])
    top_rf3 = max(r["tps"] for r in by_rf[3])
    # Replication still costs something ...
    assert top_rf3 <= top_rf1
    # ... but much less than under the write-intensive mix.
    assert top_rf3 > top_rf1 * 0.55, (
        "read-intensive RF3 penalty should be mild (paper: -25.7%)"
    )
    # Abort rates are low: hardly any writes to conflict on.
    assert all(r["abort_rate"] < 0.12 for r in rows)
