"""Figure 7: storage scale-out (3 / 5 / 7 SNs), standard mix at RF3.

Paper shape: the storage layer is not the bottleneck in any of the
configurations, so throughput differs only minimally between 3, 5, and 7
storage nodes -- storage sizing should follow memory capacity, not CPU.
"""

from benchmarks.conftest import run_once
from repro.bench.experiments import run_scaleout_storage
from repro.bench.tables import print_table


def test_fig7_scaleout_storage(benchmark):
    rows = run_once(benchmark, run_scaleout_storage)
    print_table(
        ["SNs", "PNs", "TpmC", "Abort rate"],
        [
            (r["sns"], r["pns"], r["tpmc"], f"{r['abort_rate'] * 100:.2f}%")
            for r in rows
        ],
        title="Figure 7: scale-out storage (standard mix, RF3)",
    )
    by_sns = {}
    for row in rows:
        by_sns.setdefault(row["sns"], []).append(row)
    peak = {
        sns: max(r["tpmc"] for r in series) for sns, series in by_sns.items()
    }
    # The throughput difference between storage configurations is minimal
    # (the paper's point: SNs are provisioned for memory, not CPU).
    assert max(peak.values()) < min(peak.values()) * 1.5, peak
    # And each configuration still scales with processing nodes.
    for sns, series in by_sns.items():
        series.sort(key=lambda r: r["pns"])
        assert series[-1]["tpmc"] > series[0]["tpmc"] * 1.5
