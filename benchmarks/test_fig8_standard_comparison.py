"""Figure 8: Tell vs VoltDB vs MySQL Cluster vs FoundationDB (standard
mix, RF3, varying total cores).

Paper shapes: Tell scales with cores and tops every other system;
VoltDB *degrades* as nodes are added (cross-partition transactions);
MySQL Cluster beats VoltDB but stays far below Tell; FoundationDB scales
yet sits a factor ~30 below Tell (Section 6.5).
"""

from benchmarks.conftest import run_once
from repro.bench.experiments import run_system_comparison
from repro.bench.tables import print_table


def test_fig8_standard_comparison(benchmark):
    rows = run_once(benchmark, run_system_comparison, "standard")
    print_table(
        ["System", "Cores", "TpmC", "Latency (ms)"],
        [
            (r["system"], r["cores"], r["tpmc"], r["latency_ms"])
            for r in rows
        ],
        title="Figure 8: throughput, TPC-C standard mix, RF3",
    )
    by_system = {}
    for row in rows:
        by_system.setdefault(row["system"], []).append(row)
    peak = {
        system: max(r["tpmc"] for r in series)
        for system, series in by_system.items()
    }

    # Tell wins, in the paper's order at the top end.
    assert peak["tell"] > peak["mysql-cluster"] > peak["voltdb"]
    assert peak["tell"] > peak["foundationdb"]

    # Tell scales with cores.
    tell = sorted(by_system["tell"], key=lambda r: r["cores"])
    assert tell[-1]["tpmc"] > tell[0]["tpmc"] * 1.5

    # VoltDB degrades as nodes are added (the MP-transaction wall).
    voltdb = sorted(by_system["voltdb"], key=lambda r: r["cores"])
    assert voltdb[-1]["tpmc"] < voltdb[0]["tpmc"]

    # FoundationDB scales but remains an order of magnitude below Tell
    # (paper: factor 30).
    fdb = sorted(by_system["foundationdb"], key=lambda r: r["cores"])
    assert fdb[-1]["tpmc"] > fdb[0]["tpmc"]
    assert peak["tell"] > 10 * peak["foundationdb"]
