"""Figure 9: TPC-C *shardable* mix -- the workload partitioned systems
are built for (all cross-warehouse accesses removed), RF1 and RF3.

Paper shapes: VoltDB now fulfills its scalability promise and wins
(1.54M TpmC RF1 vs Tell's 1.36M: Tell within ~12%); Tell remains in the
same ballpark, while MySQL Cluster is barely faster than on the standard
mix.
"""

from benchmarks.conftest import run_once
from repro.bench.experiments import run_system_comparison
from repro.bench.tables import print_table


def test_fig9_shardable_comparison(benchmark):
    rows = run_once(
        benchmark, run_system_comparison, "shardable", (1, 3)
    )
    print_table(
        ["System", "RF", "Cores", "TpmC", "Latency (ms)"],
        [
            (r["system"], r["rf"], r["cores"], r["tpmc"], r["latency_ms"])
            for r in rows
        ],
        title="Figure 9: throughput, TPC-C shardable mix",
    )
    peak = {}
    for row in rows:
        key = (row["system"], row["rf"])
        peak[key] = max(peak.get(key, 0.0), row["tpmc"])

    # VoltDB wins on its home turf ...
    assert peak[("voltdb", 1)] > peak[("tell", 1)]
    # ... but Tell stays in the same ballpark (paper: within ~12%).
    assert peak[("tell", 1)] > peak[("voltdb", 1)] * 0.3
    # Both systems scale on this mix.
    assert peak[("voltdb", 1)] > peak[("mysql-cluster", 1)]
    # Replication costs both systems throughput.
    assert peak[("voltdb", 3)] < peak[("voltdb", 1)]
    assert peak[("tell", 3)] < peak[("tell", 1)]
