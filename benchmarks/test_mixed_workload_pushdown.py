"""Mixed-workload extension: operator push-down for analytic scans.

Section 5.2 proposes executing selection inside the storage nodes so
analytical queries over live OLTP data ship result rows instead of whole
tables.  The paper leaves this as future work; this repository implements
it, and this benchmark quantifies the effect: a selective scan over the
TPC-C orderline table with and without storage-side filtering, measuring
bytes shipped and scan latency.
"""

from benchmarks.conftest import run_once
from repro.bench.config import TellConfig
from repro.bench.experiments import bench_profile
from repro.bench.simcluster import SimulatedTell
from repro.bench.tables import print_table
from repro.sql.table import Table


def run_pushdown_experiment():
    profile = bench_profile()
    config = TellConfig(
        processing_nodes=1, storage_nodes=5, scale=profile.scale(),
    )
    deployment = SimulatedTell(config)
    deployment.load()
    pn, pool, cm_index, indexes = deployment._make_pn(0)

    def analytic(pushdown):
        def script():
            txn = yield from pn.begin()
            table = Table(deployment.catalog.table("orderline"), txn, indexes)
            scan_filter = (
                table.make_filter([("ol_amount", ">=", 9500.0)])
                if pushdown else None
            )
            started = deployment.sim.now
            rows = yield from table.scan(scan_filter)
            elapsed = deployment.sim.now - started
            yield from txn.commit()
            return rows, elapsed

        before = deployment.fabric.stats.bytes_sent
        process = deployment.sim.spawn(
            deployment._drive(pool, cm_index, script())
        )
        (rows, elapsed) = deployment.sim.run_until_complete(process)
        shipped = deployment.fabric.stats.bytes_sent - before
        return rows, elapsed, shipped

    amount_pos = deployment.catalog.table("orderline").position("ol_amount")
    results = []
    full_rows, full_time, full_bytes = analytic(False)
    matching = sum(1 for _rid, row in full_rows if row[amount_pos] >= 9500.0)
    results.append({
        "mode": "ship-everything", "rows_shipped": len(full_rows),
        "bytes": full_bytes, "scan_us": full_time,
    })
    pushed_rows, pushed_time, pushed_bytes = analytic(True)
    results.append({
        "mode": "push-down", "rows_shipped": len(pushed_rows),
        "bytes": pushed_bytes, "scan_us": pushed_time,
    })
    assert len(pushed_rows) == matching, "pushdown changed the result"
    return results


def test_mixed_workload_pushdown(benchmark):
    rows = run_once(benchmark, run_pushdown_experiment)
    print_table(
        ["Mode", "Rows shipped", "Bytes shipped", "Scan time (us)"],
        [
            (r["mode"], r["rows_shipped"], r["bytes"], r["scan_us"])
            for r in rows
        ],
        title="Mixed workloads: selection push-down for analytic scans",
    )
    full = next(r for r in rows if r["mode"] == "ship-everything")
    pushed = next(r for r in rows if r["mode"] == "push-down")
    assert pushed["rows_shipped"] < full["rows_shipped"] * 0.5
    assert pushed["bytes"] < full["bytes"] * 0.5
    assert pushed["scan_us"] <= full["scan_us"]
