"""Table 1: design-principle comparison of selected systems.

The paper's Table 1 is a qualitative matrix; this benchmark reprints it
(with Tell replaced by this reproduction) and verifies the claims that
are checkable against the codebase: the reproduction actually implements
all five design principles.
"""

from benchmarks.conftest import run_once
from repro.bench.tables import TABLE1_HEADERS, TABLE1_ROWS, print_table


def build_table():
    from repro.api import Database

    db = Database(storage_nodes=3, replication_factor=2)
    session = db.session()
    # Complex queries + ACID transactions, demonstrably:
    session.execute("CREATE TABLE t (id INT PRIMARY KEY, grp TEXT, v INT)")
    session.execute(
        "INSERT INTO t VALUES (1, 'a', 1), (2, 'a', 2), (3, 'b', 3)"
    )
    aggregate = session.query(
        "SELECT grp, SUM(v) AS s FROM t GROUP BY grp ORDER BY grp"
    )
    # Shared data: a second instance sees everything without any setup.
    other = db.session()
    shared = other.query("SELECT COUNT(*) AS n FROM t")
    return aggregate, shared


def test_table1_comparison(benchmark):
    aggregate, shared = run_once(benchmark, build_table)
    print_table(TABLE1_HEADERS, TABLE1_ROWS,
                title="Table 1: comparison of selected databases")
    assert aggregate == [{"grp": "a", "s": 3}, {"grp": "b", "s": 3}]
    assert shared == [{"n": 3}]
