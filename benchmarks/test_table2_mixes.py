"""Table 2: the write- and read-intensive TPC-C workload mixes."""

from benchmarks.conftest import run_once
from repro.bench.tables import print_table
from repro.workloads.tpcc.mixes import READ_INTENSIVE_MIX, STANDARD_MIX


def build_rows():
    rows = []
    for mix in (STANDARD_MIX, READ_INTENSIVE_MIX):
        weights = dict(mix.weights)
        rows.append((
            mix.name,
            f"{mix.write_ratio * 100:.2f}%",
            mix.throughput_metric.upper(),
            f"{weights.get('new_order', 0):.0f}%",
            f"{weights.get('payment', 0):.0f}%",
            f"{weights.get('delivery', 0):.0f}%",
            f"{weights.get('order_status', 0):.0f}%",
            f"{weights.get('stock_level', 0):.0f}%",
        ))
    return rows


def test_table2_mixes(benchmark):
    rows = run_once(benchmark, build_rows)
    print_table(
        ["Mix", "Write Ratio", "Metric", "New-Order", "Payment",
         "Delivery", "Order Status", "Stock Level"],
        rows,
        title="Table 2: TPC-C workload mixes (paper: 35.84% / 4.89% write)",
    )
    standard, read_intensive = rows
    # Shape: the standard mix is write-intensive, the other is not.
    assert float(standard[1].rstrip("%")) > 20.0
    assert float(read_intensive[1].rstrip("%")) < 10.0
    assert standard[2] == "TPMC" and read_intensive[2] == "TPS"
