"""Table 3: running 1 / 2 / 4 commit managers (standard mix, RF1).

Paper shape: the commit manager is *not* a bottleneck -- throughput and
abort rate stay essentially flat whether one or several managers serve
the cluster, despite the snapshot being synchronized through the store
with a 1 ms delay.
"""

from benchmarks.conftest import run_once
from repro.bench.experiments import run_commit_managers
from repro.bench.tables import print_table


def test_table3_commit_managers(benchmark):
    rows = run_once(benchmark, run_commit_managers)
    print_table(
        ["Commit managers", "TpmC", "Tx abort rate"],
        [
            (r["commit_managers"], r["tpmc"], f"{r['abort_rate'] * 100:.2f}%")
            for r in rows
        ],
        title="Table 3: commit managers (standard mix, RF1)",
    )
    tpmcs = [r["tpmc"] for r in rows]
    aborts = [r["abort_rate"] for r in rows]
    # Throughput flat within a modest band.
    assert max(tpmcs) < min(tpmcs) * 1.35, tpmcs
    # Abort rate not significantly affected by delayed snapshots.
    assert max(aborts) - min(aborts) < 0.12, aborts
