"""Table 4: TPC-C transaction response times, small vs large clusters.

Paper shapes: Tell's mean latency is the lowest of all systems and grows
only mildly from the small to the large configuration; VoltDB's standard-
mix latency explodes into hundreds of milliseconds (MP queueing) while
its shardable latency is fine; FoundationDB sits at 150-250 ms.
"""

from benchmarks.conftest import run_once
from repro.bench.experiments import run_system_comparison
from repro.bench.tables import print_table


def collect():
    standard = run_system_comparison("standard")
    shardable = run_system_comparison("shardable", (3,))
    return standard, shardable


def _small_large(series):
    ordered = sorted(series, key=lambda r: r["cores"])
    return ordered[0], ordered[-1]


def test_table4_response_times(benchmark):
    standard, shardable = run_once(benchmark, collect)
    rows = []
    for mix_name, data in (("standard", standard), ("shardable", shardable)):
        by_system = {}
        for row in data:
            by_system.setdefault(row["system"], []).append(row)
        for system, series in sorted(by_system.items()):
            small, large = _small_large(series)
            rows.append((
                mix_name, system,
                f"{small['latency_ms']:.1f} ± {small['latency_std_ms']:.1f}",
                f"{large['latency_ms']:.1f} ± {large['latency_std_ms']:.1f}",
            ))
    print_table(
        ["Mix", "System", "Small cluster (ms)", "Large cluster (ms)"],
        rows,
        title="Table 4: TPC-C transaction response time (mean ± sigma)",
    )

    def latency(data, system):
        return _small_large(
            [r for r in data if r["system"] == system]
        )[1]["latency_ms"]

    # Tell's latency is the lowest in the standard mix.
    tell = latency(standard, "tell")
    assert tell < latency(standard, "voltdb")
    assert tell < latency(standard, "foundationdb")
    assert tell < latency(standard, "mysql-cluster")
    # VoltDB's standard latency is far worse than its shardable latency.
    assert latency(standard, "voltdb") > 3 * latency(shardable, "voltdb")
