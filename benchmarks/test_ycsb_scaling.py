"""Extension experiment: scaling without workload assumptions (YCSB).

TPC-C is partition-friendly by construction; the shared-data pitch
(Section 2.1) is that scaling requires *no* workload structure.  This
benchmark runs a zipfian YCSB mix -- keys with no locality whatsoever,
the adversarial case for partitioned databases -- and shows Tell's
throughput scaling with processing nodes on update-heavy (A) and
read-only (C) mixes.
"""

from benchmarks.conftest import run_once
from repro.bench.config import TellConfig
from repro.bench.experiments import bench_profile
from repro.bench.tables import print_table
from repro.bench.ycsb_sim import SimulatedYcsb


def run_ycsb_scaling():
    profile = bench_profile()
    rows = []
    for mix in ("A", "C"):
        for pns in profile.pn_counts:
            config = TellConfig(
                processing_nodes=pns,
                storage_nodes=5,
                threads_per_pn=profile.threads_per_pn,
                mix=mix,
                duration_us=profile.duration_us / 2,
                warmup_us=profile.warmup_us / 2,
            )
            deployment = SimulatedYcsb(config, record_count=20_000)
            deployment.load()
            metrics = deployment.run()
            rows.append({
                "mix": f"YCSB-{mix}",
                "pns": pns,
                "tps": metrics.tps,
                "abort_rate": metrics.abort_rate,
                "latency_us": metrics.latency().mean_us,
            })
    return rows


def test_ycsb_scaling(benchmark):
    rows = run_once(benchmark, run_ycsb_scaling)
    print_table(
        ["Mix", "PNs", "Tps", "Abort rate", "Latency (us)"],
        [
            (r["mix"], r["pns"], r["tps"], f"{r['abort_rate'] * 100:.2f}%",
             r["latency_us"])
            for r in rows
        ],
        title="Extension: YCSB zipfian scaling (no partitionable structure)",
    )
    for mix in ("YCSB-A", "YCSB-C"):
        series = sorted(
            (r for r in rows if r["mix"] == mix), key=lambda r: r["pns"]
        )
        assert series[-1]["tps"] > series[0]["tps"] * 2.0, f"{mix} flat"
    # The read-only mix never conflicts.
    assert all(
        r["abort_rate"] == 0.0 for r in rows if r["mix"] == "YCSB-C"
    )
