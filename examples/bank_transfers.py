"""Bank transfers: snapshot isolation, conflicts, retries, and recovery.

A classic money-transfer workload run through the record-level API with
adversarial interleavings: many transfer transactions race on a small
set of accounts, conflicting transactions retry, and at the end the
total balance is checked -- LL/SC conflict detection guarantees no lost
updates.  Finally a processing node "crashes" mid-commit and the
recovery procedure rolls its half-applied transfer back.

Run with:  python examples/bank_transfers.py
"""

import random

import repro
from repro import effects
from repro.core.recovery import recover_processing_node
from repro.core.spaces import data_key
from repro.core.txlog import TransactionLog
from repro.errors import TransactionAborted

N_ACCOUNTS = 10
INITIAL_BALANCE = 1_000
N_TRANSFERS = 60


def transfer_logic(source_key, target_key, amount):
    """A transfer as a protocol coroutine (the record-level API)."""

    def logic(txn):
        rows = yield from txn.read_many([source_key, target_key])
        source_balance = rows[source_key][0]
        target_balance = rows[target_key][0]
        if source_balance < amount:
            return "insufficient"
        yield from txn.update(source_key, (source_balance - amount,))
        yield from txn.update(target_key, (target_balance + amount,))
        return "ok"

    return logic


def main() -> None:
    with repro.connect(storage_nodes=3, replication_factor=2) as db:
        _run(db)


def _run(db) -> None:
    table_id = 1
    keys = [data_key(table_id, i) for i in range(N_ACCOUNTS)]

    # Open accounts.
    setup = db.session()
    with setup.transaction() as txn:
        for key in keys:
            txn.insert(key, (INITIAL_BALANCE,))
    print(f"opened {N_ACCOUNTS} accounts with {INITIAL_BALANCE} each")

    # Two processing nodes hammer the accounts with transfers.
    sessions = [db.session(), db.session()]
    rng = random.Random(42)
    committed = conflicts = 0
    for i in range(N_TRANSFERS):
        session = sessions[i % 2]
        runner = db._runners[session.pn.pn_id]
        source, target = rng.sample(range(N_ACCOUNTS), 2)
        amount = rng.randint(1, 200)
        logic = transfer_logic(keys[source], keys[target], amount)
        while True:
            try:
                runner.run(session.pn.run_transaction(logic))
                committed += 1
                break
            except TransactionAborted:
                conflicts += 1  # retry with a fresh snapshot

    print(f"transfers committed: {committed}, conflicts retried: {conflicts}")

    # Invariant: money is conserved.
    check = db.session()
    runner = db._runners[check.pn.pn_id]
    with check.transaction() as txn:
        balances = runner.run(txn.read_many(keys))
        total = sum(balance[0] for balance in balances.values())
    print(f"total balance: {total} (expected {N_ACCOUNTS * INITIAL_BALANCE})")
    assert total == N_ACCOUNTS * INITIAL_BALANCE

    # --- crash a PN mid-commit and recover --------------------------------------
    print("\ncrashing a processing node mid-commit ...")
    victim = db.session()
    runner = db._runners[victim.pn.pn_id]
    txn = runner.run(victim.pn.begin())
    runner.run(txn.update(keys[0], (0,)))  # steal everything from account 0
    commit = txn.commit()
    # Drive the commit just past the data-apply step, then "crash".
    result = None
    while True:
        request = commit.send(result)
        result = runner.router.execute(request)
        if isinstance(request, effects.Batch):
            break
    print(f"  transaction {txn.tid} applied its update, then the PN died")

    rolled_back = db._runners[check.pn.pn_id].run(
        recover_processing_node(
            victim.pn.pn_id, db.commit_managers, TransactionLog()
        )
    )
    print(f"  recovery rolled back tids: {rolled_back}")

    check2 = db.session()
    runner2 = db._runners[check2.pn.pn_id]
    with check2.transaction() as txn:
        balances = runner2.run(txn.read_many(keys))
        total = sum(balance[0] for balance in balances.values())
    print(f"  total balance after recovery: {total}")
    assert total == N_ACCOUNTS * INITIAL_BALANCE


if __name__ == "__main__":
    main()
