"""Elasticity and fault tolerance: the operational-flexibility story.

Demonstrates the two properties the shared-data architecture is designed
for (Section 2.1):

* *elasticity* -- processing nodes attach and detach with zero data
  movement, and storage nodes can be added on demand;
* *fault tolerance* -- a storage node crash is handled by failing its
  partitions over to replicas with no data loss, and the replication
  factor is restored in the background.

Run with:  python examples/elasticity_failover.py
"""

import repro


def main() -> None:
    with repro.connect(storage_nodes=4, replication_factor=2) as db:
        _run(db)


def _run(db) -> None:
    session = db.session()
    session.execute(
        "CREATE TABLE events (id INT PRIMARY KEY, source TEXT, value INT)"
    )
    for i in range(200):
        session.execute(
            "INSERT INTO events VALUES (?, ?, ?)",
            [i, f"sensor-{i % 5}", i * 7 % 100],
        )
    print("loaded 200 rows across 4 storage nodes (RF2)")

    # --- elasticity: attach PNs, no re-partitioning -----------------------------
    print("\nattaching three more processing nodes ...")
    extra_sessions = [db.session() for _ in range(3)]
    for index, extra in enumerate(extra_sessions):
        count = extra.query("SELECT COUNT(*) AS n FROM events")[0]["n"]
        print(f"  PN {extra.pn.pn_id}: sees {count} rows instantly")

    print("detaching one again (soft state only, nothing to migrate)")
    db.remove_processing_node(extra_sessions[-1].pn.pn_id)

    # --- storage elasticity (the db.admin() surface) -----------------------------
    with db.admin() as admin:
        node_id = admin.add_storage_node()     # attach + rebalance
        view = admin.topology()
        print(f"\nattached storage node {node_id} "
              f"({len(view['nodes'])} SNs total, epoch {view['epoch']}, "
              f"balanced={view['balanced']})")
        moved = admin.stats.partitions_moved
        print(f"  rebalance migrated {moved} partition(s) live")

    # --- storage node failure ----------------------------------------------------
    victim = 0
    bytes_lost = db.cluster.nodes[victim].bytes_used
    print(f"\ncrashing storage node {victim} "
          f"({bytes_lost:,} bytes of volatile data) ...")
    db.cluster.nodes[victim].crash()
    degraded = db.management.handle_node_failure(victim)
    print(f"  failed over {len(degraded)} partitions to their replicas")

    total = session.query("SELECT COUNT(*) AS n, SUM(value) AS s FROM events")
    print(f"  data intact: {total[0]['n']} rows, checksum {total[0]['s']}")

    restored = all(
        len(db.cluster.partition_map.replicas_of(pid)) >= 2
        for pid in range(db.cluster.partitioner.n_partitions)
    )
    print(f"  replication factor restored: {restored}")

    # Writes keep working against the new masters.
    session.execute("INSERT INTO events VALUES (999, 'post-failover', 1)")
    row = session.query("SELECT source FROM events WHERE id = 999")[0]
    print(f"  post-failover write readable: {row['source']}")


if __name__ == "__main__":
    main()
