"""Mixed workloads: OLTP and analytics on the same live data.

Section 5.2 highlights a unique property of the shared-data
architecture: some processing nodes can run an OLTP workload while
others execute analytical queries over the *same* dataset -- no ETL, no
replicas, no partitioning constraints.  This example runs an
order-entry OLTP loop on one session while an "analyst" session executes
aggregation queries (full scans shipped to the query) against live data.

Run with:  python examples/mixed_workload.py
"""

import random

import repro


def main() -> None:
    with repro.connect(storage_nodes=3, replication_factor=1) as db:
        _run(db)


def _run(db) -> None:
    oltp = db.session()
    oltp.execute(
        "CREATE TABLE orders ("
        "  id INT PRIMARY KEY, region TEXT, product TEXT,"
        "  quantity INT, amount DECIMAL"
        ")"
    )
    oltp.execute("CREATE INDEX orders_region ON orders (region)")

    analyst = db.session()  # a separate database instance for analytics
    rng = random.Random(7)
    regions = ["emea", "amer", "apac"]
    products = ["widget", "gadget", "sprocket"]

    next_id = 0

    def place_orders(batch):
        nonlocal next_id
        for _ in range(batch):
            oltp.execute(
                "INSERT INTO orders VALUES (?, ?, ?, ?, ?)",
                [
                    next_id,
                    rng.choice(regions),
                    rng.choice(products),
                    rng.randint(1, 20),
                    round(rng.uniform(5, 500), 2),
                ],
            )
            next_id += 1

    # Interleave OLTP batches with analytical queries on live data.
    for round_number in range(1, 4):
        place_orders(50)
        print(f"--- after {next_id} orders (round {round_number}) ---")
        for row in analyst.query(
            "SELECT region, COUNT(*) AS orders, SUM(amount) AS revenue "
            "FROM orders GROUP BY region ORDER BY revenue DESC"
        ):
            print(f"  {row['region']:<6} {row['orders']:>4} orders  "
                  f"revenue {row['revenue']:>10,.2f}")

    # Analytical snapshot consistency: inside one transaction, repeated
    # aggregates agree even while OLTP keeps writing.
    with analyst.transaction():
        before = analyst.query("SELECT SUM(amount) AS s FROM orders")[0]["s"]
        place_orders(25)  # concurrent OLTP writes
        after = analyst.query("SELECT SUM(amount) AS s FROM orders")[0]["s"]
    print(f"\nanalyst snapshot stable under concurrent OLTP: "
          f"{before:,.2f} == {after:,.2f} -> {before == after}")

    fresh = analyst.query("SELECT COUNT(*) AS n FROM orders")[0]["n"]
    print(f"new transaction sees all {fresh} orders")

    # Join + filter through the secondary index, still on live data.
    top = analyst.query(
        "SELECT product, SUM(quantity) AS units FROM orders "
        "WHERE region = 'emea' GROUP BY product ORDER BY units DESC LIMIT 1"
    )
    print(f"top EMEA product: {top[0]['product']} ({top[0]['units']} units)")


if __name__ == "__main__":
    main()
