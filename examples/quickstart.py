"""Quickstart: an embedded shared-data database in five minutes.

Creates a Tell deployment in-process (3 storage nodes, replication
factor 2, one commit manager), opens SQL sessions on independent
processing nodes, and walks through DDL, DML, transactions, and joins.

Run with:  python examples/quickstart.py
"""

import repro
from repro.errors import TransactionAborted


def main() -> None:
    # A full deployment in one process: storage cluster + commit manager.
    with repro.connect(storage_nodes=3, replication_factor=2) as db:
        _run(db)


def _run(db) -> None:
    session = db.session()

    # --- DDL ---------------------------------------------------------------
    session.execute(
        "CREATE TABLE products ("
        "  sku INT PRIMARY KEY,"
        "  name TEXT NOT NULL,"
        "  category TEXT,"
        "  price DECIMAL,"
        "  stock INT DEFAULT 0"
        ")"
    )
    session.execute("CREATE INDEX products_category ON products (category)")

    # --- INSERT ------------------------------------------------------------
    session.execute(
        "INSERT INTO products (sku, name, category, price, stock) VALUES "
        "(1, 'espresso machine', 'kitchen', 249.00, 12), "
        "(2, 'grinder',          'kitchen',  89.00, 30), "
        "(3, 'desk lamp',        'office',   39.90, 55), "
        "(4, 'monitor arm',      'office',  129.00,  8), "
        "(5, 'notebook',         'office',    4.50, 400)"
    )

    # --- Queries -----------------------------------------------------------
    print("All products over 50:")
    for row in session.query(
        "SELECT name, price FROM products WHERE price > 50 ORDER BY price DESC"
    ):
        print(f"  {row['name']:<20} {row['price']:>8.2f}")

    print("\nInventory value by category:")
    for row in session.query(
        "SELECT category, COUNT(*) AS items, SUM(price * stock) AS value "
        "FROM products GROUP BY category ORDER BY category"
    ):
        print(f"  {row['category']:<10} {row['items']} items, "
              f"value {row['value']:,.2f}")

    # --- Transactions ------------------------------------------------------
    print("\nSelling two espresso machines transactionally...")
    with session.transaction():  # commits on clean exit, rolls back on error
        session.execute("UPDATE products SET stock = stock - 2 WHERE sku = 1")
        stock = session.query("SELECT stock FROM products WHERE sku = 1")
        print(f"  stock inside the transaction: {stock[0]['stock']}")

    # --- Shared data: any processing node sees everything -------------------
    other = db.session()  # a brand-new database instance, zero setup cost
    row = other.query("SELECT stock FROM products WHERE sku = 1")[0]
    print(f"  stock seen from a second processing node: {row['stock']}")

    # --- Conflicts: first committer wins (snapshot isolation) ---------------
    print("\nTwo sessions updating the same row concurrently:")
    a, b = db.session(), db.session()
    a.execute("BEGIN")
    b.execute("BEGIN")
    a.execute("UPDATE products SET price = 259 WHERE sku = 1")
    b.execute("UPDATE products SET price = 239 WHERE sku = 1")
    a.execute("COMMIT")
    try:
        b.execute("COMMIT")
    except TransactionAborted as aborted:
        print(f"  second committer aborted as expected: {aborted}")
    price = session.query("SELECT price FROM products WHERE sku = 1")[0]
    print(f"  final price: {price['price']}")


if __name__ == "__main__":
    main()
