"""Run TPC-C on a simulated Tell cluster and watch it scale out.

Builds two deployments -- 2 and 6 processing nodes over the same storage
configuration -- loads the TPC-C database, runs the standard mix for a
slice of simulated time, and prints throughput, abort rate, and latency
the way the paper's Figure 5 reports them.  The second part shows the
read-intensive mix of Table 2 on the same cluster shape.

Run with:  python examples/tpcc_simulation.py
"""

from repro.bench.config import TellConfig
from repro.bench.simcluster import SimulatedTell
from repro.workloads.tpcc.params import TpccScale


def run(config: TellConfig, label: str) -> None:
    deployment = SimulatedTell(config)
    counts = deployment.load()
    metrics = deployment.run()
    latency = metrics.latency()
    metric_name = "TpmC" if config.mix == "standard" else "Tps"
    value = metrics.tpmc if config.mix == "standard" else metrics.tps
    print(f"{label}:")
    print(f"  database: {sum(counts.values()):,} rows "
          f"({config.scale.warehouses} warehouses)")
    print(f"  {metric_name}: {value:,.0f}   abort rate: "
          f"{metrics.abort_rate * 100:.2f}%   "
          f"latency: {latency.mean_ms:.2f} ms "
          f"(p99 {latency.p99_us / 1000:.2f} ms)")
    per_type = ", ".join(
        f"{name}={count}" for name, count in sorted(metrics.committed.items())
    )
    print(f"  committed: {per_type}")
    print(f"  storage messages: {deployment.fabric.stats.messages:,} "
          f"({deployment.fabric.stats.store_ops:,} ops, batching on)\n")


def main() -> None:
    scale = TpccScale(
        warehouses=24,
        districts_per_warehouse=10,
        customers_per_district=60,
        initial_orders_per_district=20,
        items=1000,
    )
    base = dict(
        storage_nodes=5,
        threads_per_pn=12,
        scale=scale,
        duration_us=150_000.0,   # 150 simulated milliseconds
        warmup_us=30_000.0,
    )

    print("=== TPC-C standard mix (write-intensive) ===\n")
    run(TellConfig(processing_nodes=2, **base), "2 processing nodes")
    run(TellConfig(processing_nodes=6, **base),
        "6 processing nodes (same data, no re-partitioning)")

    print("=== TPC-C read-intensive mix (Table 2) ===\n")
    run(TellConfig(processing_nodes=4, mix="read-intensive", **base),
        "4 processing nodes, read-intensive")

    print("=== Same cluster, 10GbE instead of InfiniBand ===\n")
    run(TellConfig(processing_nodes=4, network="ethernet-10g", **base),
        "4 processing nodes, kernel-TCP Ethernet")


if __name__ == "__main__":
    main()
