"""repro: a shared-data distributed database (Tell, SIGMOD 2015).

A reproduction of Loesing, Pilman, Etter, Kossmann: *On the Design and
Scalability of Distributed Shared-Data Databases*, SIGMOD 2015.

Entry points:

* :func:`repro.connect` -- open an embedded database
  (``with repro.connect(storage_nodes=3) as db: ...``);
* :class:`repro.api.Database` -- the embedded database (SQL sessions,
  transactions, elasticity, recovery);
* :class:`repro.bench.simcluster.SimulatedTell` -- a full simulated
  deployment running TPC-C under network/CPU timing;
* ``python -m repro.bench`` -- regenerate the paper's tables and figures;
* ``python -m repro.obs`` -- render and validate metrics snapshots.

See README.md for the architecture overview, DESIGN.md for the system
inventory and per-experiment index, docs/api.md for the public API, and
docs/observability.md for metrics and tracing.
"""

__version__ = "1.0.0"


def connect(config=None, **kwargs):
    """Open an embedded database (the modern front door).

    Accepts either a prebuilt :class:`repro.api.DatabaseConfig` or the
    same fields as keyword arguments::

        with repro.connect(storage_nodes=3, replication_factor=2) as db:
            with db.session() as session:
                ...

    All validation happens in :class:`~repro.api.DatabaseConfig`, so a
    bad parameter raises :class:`repro.errors.InvalidState` here, before
    any component is built.
    """
    # Imported lazily so `import repro` stays cheap for bench/sim users.
    from repro.api.database import Database

    return Database(config, **kwargs)
