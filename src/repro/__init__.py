"""repro: a shared-data distributed database (Tell, SIGMOD 2015).

A reproduction of Loesing, Pilman, Etter, Kossmann: *On the Design and
Scalability of Distributed Shared-Data Databases*, SIGMOD 2015.

Entry points:

* :class:`repro.api.Database` -- the embedded database (SQL sessions,
  transactions, elasticity, recovery);
* :class:`repro.bench.simcluster.SimulatedTell` -- a full simulated
  deployment running TPC-C under network/CPU timing;
* ``python -m repro.bench`` -- regenerate the paper's tables and figures.

See README.md for the architecture overview and DESIGN.md for the
system inventory and per-experiment index.
"""

__version__ = "1.0.0"
