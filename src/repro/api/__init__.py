"""Embedded database API: the easiest way to use the library.

:class:`repro.api.database.Database` assembles a storage cluster, commit
manager, and processing node(s) in one process and drives all protocol
coroutines with the direct runner (zero simulated latency).  It is the
entry point for the examples and for applications that want Tell's
semantics without the simulation harness.
"""

from repro.api.config import DatabaseConfig
from repro.api.runner import DirectRunner, Router


def __getattr__(name):
    # Imported lazily: Database pulls in the SQL layer, which not every
    # user of the runner needs.
    if name == "Database":
        from repro.api.database import Database

        return Database
    if name == "connect":
        from repro.api.database import connect

        return connect
    if name == "ClusterAdmin":
        from repro.api.admin import ClusterAdmin

        return ClusterAdmin
    raise AttributeError(name)


__all__ = ["ClusterAdmin", "Database", "DatabaseConfig", "DirectRunner",
           "Router", "connect"]
