"""The first-class cluster-administration surface: ``db.admin()``.

:class:`ClusterAdmin` is the supported way to change a running
deployment's shape -- storage scale-out/in with partition rebalancing,
processing-pool grow/shrink, and topology introspection::

    with repro.connect(storage_nodes=4) as db:
        with db.admin() as admin:
            admin.add_storage_node()          # attach + rebalance
            admin.remove_storage_node(2)      # drain + detach
            view = admin.topology()           # epoch, ownership map
            admin.wait_balanced()

Every mutation goes through the versioned :class:`repro.elastic.Topology`
layer (epoch bumps, handoff lifecycle) and the bounded-batch migration
protocol, so the embedded path exercises exactly the state machine the
simulated elastic coordinator drives under live load.  Direct mutation
of :class:`~repro.store.cluster.StorageCluster` (the old
``cluster.add_node()``) is deprecated and warns.

Leaving the ``with`` block verifies nothing leaked: no handoff residue,
hosting consistent with assignment, and -- because migrations never open
transactions -- the commit managers' pins unchanged.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.elastic.migration import (capture_pins, assert_migration_clean,
                                     run_moves_direct, MigrationStats)
from repro.errors import InvalidState


class ClusterAdmin:
    """Administrative handle on one :class:`repro.api.Database`."""

    def __init__(self, db: Any):
        self._db = db
        self.stats = MigrationStats()
        self._pins = capture_pins(db.commit_managers)

    # -- context management -------------------------------------------------

    def __enter__(self) -> "ClusterAdmin":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        if exc_type is None:
            self.verify()

    def verify(self) -> None:
        """Assert the topology leaked nothing (run on clean ``with`` exit)."""
        assert_migration_clean(
            self._db.cluster, self._db.commit_managers, self._pins
        )

    # -- storage elasticity -------------------------------------------------

    def add_storage_node(self, rebalance: bool = True,
                         capacity_bytes: Optional[int] = None) -> int:
        """Attach a fresh storage node; by default migrate partitions onto
        it until master counts are balanced.  Returns the new node id."""
        cluster = self._db.cluster
        node = cluster.create_node(capacity_bytes)
        if rebalance:
            run_moves_direct(
                cluster, cluster.topology.plan_rebalance(), stats=self.stats
            )
        return node.node_id

    def remove_storage_node(self, node_id: int, drain: bool = True) -> None:
        """Retire a storage node.

        ``drain=True`` migrates every hosted partition to the remaining
        nodes first (no data loss at any replication factor).
        ``drain=False`` models a hard removal through the management
        node's fail-over path -- under RF1 that loses the node's data,
        exactly like a crash.
        """
        cluster = self._db.cluster
        if node_id not in cluster.nodes:
            raise InvalidState(f"no storage node {node_id}")
        if drain:
            run_moves_direct(
                cluster, cluster.topology.plan_drain(node_id),
                stats=self.stats,
            )
        else:
            self._db.management.handle_node_failure(node_id)
        cluster.detach_node(node_id)

    def rebalance(self) -> int:
        """Even out master placement; returns the number of moves run."""
        cluster = self._db.cluster
        moves = cluster.topology.plan_rebalance()
        run_moves_direct(cluster, moves, stats=self.stats)
        return len(moves)

    def wait_balanced(self) -> None:
        """Block until the topology is balanced (embedded mode: migrations
        are synchronous, so at most one rebalance round is needed)."""
        topology = self._db.cluster.topology
        if not topology.is_balanced():
            self.rebalance()
        if not topology.is_balanced():
            raise InvalidState(
                "topology failed to balance: "
                f"master counts {topology.master_counts()!r}"
            )

    # -- processing elasticity ----------------------------------------------

    def grow_pns(self, n: int = 1) -> List[int]:
        """Attach ``n`` processing nodes (no data movement)."""
        if n < 1:
            raise InvalidState("grow_pns needs n >= 1")
        return [self._db.add_processing_node().pn_id for _ in range(n)]

    def shrink_pns(self, n: int = 1) -> List[int]:
        """Detach the ``n`` highest-numbered PNs, rolling back anything
        they left in flight (the PN-crash recovery path).  Returns the
        rolled-back transaction ids."""
        pn_ids = sorted(self._db.processing_nodes)
        if n < 1 or n > len(pn_ids):
            raise InvalidState(
                f"cannot shrink {n} of {len(pn_ids)} processing node(s)"
            )
        rolled_back: List[int] = []
        for pn_id in reversed(pn_ids[-n:]):
            rolled_back.extend(self._db.crash_processing_node(pn_id))
        return rolled_back

    # -- introspection ------------------------------------------------------

    def topology(self) -> Dict[str, Any]:
        """A point-in-time view of the versioned topology."""
        topo = self._db.cluster.topology
        return {
            "epoch": topo.epoch,
            "placement": topo.placement.kind,
            "n_partitions": topo.n_partitions,
            "nodes": topo.node_ids(),
            "ownership": topo.ownership(),
            "master_counts": topo.master_counts(),
            "migrations_in_flight": topo.migrations_in_flight(),
            "balanced": topo.is_balanced(),
            "epoch_log": list(topo.epoch_log),
        }

    def __repr__(self) -> str:
        topo = self._db.cluster.topology
        return (f"<ClusterAdmin epoch={topo.epoch} "
                f"nodes={len(topo.node_ids())} "
                f"balanced={topo.is_balanced()}>")
