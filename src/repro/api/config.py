"""The public configuration surface: a frozen, validated config object.

``DatabaseConfig`` is the single place where embedded-database
parameters are validated -- both :func:`repro.connect` and the
keyword-argument ``Database(...)`` shim build one, so a bad value fails
identically (and early) no matter which front door was used.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace

from repro.errors import InvalidState

#: Buffering strategies understood by :func:`repro.core.buffers.make_strategy`.
_BUFFERING_PREFIXES = ("tb", "sb", "sbvs")


@dataclass(frozen=True)
class DatabaseConfig:
    """Validated deployment shape for an embedded :class:`Database`.

    Frozen: a config can be shared, reused, and compared safely.  Use
    :meth:`with_` for modified copies.
    """

    storage_nodes: int = 3
    replication_factor: int = 1
    commit_managers: int = 1
    buffering: str = "tb"
    tid_range_size: int = 256
    interleaved_tids: bool = False
    partitions_per_node: int = 8
    #: The paper's request-batching knob: coalesce co-timed single-key
    #: requests per PN<->SN pair into one message.  Only meaningful under
    #: the simulated fabric (`repro.bench.simcluster`), where messages
    #: have a latency cost; the embedded direct-mode engine executes
    #: requests synchronously and ignores it.
    coalescing: bool = False
    #: Attach a :class:`repro.obs.Observability` hub to the deployment.
    observability: bool = False
    #: Isolation protocol: "si" (snapshot isolation, the paper's default),
    #: "wsi" (write-snapshot isolation) or "ssi" (serializable SI).  See
    #: ``docs/isolation.md`` and :mod:`repro.core.isolation`.
    isolation: str = "si"
    #: Partition placement: "hash" (modulo, the paper's layout) or
    #: "range" (contiguous hash-space slices), optionally with a
    #: virtual-node count ("hash:16" = 16 partitions per node).  See
    #: :class:`repro.elastic.PlacementSpec` and ``docs/elasticity.md``.
    placement: str = "hash"

    def __post_init__(self) -> None:
        if self.commit_managers < 1:
            raise InvalidState("need at least one commit manager")
        if self.isolation not in ("si", "wsi", "ssi"):
            raise InvalidState(
                f"unknown isolation mode {self.isolation!r} "
                f"(expected si, wsi, or ssi)"
            )
        if self.storage_nodes < 1:
            raise InvalidState("need at least one storage node")
        if self.replication_factor < 1:
            raise InvalidState("replication factor must be >= 1")
        if self.replication_factor > self.storage_nodes:
            raise InvalidState(
                f"replication factor {self.replication_factor} exceeds "
                f"the {self.storage_nodes} storage node(s)"
            )
        if self.partitions_per_node < 1:
            raise InvalidState("need at least one partition per node")
        if self.tid_range_size < 1:
            raise InvalidState("tid range size must be >= 1")
        name = str(self.buffering).lower()
        if not name.startswith(_BUFFERING_PREFIXES):
            raise InvalidState(
                f"unknown buffering strategy {self.buffering!r} "
                f"(expected tb, sb, or sbvs<unit>)"
            )
        if name.startswith("sbvs") and len(name) > 4:
            try:
                int(name[4:])
            except ValueError:
                raise InvalidState(
                    f"malformed sbvs unit size in {self.buffering!r}"
                ) from None
        from repro.elastic.topology import PlacementSpec

        PlacementSpec.parse(self.placement)  # raises InvalidState when bad

    def with_(self, **changes: object) -> "DatabaseConfig":
        """A modified copy (validation runs again)."""
        return replace(self, **changes)

    @classmethod
    def field_names(cls) -> tuple:
        return tuple(spec.name for spec in fields(cls))
