"""The embedded database: a full Tell deployment in one process.

``Database`` wires the storage cluster, commit manager(s), management
node, and any number of processing nodes, and hands out SQL sessions.
Everything runs through the same protocol coroutines the distributed
simulation uses -- only the driver differs (direct, zero-latency).

Example::

    import repro

    with repro.connect(storage_nodes=3, replication_factor=2) as db:
        with db.session() as session:
            session.execute("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
            session.execute("INSERT INTO t VALUES (1, 'hello')")
            print(session.query("SELECT v FROM t WHERE id = 1"))
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.api.config import DatabaseConfig
from repro.api.runner import DirectRunner, Router
from repro.core.buffers import make_strategy
from repro.core.commit_manager import CommitManager
from repro.core.isolation import make_protocol, make_validator
from repro.core.processing_node import ProcessingNode
from repro.core.recovery import recover_processing_node
from repro.core.txlog import TransactionLog
from repro.errors import InvalidState
from repro.sql.session import Session
from repro.sql.table import IndexManager
from repro.store.cluster import StorageCluster
from repro.store.management import ManagementNode


class Database:
    """An embedded shared-data database.

    Construct either from a validated :class:`DatabaseConfig` (the
    :func:`repro.connect` front door) or with the same fields as
    keyword arguments -- the keyword form builds a config internally,
    so validation happens in exactly one place.
    """

    def __init__(self, config: Optional[DatabaseConfig] = None, **kwargs: object):
        if config is not None and kwargs:
            raise InvalidState(
                "pass either a DatabaseConfig or keyword arguments, not both"
            )
        if config is None:
            config = DatabaseConfig(**kwargs)  # type: ignore[arg-type]
        self.config = config
        self.cluster = StorageCluster(
            n_nodes=config.storage_nodes,
            replication_factor=config.replication_factor,
            partitions_per_node=config.partitions_per_node,
            placement=config.placement,
        )
        self.management = ManagementNode(self.cluster)
        self.protocol = make_protocol(config.isolation)
        # Shared across every manager of the deployment (see
        # repro.core.isolation.make_validator); None under plain SI.
        self.validator = make_validator(config.isolation)
        self.commit_managers: List[CommitManager] = [
            CommitManager(
                cm_id, self.cluster.execute, config.tid_range_size,
                interleaved=config.interleaved_tids,
                n_managers=config.commit_managers,
                validator=self.validator,
            )
            for cm_id in range(config.commit_managers)
        ]
        self.buffering = config.buffering
        self._next_pn_id = 0
        self.processing_nodes: Dict[int, ProcessingNode] = {}
        self._runners: Dict[int, DirectRunner] = {}
        self._closed = False
        self.obs = self._make_obs()

    def _make_obs(self):
        from repro import obs as obs_module

        if not (self.config.observability or obs_module.obs_enabled()):
            return None
        from repro.obs import collect

        hub = obs_module.Observability()
        collect.watch_storage_cluster(hub.registry, self.cluster)
        for manager in self.commit_managers:
            collect.watch_commit_manager(hub.registry, manager)
        collect.watch_topology(hub.registry, self.cluster.topology)
        return hub

    # -- lifecycle ----------------------------------------------------------------------

    def close(self) -> None:
        """Release the deployment: detach PNs and refuse new sessions.

        Idempotent.  The underlying storage structures stay readable for
        anyone still holding a reference, but :meth:`session` raises.
        """
        if self._closed:
            return
        self._closed = True
        self.processing_nodes.clear()
        self._runners.clear()

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()

    # -- cluster administration -------------------------------------------------

    def admin(self) -> "ClusterAdmin":
        """The cluster-administration surface (see
        :class:`repro.api.admin.ClusterAdmin`): storage scale-out/in with
        partition rebalancing, PN pool grow/shrink, topology inspection.
        Context-managed; leaving the block verifies no migration residue
        or transaction pin leaked."""
        if self._closed:
            raise InvalidState("database is closed")
        from repro.api.admin import ClusterAdmin

        return ClusterAdmin(self)

    # -- processing layer elasticity -------------------------------------------------

    def add_processing_node(self) -> ProcessingNode:
        """Attach a new PN (the shared-data architecture's cheap scaling
        step: no data movement, just a new instance)."""
        if self._closed:
            raise InvalidState("database is closed")
        pn_id = self._next_pn_id
        self._next_pn_id += 1
        pn = ProcessingNode(
            pn_id, buffers=make_strategy(self.buffering),
            protocol=self.protocol,
        )
        commit_manager = self.commit_managers[pn_id % len(self.commit_managers)]
        router = Router(self.cluster, commit_manager, pn_id)
        self.processing_nodes[pn_id] = pn
        self._runners[pn_id] = DirectRunner(router)
        if self.obs is not None:
            from repro.obs import collect

            pn.obs = self.obs
            collect.watch_processing_node(self.obs.registry, pn)
        return pn

    def remove_processing_node(self, pn_id: int) -> None:
        """Detach a PN cleanly (its soft state simply disappears)."""
        self.processing_nodes.pop(pn_id, None)
        self._runners.pop(pn_id, None)

    def crash_commit_manager(self, cm_id: int) -> CommitManager:
        """Simulate a commit-manager failure and start a replacement.

        Per Section 4.4.3 a single-manager failure blocks new transactions
        until the in-flight ones complete (they do not need the manager to
        finish); then a replacement starts, restoring its state from the
        store: the shared tid counter both guarantees fresh tids and
        bounds the completed set -- after the drain, every assigned tid
        has finished.  With multiple managers, the peers' regular state
        publications are merged in as well.  Processing nodes wired to
        the failed manager switch to the replacement automatically.
        """
        from repro import effects
        from repro.core.commit_manager import META_SPACE, TID_COUNTER_KEY
        from repro.core.snapshot import SnapshotDescriptor

        failed = self.commit_managers[cm_id]
        if failed._active_base:
            raise InvalidState(
                "the failed manager still has active transactions; they "
                "must complete (or be recovered) before a replacement "
                "starts (paper Section 4.4.3)"
            )
        peer_ids = [m.cm_id for m in self.commit_managers if m.cm_id != cm_id]
        # The WSI/SSI validator is shared deployment state: with live
        # peers it survives the crash (it models store-synchronized
        # records).  A single-manager deployment loses it with the
        # manager, so the replacement gets a fresh one whose recovery
        # horizon conservatively aborts pre-crash transactions.
        validator = failed.validator
        if validator is not None and len(self.commit_managers) == 1:
            validator = make_validator(self.config.isolation)
        replacement = CommitManager.recover(
            cm_id, self.cluster.execute, peer_ids,
            tid_range_size=failed.tid_range_size,
            interleaved=failed.interleaved,
            n_managers=failed.n_managers,
            validator=validator,
        )
        # After a full drain (no manager has active transactions), every
        # tid up to the shared counter has completed, so the counter
        # bounds the replacement's snapshot.  With live peers still
        # running transactions this shortcut would wrongly mark their
        # in-flight tids complete, so it only applies to a quiet cluster;
        # otherwise the peers' publications (absorbed above) provide the
        # recoverable state and the base catches up via syncs.
        fully_drained = all(
            manager is failed or not manager._active_base
            for manager in self.commit_managers
        )
        if fully_drained:
            counter, _version = self.cluster.execute(
                effects.Get(META_SPACE, TID_COUNTER_KEY)
            )
            if counter:
                replacement.completed.merge_snapshot(
                    SnapshotDescriptor(counter, 0)
                )
                replacement.last_assigned_tid = max(
                    replacement.last_assigned_tid, counter
                )
        if validator is not None and validator is not failed.validator:
            validator.mark_recovered(replacement.highest_known_tid())
            self.validator = validator
        self.commit_managers[cm_id] = replacement
        for runner in self._runners.values():
            if runner.router.commit_manager is failed:
                runner.router.commit_manager = replacement
        if self.obs is not None:
            from repro.obs import collect

            # The replacement's collector registers after the failed
            # manager's, so its values win for the shared cm label.
            collect.watch_commit_manager(self.obs.registry, replacement)
        return replacement

    def crash_processing_node(self, pn_id: int) -> List[int]:
        """Simulate a PN crash and run the recovery process.

        Returns the tids that were rolled back.
        """
        self.remove_processing_node(pn_id)
        runner = self._any_runner()
        return runner.run(
            recover_processing_node(pn_id, self.commit_managers, TransactionLog())
        )

    # -- sessions ------------------------------------------------------------------------

    def session(self, pn_id: Optional[int] = None) -> Session:
        """Open a SQL session (creating a PN when none specified exists)."""
        if self._closed:
            raise InvalidState("database is closed")
        if pn_id is None:
            pn = self.add_processing_node()
            pn_id = pn.pn_id
        pn = self.processing_nodes[pn_id]
        indexes = IndexManager()
        if self.obs is not None:
            from repro.obs import collect

            collect.watch_index_manager(self.obs.registry, indexes, pn_id)
        return Session(pn, self._runners[pn_id], indexes)

    # -- maintenance ----------------------------------------------------------------------

    def sync_commit_managers(self) -> None:
        """Synchronize all commit managers to a converged view.

        In the simulated deployment a background task runs one sync round
        per manager every ~1 ms and views converge over rounds; this
        embedded-mode convenience runs two passes so that a publication
        made after an earlier manager's absorb step still propagates.
        """
        peer_ids = [manager.cm_id for manager in self.commit_managers]
        for _pass in range(2):
            for manager in self.commit_managers:
                manager.sync(peer_ids)

    def lowest_active_version(self) -> int:
        return min(
            manager.lowest_active_version() for manager in self.commit_managers
        )

    def _any_runner(self) -> DirectRunner:
        if self._runners:
            return next(iter(self._runners.values()))
        pn = self.add_processing_node()
        return self._runners[pn.pn_id]

    def __repr__(self) -> str:
        state = " closed" if self._closed else ""
        return (
            f"<Database SNs={len(self.cluster.nodes)} "
            f"PNs={len(self.processing_nodes)} "
            f"CMs={len(self.commit_managers)}{state}>"
        )


def connect(config: Optional[DatabaseConfig] = None, **kwargs: object) -> Database:
    """Open an embedded database; see :func:`repro.connect`."""
    return Database(config, **kwargs)
