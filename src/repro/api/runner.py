"""Direct (synchronous) execution of protocol coroutines.

The :class:`Router` resolves every effect immediately against in-process
components; :class:`DirectRunner` drives a coroutine to completion with
it.  This gives the embedded API and the unit tests the exact same code
paths the simulation exercises, minus the timing.
"""

from __future__ import annotations

from typing import Any, Optional

from repro import effects
from repro.core.commit_manager import CommitManager
from repro.store.cluster import StorageCluster


class Router:
    """Binds one processing node's effects to its targets."""

    def __init__(
        self,
        cluster: StorageCluster,
        commit_manager: Optional[CommitManager] = None,
        pn_id: int = -1,
    ):
        self.cluster = cluster
        self.commit_manager = commit_manager
        self.pn_id = pn_id

    def execute(self, request: effects.Request) -> Any:
        if isinstance(request, (effects.StoreRequest, effects.Batch)):
            return self.cluster.execute(request)
        if isinstance(request, effects.StartTransaction):
            return self._commit_manager().start(self.pn_id)
        if isinstance(request, effects.ReportCommitted):
            self._commit_manager().set_committed(request.tid)
            return None
        if isinstance(request, effects.ReportAborted):
            self._commit_manager().set_aborted(request.tid)
            return None
        if isinstance(request, (effects.Compute, effects.Sleep)):
            return None  # time is not modelled in direct mode
        raise TypeError(f"unroutable request: {request!r}")

    def _commit_manager(self) -> CommitManager:
        if self.commit_manager is None:
            raise RuntimeError("no commit manager attached to this router")
        return self.commit_manager


class DirectRunner:
    """Runs protocol coroutines synchronously through a router."""

    def __init__(self, router: Router):
        self.router = router

    def run(self, generator) -> Any:
        return effects.run_direct(generator, self.router)
