"""Direct (synchronous) execution of protocol coroutines.

The :class:`Router` resolves every effect immediately against in-process
components; :class:`DirectRunner` drives a coroutine to completion with
it.  This gives the embedded API and the unit tests the exact same code
paths the simulation exercises, minus the timing.

Routing itself lives in :mod:`repro.dispatch`: ``Router`` is the direct
:class:`~repro.dispatch.direct.Dispatcher` bound to this API's component
types, optionally wrapped in an interceptor chain (tracing, fault
injection, retry policy -- see ``docs/dispatch.md``).
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro import effects
from repro.core.commit_manager import CommitManager
from repro.dispatch import Dispatcher, Interceptor
from repro.store.cluster import StorageCluster


class Router(Dispatcher):
    """Binds one processing node's effects to its targets."""

    def __init__(
        self,
        cluster: StorageCluster,
        commit_manager: Optional[CommitManager] = None,
        pn_id: int = -1,
        interceptors: Sequence[Interceptor] = (),
    ):
        super().__init__(cluster, commit_manager, pn_id, interceptors)


class DirectRunner:
    """Runs protocol coroutines synchronously through a router."""

    def __init__(self, router: Router):
        self.router = router

    def run(self, generator) -> Any:
        return effects.run_direct(generator, self.router)
