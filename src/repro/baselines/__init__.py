"""Comparison systems for Figures 8 and 9 (Section 6.4/6.5).

The paper compares Tell against VoltDB, MySQL Cluster, and FoundationDB.
Tell itself is fully implemented in this repository; the three closed-
source/complex comparators are reproduced as *mechanism-faithful
simulations*: closed-loop engines on the same discrete-event kernel,
driven by the same TPC-C parameter generator, each encoding the
architectural bottleneck the paper identifies:

* VoltDB-like (:mod:`repro.baselines.voltdb_like`): serial execution per
  partition; cross-partition transactions block *every* partition for a
  multi-round coordination, which is why throughput *drops* as nodes are
  added under the standard mix and shines under the shardable mix.
* MySQL-Cluster-like (:mod:`repro.baselines.ndb_like`): concurrent
  row-level 2PC; single-partition transactions are not blocked by
  distributed ones, but every operation pays the SQL-node federation
  overhead, so the system is slow regardless of scale.
* FoundationDB-like (:mod:`repro.baselines.fdb_like`): shared-data with
  optimistic concurrency, but an unbatched one-round-trip-per-row SQL
  layer and a centralized commit pipeline -- it scales with cores yet
  sits an order of magnitude below Tell.
"""

from repro.baselines.common import BaselineConfig, TxnWork, txn_work
from repro.baselines.voltdb_like import VoltDBLike
from repro.baselines.ndb_like import MySqlClusterLike
from repro.baselines.fdb_like import FoundationDBLike

__all__ = [
    "BaselineConfig",
    "FoundationDBLike",
    "MySqlClusterLike",
    "TxnWork",
    "VoltDBLike",
    "txn_work",
]
