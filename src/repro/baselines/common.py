"""Shared machinery for the baseline engines.

Each baseline is a closed-loop simulation: terminal processes draw
transaction parameters from the *same* TPC-C generator Tell uses, derive
the transaction's work profile (rows touched, warehouses involved), and
submit it to the engine, which decides when it completes.  Conflict and
blocking behaviour therefore comes from real TPC-C access patterns (e.g.
the actual ~11% cross-warehouse rate of the standard mix), not from a
hard-coded constant.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Sequence, Set, Tuple

from repro.bench.metrics import TxnMetrics
from repro.dispatch import (
    DispatchContext,
    DispatchEnv,
    Interceptor,
    attach_all,
    compose,
)
from repro.sim.kernel import Simulator
from repro.workloads.tpcc.mixes import MIXES, TpccMix
from repro.workloads.tpcc.params import (
    DeliveryParams,
    NewOrderParams,
    OrderStatusParams,
    ParamGenerator,
    PaymentParams,
    StockLevelParams,
    TpccScale,
)


@dataclass
class TxnWork:
    """What a transaction does, independent of the executing engine."""

    name: str
    home_warehouse: int
    warehouses: Set[int]
    rows_read: int
    rows_written: int

    @property
    def is_distributed(self) -> bool:
        return len(self.warehouses) > 1

    @property
    def rows(self) -> int:
        return self.rows_read + self.rows_written


def txn_work(name: str, params, scale: TpccScale) -> TxnWork:  # noqa: ANN001
    """Derive the work profile from generated parameters."""
    if isinstance(params, NewOrderParams):
        warehouses = {params.w_id} | {supply for _i, supply, _q in params.items}
        n_items = len(params.items)
        return TxnWork(name, params.w_id, warehouses,
                       rows_read=3 + 2 * n_items,
                       rows_written=2 + 2 * n_items + n_items)
    if isinstance(params, PaymentParams):
        warehouses = {params.w_id, params.c_w_id}
        return TxnWork(name, params.w_id, warehouses, rows_read=4, rows_written=4)
    if isinstance(params, OrderStatusParams):
        return TxnWork(name, params.w_id, {params.w_id},
                       rows_read=13, rows_written=0)
    if isinstance(params, DeliveryParams):
        districts = scale.districts_per_warehouse
        return TxnWork(name, params.w_id, {params.w_id},
                       rows_read=4 * districts, rows_written=13 * districts)
    if isinstance(params, StockLevelParams):
        return TxnWork(name, params.w_id, {params.w_id},
                       rows_read=40, rows_written=0)
    raise TypeError(f"unknown params {params!r}")


@dataclass
class BaselineConfig:
    """Deployment shape shared by the baseline engines."""

    nodes: int = 3
    cores_per_node: int = 8
    replication_factor: int = 3
    scale: TpccScale = field(default_factory=lambda: TpccScale.small(8))
    mix: str = "standard"
    terminals: int = 64
    duration_us: float = 1_000_000.0
    warmup_us: float = 100_000.0
    seed: int = 1

    @property
    def total_cores(self) -> int:
        return self.nodes * self.cores_per_node


class BaselineEngine:
    """Base class: terminal loop + metrics; engines implement execute().

    The terminal loop routes every transaction through the shared
    :mod:`repro.dispatch` pipeline: ``interceptors`` wrap
    :meth:`execute` with the uniform ``intercept(request, ctx, next)``
    protocol, where the "request" is the engine-independent
    :class:`TxnWork`.  The empty chain composes to ``execute`` itself.
    """

    name = "baseline"

    def __init__(self, config: BaselineConfig,
                 interceptors: Sequence[Interceptor] = ()):
        self.config = config
        self.sim = Simulator()
        self.metrics = TxnMetrics()
        self.mix: TpccMix = MIXES[config.mix]
        self.interceptors = list(interceptors)
        if self.interceptors:
            attach_all(
                self.interceptors,
                DispatchEnv(sim=self.sim, metrics=self.metrics),
            )

    def execute(self, work: TxnWork) -> Generator:
        """Simulate one transaction; returns 'committed' or 'conflict'."""
        raise NotImplementedError

    def _terminal(self, seed: int, warmup_end: float, end_time: float) -> Generator:
        rng = random.Random(seed)
        # Paper setup: each terminal has a home warehouse.
        home = rng.randint(1, self.config.scale.warehouses)
        params_gen = ParamGenerator(
            self.config.scale,
            seed=seed ^ 0xC0FFEE,
            remote_accesses=self.mix.remote_accesses,
            home_warehouse=home,
        )
        chain = compose(
            self.interceptors,
            self.execute,
            DispatchContext(clock=self.sim.clock(), engine=self.name),
        )
        while self.sim.now < end_time:
            txn_name = self.mix.pick(rng)
            params = getattr(params_gen, txn_name)()
            work = txn_work(txn_name, params, self.config.scale)
            started = self.sim.now
            outcome = yield from chain(work)
            if getattr(params, "rollback", False) and outcome == "committed":
                outcome = "user_abort"  # the spec's 1% new-order rollback
            if started >= warmup_end:
                self.metrics.record(txn_name, outcome, self.sim.now - started)

    def run(self) -> TxnMetrics:
        config = self.config
        warmup_end = min(config.warmup_us, config.duration_us)
        for terminal in range(config.terminals):
            seed = (config.seed * 7919 + terminal * 104729) & 0x7FFFFFFF
            self.sim.spawn(
                self._terminal(seed, warmup_end, config.duration_us),
                name=f"{self.name}-terminal-{terminal}",
            )
        self.sim.run(until=config.duration_us)
        self.metrics.measured_time_us = config.duration_us - warmup_end
        return self.metrics
