"""FoundationDB-like baseline: shared-data, but a chatty SQL layer.

FoundationDB shares Tell's architecture on paper (decoupled SQL layer
over a transactional key-value store, optimistic MVCC), yet the paper
measures it a factor ~30 below Tell.  Section 6.5 attributes the gap to
implementation: the young SQL layer issues *one key-value round trip per
row* (no batching), burns substantial CPU per operation, and funnels
commits through a centralized pipeline (get-read-version / resolver),
with a bounded number of in-flight transactions per SQL-layer node.

The model: each transaction occupies one of the node's transaction slots
for ``rows x per-op latency`` plus the commit round through the central
sequencer pool.  Throughput therefore scales with nodes (slots) but sits
orders of magnitude below a batching engine -- reproducing both the
scaling and the gap of Figure 8, and the ~150-250 ms latencies of
Table 4.
"""

from __future__ import annotations

from typing import Generator

from repro.baselines.common import BaselineConfig, BaselineEngine, TxnWork
from repro.bench.simcluster import CorePool
from repro.sim.kernel import Delay

#: Per-row cost in the SQL layer: interpretation + one unbatched KV
#: round trip (us).
PER_ROW_US = 3500.0
#: Commit: get-read-version + resolver round through the central pipeline.
COMMIT_FIXED_US = 3000.0
#: Central sequencer/resolver service per commit (us).
SEQUENCER_US = 50.0
#: Concurrent transactions each SQL-layer node sustains.
SLOTS_PER_NODE = 6


class FoundationDBLike(BaselineEngine):
    name = "foundationdb"

    def __init__(self, config: BaselineConfig):
        super().__init__(config)
        self.slots = CorePool(config.nodes * SLOTS_PER_NODE)
        self.sequencer = CorePool(1)

    def execute(self, work: TxnWork) -> Generator:
        now = self.sim.now
        duration = work.rows * PER_ROW_US + COMMIT_FIXED_US
        _start, slot_done = self.slots.reserve(now, duration)
        _s, end = self.sequencer.reserve(slot_done, SEQUENCER_US)
        yield Delay(end - now)
        return "committed"
