"""MySQL-Cluster-like baseline: federated SQL nodes over NDB data nodes.

MySQL Cluster executes transactions concurrently with row-level locking
and two-phase commit.  Single-partition transactions are not blocked by
distributed ones (which is why the paper finds it "slightly faster than
VoltDB" under the standard mix), but *every* row access crosses the SQL
node -> data node boundary, paying federation CPU and a network hop, and
writes are synchronously replicated.  The resulting per-operation cost is
what keeps throughput almost flat regardless of cluster size (Figures
8/9: ~84 k TpmC standard, +1-2 % shardable).
"""

from __future__ import annotations

from typing import Generator, List

from repro.baselines.common import BaselineConfig, BaselineEngine, TxnWork
from repro.bench.simcluster import CorePool
from repro.sim.kernel import Delay

#: CPU burned per row operation across SQL + data node (us).
OP_CPU_US = 320.0
#: Extra CPU per row write per synchronous replica (us).
OP_REPLICA_US = 110.0
#: TCP round trip between SQL node and data node (us).
OP_RTT_US = 90.0
#: Extra rounds for two-phase commit of a distributed transaction.
TPC_ROUND_US = 450.0
#: Row operations batched per network round trip by the NDB API.
OPS_PER_ROUND = 4.0
#: The transaction-coordination tier (TC threads + SQL-node commit
#: handling) does not grow with data nodes in the paper's setup; it caps
#: cluster throughput and is why the MySQL curve stays nearly flat.
TC_POOL_SIZE = 4
TC_SERVICE_US = 1100.0


class MySqlClusterLike(BaselineEngine):
    name = "mysql-cluster"

    def __init__(self, config: BaselineConfig):
        super().__init__(config)
        # One pool models the combined CPU of SQL + data nodes.
        self.cpu = CorePool(config.total_cores)
        self.coordinator = CorePool(TC_POOL_SIZE)

    def execute(self, work: TxnWork) -> Generator:
        config = self.config
        replicas = max(0, config.replication_factor - 1)
        cpu_us = (
            work.rows * OP_CPU_US + work.rows_written * OP_REPLICA_US * replicas
        )
        now = self.sim.now
        _start, cpu_done = self.cpu.reserve(now, cpu_us)
        wire_us = OP_RTT_US * (work.rows / OPS_PER_ROUND)
        if work.is_distributed:
            wire_us += 2 * TPC_ROUND_US  # prepare + commit rounds
        if work.rows_written:
            _s, tc_done = self.coordinator.reserve(cpu_done, TC_SERVICE_US)
        else:
            tc_done = cpu_done
        end = tc_done + wire_us
        yield Delay(end - now)
        return "committed"
