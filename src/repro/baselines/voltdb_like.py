"""VoltDB-like baseline: serial partitions, cluster-blocking MP txns.

VoltDB executes transactions serially on each partition without any
concurrency control; single-partition (SP) transactions are extremely
cheap.  A multi-partition (MP) transaction, however, is coordinated by a
single initiator and *blocks every partition* until it completes -- with
network round trips in the middle.  Under the TPC-C standard mix (~11 %
cross-warehouse transactions) the MP pipeline is the whole system's
bottleneck, and it gets *worse* with more nodes because coordination
spans more machines: exactly the declining curve of Figure 8.  Under the
shardable mix (Figure 9) everything is SP and throughput scales with
partitions.

Calibration anchors (from the paper's numbers): a site executes on the
order of 1k TPC-C transactions per second; MP coordination costs a few
milliseconds and grows with cluster size; K-safety replication costs
~7 % per additional copy on the write path.
"""

from __future__ import annotations

from typing import Generator, List

from repro.baselines.common import BaselineConfig, BaselineEngine, TxnWork
from repro.bench.simcluster import CorePool
from repro.sim.kernel import Delay

#: Per-partition execution cost: fixed dispatch + per-row work (us).
SP_BASE_US = 300.0
SP_PER_ROW_US = 25.0
#: MP coordination: fixed + per-node cost (us); holds ALL partitions.
MP_BASE_US = 2000.0
MP_PER_NODE_US = 800.0
#: Throughput cost of each additional synchronous replica (K-safety).
REPLICA_WRITE_FACTOR = 0.075
SITES_PER_NODE = 6


class VoltDBLike(BaselineEngine):
    name = "voltdb"

    def __init__(self, config: BaselineConfig):
        super().__init__(config)
        self.n_partitions = config.nodes * SITES_PER_NODE
        self.partitions: List[CorePool] = [
            CorePool(1) for _ in range(self.n_partitions)
        ]

    def _partition_of(self, warehouse: int) -> int:
        return (warehouse - 1) % self.n_partitions

    def _service_us(self, work: TxnWork) -> float:
        service = SP_BASE_US + SP_PER_ROW_US * work.rows
        if work.rows_written and self.config.replication_factor > 1:
            service *= 1.0 + REPLICA_WRITE_FACTOR * (
                self.config.replication_factor - 1
            )
        return service

    def execute(self, work: TxnWork) -> Generator:
        now = self.sim.now
        involved = {self._partition_of(w) for w in work.warehouses}
        if len(involved) == 1:
            pool = self.partitions[next(iter(involved))]
            _start, end = pool.reserve(now, self._service_us(work))
            yield Delay(end - now)
            return "committed"
        # Multi-partition: the initiator blocks the whole cluster while
        # the coordination rounds run.
        duration = (
            self._service_us(work)
            + MP_BASE_US
            + MP_PER_NODE_US * self.config.nodes
        )
        start = now
        for pool in self.partitions:
            start = max(start, pool.earliest(now))
        end = start + duration
        for pool in self.partitions:
            pool.reserve(start, duration)
        yield Delay(end - now)
        return "committed"
