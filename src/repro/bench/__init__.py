"""Benchmark harness: simulated deployments, metrics, experiment configs.

This package regenerates the paper's evaluation (Section 6): every figure
and table has a corresponding experiment function here and a bench file
under ``benchmarks/``.
"""

from repro.bench.config import TellConfig
from repro.bench.metrics import LatencyStats, TxnMetrics

__all__ = ["LatencyStats", "TellConfig", "TxnMetrics"]
