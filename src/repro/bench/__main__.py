"""Command-line entry point: run any of the paper's experiments.

Examples::

    python -m repro.bench --list
    python -m repro.bench fig5
    REPRO_BENCH_PROFILE=smoke python -m repro.bench fig8 table3
    python -m repro.bench fig10 --profile full
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.bench import experiments
from repro.bench.tables import TABLE1_HEADERS, TABLE1_ROWS, print_table


def _fig5():
    rows = experiments.run_scaleout_processing("standard")
    print_table(
        ["RF", "PNs", "TpmC", "Abort rate", "Latency (ms)"],
        [(r["rf"], r["pns"], r["tpmc"], f"{r['abort_rate'] * 100:.2f}%",
          r["latency_ms"]) for r in rows],
        title="Figure 5: scale-out processing (write-intensive)",
    )


def _fig6():
    rows = experiments.run_scaleout_processing("read-intensive")
    print_table(
        ["RF", "PNs", "Tps", "Abort rate", "Latency (ms)"],
        [(r["rf"], r["pns"], r["tps"], f"{r['abort_rate'] * 100:.2f}%",
          r["latency_ms"]) for r in rows],
        title="Figure 6: scale-out processing (read-intensive)",
    )


def _fig7():
    rows = experiments.run_scaleout_storage()
    print_table(
        ["SNs", "PNs", "TpmC", "Abort rate"],
        [(r["sns"], r["pns"], r["tpmc"], f"{r['abort_rate'] * 100:.2f}%")
         for r in rows],
        title="Figure 7: scale-out storage (RF3)",
    )


def _fig8():
    rows = experiments.run_system_comparison("standard")
    print_table(
        ["System", "Cores", "TpmC", "Latency (ms)"],
        [(r["system"], r["cores"], r["tpmc"], r["latency_ms"]) for r in rows],
        title="Figure 8: system comparison (standard mix, RF3)",
    )


def _fig9():
    rows = experiments.run_system_comparison("shardable", (1, 3))
    print_table(
        ["System", "RF", "Cores", "TpmC"],
        [(r["system"], r["rf"], r["cores"], r["tpmc"]) for r in rows],
        title="Figure 9: system comparison (shardable mix)",
    )


def _fig10():
    rows = experiments.run_network_comparison()
    print_table(
        ["Network", "PNs", "TpmC", "Latency (ms)", "TP99", "TP999"],
        [(r["network"], r["pns"], r["tpmc"], r["latency_ms"], r["tp99_ms"],
          r["tp999_ms"]) for r in rows],
        title="Figure 10 / Table 5: network technology",
    )


def _fig11():
    rows = experiments.run_buffering_strategies()
    print_table(
        ["Strategy", "PNs", "TpmC", "Hit ratio"],
        [(r["strategy"], r["pns"], r["tpmc"],
          f"{r['hit_ratio'] * 100:.2f}%") for r in rows],
        title="Figure 11: buffering strategies",
    )


def _table1():
    print_table(TABLE1_HEADERS, TABLE1_ROWS, title="Table 1")


def _table4():
    from repro.obs import PHASE_TABLE_HEADERS, phase_table_rows

    snapshot = experiments.run_phase_breakdown()
    print_table(
        PHASE_TABLE_HEADERS, phase_table_rows(snapshot),
        title="Table 4: response-time decomposition by phase",
    )


def _table3():
    rows = experiments.run_commit_managers()
    print_table(
        ["Commit managers", "TpmC", "Abort rate"],
        [(r["commit_managers"], r["tpmc"], f"{r['abort_rate'] * 100:.2f}%")
         for r in rows],
        title="Table 3: commit managers",
    )


def _ablations():
    for name, func in (
        ("batching", experiments.run_ablation_batching),
        ("sync-interval", experiments.run_ablation_sync_interval),
        ("tid-ranges", experiments.run_ablation_tid_ranges),
    ):
        rows = func()
        headers = list(rows[0].keys())
        print_table(headers, [[r[h] for h in headers] for r in rows],
                    title=f"Ablation: {name}")


def _ycsb():
    from repro.bench.config import TellConfig
    from repro.bench.ycsb_sim import SimulatedYcsb

    profile = experiments.bench_profile()
    rows = []
    for mix in ("A", "B", "C"):
        for pns in profile.pn_counts:
            config = TellConfig(
                processing_nodes=pns, storage_nodes=5,
                threads_per_pn=profile.threads_per_pn, mix=mix,
                duration_us=profile.duration_us / 2,
                warmup_us=profile.warmup_us / 2,
            )
            deployment = SimulatedYcsb(config, record_count=20_000)
            deployment.load()
            metrics = deployment.run()
            rows.append((f"YCSB-{mix}", pns, metrics.tps,
                         f"{metrics.abort_rate * 100:.2f}%"))
    print_table(["Mix", "PNs", "Tps", "Abort rate"], rows,
                title="Extension: YCSB zipfian scaling")


EXPERIMENTS = {
    "table1": _table1,
    "table4": _table4,
    "fig5": _fig5,
    "fig6": _fig6,
    "fig7": _fig7,
    "table3": _table3,
    "fig8": _fig8,
    "fig9": _fig9,
    "fig10": _fig10,
    "table5": _fig10,
    "fig11": _fig11,
    "ablations": _ablations,
    "ycsb": _ycsb,
}


def _write_snapshots(directory, experiment, snapshots) -> int:
    """Write each ``(label, snapshot)`` pair next to the printed results
    as ``<experiment>-<NN>-<label>.json`` (+ Prometheus text)."""
    from repro.obs import to_json, to_prometheus

    os.makedirs(directory, exist_ok=True)
    for index, (label, snapshot) in enumerate(snapshots):
        stem = os.path.join(directory, f"{experiment}-{index:02d}-{label}")
        with open(stem + ".json", "w", encoding="utf-8") as handle:
            handle.write(to_json(snapshot))
        with open(stem + ".prom", "w", encoding="utf-8") as handle:
            handle.write(to_prometheus(snapshot))
    return len(snapshots)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("experiments", nargs="*",
                        help=f"one or more of: {', '.join(EXPERIMENTS)}")
    parser.add_argument("--list", action="store_true",
                        help="list available experiments")
    parser.add_argument("--suite", choices=("scale", "isolation", "elastic"),
                        help="run a benchmark suite instead of the paper "
                             "experiments (scale: 16/64/128-node + "
                             "100-warehouse deployments; isolation: the "
                             "same skew workload under SI/WSI/SSI; "
                             "elastic: live SN double/halve cycles with "
                             "before/during/after throughput; all "
                             "appended to the perf report)")
    parser.add_argument("--smoke", action="store_true",
                        help="with --suite: run only the smoke-sized "
                             "configuration (the CI gate)")
    parser.add_argument("--report", default="BENCH_perf.json",
                        help="with --suite: perf report to merge results "
                             "into (default: BENCH_perf.json); '-' skips "
                             "the write")
    parser.add_argument("--profile", choices=("smoke", "quick", "full"),
                        help="sizing profile (default: REPRO_BENCH_PROFILE "
                             "or 'quick')")
    parser.add_argument("--cprofile", metavar="STATS_FILE", nargs="?",
                        const="-", default=None,
                        help="run under cProfile; write pstats to STATS_FILE "
                             "or print the top functions when omitted")
    parser.add_argument("--sanitize", action="store_true",
                        help="attach the repro.san sanitizers to every "
                             "simulated cluster (slow; fails on SI/GC "
                             "invariant violations)")
    parser.add_argument("--obs", metavar="DIR", nargs="?",
                        const="obs-snapshots", default=None,
                        help="enable repro.obs on every simulated cluster "
                             "and write one metrics snapshot per run into "
                             "DIR (default: obs-snapshots/)")
    args = parser.parse_args(argv)

    if args.suite == "scale":
        from repro.bench.scale import (merge_scale_report, render_scale_curve,
                                       run_scale_suite)

        if args.sanitize:
            os.environ["REPRO_SANITIZE"] = "1"
        points = run_scale_suite(smoke=args.smoke)
        print(render_scale_curve(points))
        if args.report != "-":
            merge_scale_report(args.report, points)
            print(f"[scale points merged into {args.report}]")
        return 0

    if args.suite == "isolation":
        from repro.bench.isolation import (merge_isolation_report,
                                           render_isolation_table,
                                           run_isolation_suite)

        if args.sanitize:
            os.environ["REPRO_SANITIZE"] = "1"
        rows = run_isolation_suite()
        print(render_isolation_table(rows))
        if args.report != "-":
            merge_isolation_report(args.report, rows)
            print(f"[isolation rows merged into {args.report}]")
        return 0

    if args.suite == "elastic":
        from repro.bench.elastic import (merge_elastic_report,
                                         render_elastic_table,
                                         run_elastic_suite)

        if args.sanitize:
            os.environ["REPRO_SANITIZE"] = "1"
        points = run_elastic_suite(smoke=args.smoke)
        print(render_elastic_table(points))
        if args.report != "-":
            merge_elastic_report(args.report, points)
            print(f"[elastic points merged into {args.report}]")
        return 0

    if args.list or not args.experiments:
        for name in EXPERIMENTS:
            print(name)
        return 0
    if args.profile:
        os.environ["REPRO_BENCH_PROFILE"] = args.profile
    if args.sanitize:
        os.environ["REPRO_SANITIZE"] = "1"
    sink = None
    if args.obs is not None:
        from repro import obs

        os.environ[obs.ENV_FLAG] = "1"
        sink = obs.install_sink()

    profiler = None
    if args.cprofile is not None:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    try:
        for name in args.experiments:
            if name not in EXPERIMENTS:
                parser.error(f"unknown experiment {name!r}")
            started = time.time()
            first_snapshot = len(sink) if sink is not None else 0
            EXPERIMENTS[name]()
            print(f"[{name} finished in {time.time() - started:.1f}s]")
            if sink is not None:
                written = _write_snapshots(args.obs, name,
                                           sink[first_snapshot:])
                if written:
                    print(f"[{written} obs snapshot(s) written to "
                          f"{args.obs}/]")
    finally:
        if profiler is not None:
            profiler.disable()
            if args.cprofile == "-":
                import pstats

                stats = pstats.Stats(profiler, stream=sys.stderr)
                stats.sort_stats("cumulative").print_stats(30)
            else:
                profiler.dump_stats(args.cprofile)
                print(f"[cProfile stats written to {args.cprofile}]",
                      file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
