"""Experiment configuration for the simulated Tell deployment."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.workloads.tpcc.params import TpccScale


@dataclass
class TellConfig:
    """One simulated Tell cluster + workload configuration.

    The defaults model the paper's testbed shape (Section 6.1) at reduced
    scale: NUMA-unit nodes with 4 cores, 7 storage nodes, InfiniBand.
    """

    # cluster shape
    processing_nodes: int = 4
    storage_nodes: int = 7
    commit_managers: int = 1
    replication_factor: int = 1
    network: str = "infiniband"
    pn_cores: int = 4
    sn_cores: int = 4
    partitions_per_node: int = 8

    # Tell knobs
    buffering: str = "tb"            # tb | sb | sbvs10 | sbvs1000
    tid_range_size: int = 256
    interleaved_tids: bool = False   # the paper's future-work tid scheme
    cm_sync_interval_us: float = 1000.0
    batching: bool = True            # ablation: split batches when False
    #: The paper's request-batching knob for *implicit* batches: coalesce
    #: co-timed single-key requests from one PN to one SN into a single
    #: fabric message (one wire latency, summed serialization).  Off by
    #: default -- the off path is byte-identical to the historical
    #: simulation, which the determinism digest pins down.
    coalescing: bool = False
    threads_per_pn: int = 32         # synchronous worker threads per PN
    #: Isolation protocol: si | wsi | ssi (repro.core.isolation).  SI is
    #: the paper's protocol and keeps the simulation byte-identical to
    #: the historical driver.
    isolation: str = "si"
    #: Partition placement: "hash" | "range", optionally ":<virtual-node
    #: count>" ("hash:16").  See repro.elastic.PlacementSpec.
    placement: str = "hash"

    # CPU cost model
    cpu_per_row_us: float = 10.0     # query processing work per row touched
    txn_overhead_us: float = 30.0    # parse/plan/commit bookkeeping per txn

    # workload
    scale: TpccScale = field(default_factory=lambda: TpccScale.small(8))
    mix: str = "standard"
    duration_us: float = 1_000_000.0   # one simulated second
    warmup_us: float = 100_000.0
    seed: int = 1

    # observability (repro.obs): metrics registry + span tracing.  Off by
    # default; REPRO_OBS=1 enables it regardless of this flag.
    observability: bool = False

    def with_(self, **changes) -> "TellConfig":
        """A modified copy (dataclasses.replace wrapper)."""
        return replace(self, **changes)

    @property
    def total_cores(self) -> int:
        """Total CPU cores of the deployment, the x-axis of Figures 8/9
        (PNs + SNs + commit managers at 2 cores + 1 management node)."""
        return (
            self.processing_nodes * self.pn_cores
            + self.storage_nodes * self.sn_cores
            + self.commit_managers * 2
            + 2
        )
