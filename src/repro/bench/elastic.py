"""The ``elastic`` benchmark suite: throughput through live topology change.

ROADMAP item 1 asks for online elasticity; this suite measures what it
*costs*.  Each point runs the full simulated TPC-C deployment through a
diurnal storage cycle -- double the SN fleet mid-run, then drain back to
the original size -- while terminals keep committing, and reports
throughput and tail latency **before**, **during**, and **after** the
topology churn.  Migration batches are timed messages charged against
the same SN core pools as foreground traffic, so the "during" dip is a
measured quantity, not an annotation.

Phase capture works by swapping the deployment's live ``TxnMetrics``
sink at the phase boundaries (terminals read it per record, so the swap
is free and adds no simulated time); the digest covers the merged
series across all three phases plus the coordinator's event log, making
every point reproducible byte-for-byte under a fixed seed.

The ``autoscale16`` point replaces the fixed schedule with the
deterministic :class:`repro.elastic.Autoscaler` driving the same
coordinator, and records its decision log.

Use via ``python -m repro.bench --suite elastic`` (appends an
``elastic`` section to ``BENCH_perf.json``) or
:func:`run_elastic_suite` directly.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
import time
from typing import Any, Dict, List, Optional

from repro.bench.config import TellConfig
from repro.bench.metrics import TxnMetrics
from repro.workloads.tpcc.params import TpccScale

#: Phase boundaries as fractions of the run: the doubling starts at
#: ``_DOUBLE_AT``, the drain back at ``_HALVE_AT``, and everything after
#: ``_SETTLE_AT`` counts as the recovered steady state.
_DOUBLE_AT = 0.25
_HALVE_AT = 0.55
_SETTLE_AT = 0.85

PHASES = ("before", "during", "after")


def _point(
    label: str,
    pns: int,
    sns: int,
    *,
    warehouses: int,
    duration_us: float,
    threads_per_pn: int = 8,
    customers_per_district: int = 60,
    batch_cells: int = 256,
    autoscale: bool = False,
) -> Dict[str, Any]:
    scale = TpccScale(
        warehouses=warehouses,
        districts_per_warehouse=10,
        customers_per_district=customers_per_district,
        initial_orders_per_district=customers_per_district,
        items=1000,
    )
    config = TellConfig(
        processing_nodes=pns,
        storage_nodes=sns,
        threads_per_pn=threads_per_pn,
        scale=scale,
        duration_us=duration_us,
        warmup_us=duration_us / 10,
        seed=1,
    )
    return {
        "label": label,
        "config": config,
        "batch_cells": batch_cells,
        "autoscale": autoscale,
    }


#: The suite, smallest first.  ``smoke`` is the CI gate: a 2->4->2 SN
#: cycle small enough for every PR.  ``elastic64`` is the acceptance
#: configuration -- a 64-node deployment (16 PNs + 48 SNs) doubling and
#: halving its SN count under live TPC-C.  ``autoscale16`` starts the
#: same 16-node deployment deliberately storage-tight and lets the
#: deterministic autoscaler do the scaling instead of the schedule.
def elastic_points() -> List[Dict[str, Any]]:
    return [
        _point("smoke", 2, 2, warehouses=1, duration_us=240_000.0,
               threads_per_pn=4, customers_per_district=40,
               batch_cells=128),
        _point("diurnal16", 4, 12, warehouses=4, duration_us=300_000.0),
        _point("elastic64", 16, 48, warehouses=8, duration_us=240_000.0,
               customers_per_district=30),
        _point("autoscale16", 4, 4, warehouses=2, duration_us=300_000.0,
               threads_per_pn=16, autoscale=True),
    ]


SMOKE_LABELS = ("smoke",)


def _phase_stats(metrics: TxnMetrics, window_us: float) -> Dict[str, Any]:
    finished = metrics.total_finished
    seconds = window_us / 1e6 if window_us > 0 else 0.0
    stats = metrics.latency()
    return {
        "txns": finished,
        "committed": metrics.total_committed,
        "txns_per_s": finished / seconds if seconds else 0.0,
        "p99_ms": stats.p99_us / 1000.0,
        "abort_rate": metrics.abort_rate,
    }


def _run_digest(phase_metrics: Dict[str, TxnMetrics],
                events: List) -> str:  # noqa: ANN001 - (time, str) pairs
    """One digest over the merged measurement series *and* the elastic
    event log: identical behaviour -- including the exact simulated
    instant of every migration step -- produces an identical digest."""
    merged = TxnMetrics()
    for name in PHASES:
        merged.merge(phase_metrics[name])
    payload = json.dumps(
        [f"{at:.3f} {what}" for at, what in events], sort_keys=True
    ).encode()
    mixer = hashlib.sha256(payload)
    mixer.update(merged.digest().encode())
    return mixer.hexdigest()


def run_elastic_point(point: Dict[str, Any]) -> Dict[str, Any]:
    """Run one diurnal double/halve cycle and report the three phases."""
    from repro.bench.simcluster import SimulatedTell
    from repro.dispatch import WrongOwnerRedirect
    from repro.elastic.coordinator import ElasticCoordinator

    config: TellConfig = point["config"]
    deployment = SimulatedTell(config)
    deployment.load()
    coordinator = ElasticCoordinator(
        deployment, batch_cells=point["batch_cells"]
    )
    sim = deployment.sim
    duration = config.duration_us
    t_double = duration * _DOUBLE_AT
    t_halve = duration * _HALVE_AT
    t_settle = duration * _SETTLE_AT

    phase_metrics = {name: TxnMetrics() for name in PHASES}
    deployment.metrics = phase_metrics["before"]
    sim.call_at(
        t_double,
        lambda: setattr(deployment, "metrics", phase_metrics["during"]),
    )
    sim.call_at(
        t_settle,
        lambda: setattr(deployment, "metrics", phase_metrics["after"]),
    )

    base_sns = config.storage_nodes
    autoscaler = None
    if point["autoscale"]:
        from repro.elastic.autoscaler import Autoscaler, AutoscalerPolicy

        autoscaler = Autoscaler(
            coordinator,
            AutoscalerPolicy(
                interval_us=duration / 12,
                evidence_ticks=2,
                cooldown_ticks=1,
                min_storage_nodes=base_sns,
                max_storage_nodes=base_sns * 4,
            ),
        )
        sim.spawn(autoscaler.process(duration), name="autoscaler")
    else:
        sim.call_at(t_double, lambda: sim.spawn(
            coordinator.scale_storage_to(base_sns * 2), name="elastic-double"
        ))
        sim.call_at(t_halve, lambda: sim.spawn(
            coordinator.scale_storage_to(base_sns), name="elastic-halve"
        ))

    started = time.perf_counter()
    deployment.run()
    wall = time.perf_counter() - started

    warmup = config.warmup_us
    windows = {
        "before": t_double - warmup,
        "during": t_settle - t_double,
        "after": duration - t_settle,
    }
    for name in PHASES:
        phase_metrics[name].measured_time_us = windows[name]

    redirects = sum(
        mw.redirects for mw in deployment.interceptors
        if isinstance(mw, WrongOwnerRedirect)
    )
    result = {
        "label": point["label"],
        "pns": config.processing_nodes,
        "sns": base_sns,
        "sns_final": len(deployment.cluster.nodes),
        "warehouses": config.scale.warehouses,
        "duration_us": duration,
        "autoscale": point["autoscale"],
        "phases": {
            name: _phase_stats(phase_metrics[name], windows[name])
            for name in PHASES
        },
        "migration": coordinator.stats.as_dict(),
        "redirects": redirects,
        "epoch": deployment.cluster.topology.epoch,
        "events": deployment.sim.events_processed,
        "wall_s": wall,
        "digest": _run_digest(phase_metrics, coordinator.events),
    }
    if autoscaler is not None:
        result["decisions"] = autoscaler.decision_log()
    return result


def _cycle(point: Dict[str, Any]) -> str:
    """Human label for the point's SN trajectory."""
    if point["autoscale"]:
        return f"{point['sns']}->auto->{point['sns_final']} SNs"
    return (f"{point['sns']}->{2 * point['sns']}->"
            f"{point['sns_final']} SNs")


def run_elastic_suite(
    labels: Optional[List[str]] = None,
    smoke: bool = False,
    verbose: bool = True,
) -> List[Dict[str, Any]]:
    """Run the selected points (default: all, or the smoke subset)."""
    points = elastic_points()
    known = [point["label"] for point in points]
    selected = labels or (list(SMOKE_LABELS) if smoke else known)
    for label in selected:
        if label not in known:
            raise ValueError(
                f"unknown elastic point {label!r} (known: {', '.join(known)})"
            )
    results = []
    for point in points:
        if point["label"] not in selected:
            continue
        result = run_elastic_point(point)
        results.append(result)
        if verbose:
            phases = result["phases"]
            print(
                f"  {result['label']:12s} {_cycle(result):16s} "
                f"{phases['before']['txns_per_s']:>9,.0f} / "
                f"{phases['during']['txns_per_s']:>9,.0f} / "
                f"{phases['after']['txns_per_s']:>9,.0f} txns/s "
                f"({result['wall_s']:.1f}s wall)",
                file=sys.stderr,
            )
    return results


def merge_elastic_report(path: str, points: List[Dict[str, Any]]) -> None:
    """Merge ``points`` into the ``elastic`` section of ``path``.

    The rest of the report (``benchmarks``, ``scale``, ``isolation``)
    is preserved; points are replaced by label so a smoke run refreshes
    ``smoke`` without clobbering the full suite.
    """
    report: Dict[str, Any] = {}
    if os.path.exists(path):
        with open(path, "r", encoding="utf-8") as handle:
            report = json.load(handle)
    section = report.setdefault("elastic", {})
    existing = {point["label"]: point for point in section.get("points", [])}
    for point in points:
        existing[point["label"]] = point
    order = [point["label"] for point in elastic_points()]
    section["points"] = sorted(
        existing.values(),
        key=lambda point: (
            order.index(point["label"])
            if point["label"] in order else len(order)
        ),
    )
    section["created_unix"] = int(time.time())
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(report, indent=2, sort_keys=True) + "\n")


def render_elastic_table(points: List[Dict[str, Any]]) -> str:
    """ASCII before/during/after throughput per point."""
    if not points:
        return "(no elastic points recorded)"
    width = 30
    peak = max(
        phase["txns_per_s"]
        for point in points for phase in point["phases"].values()
    ) or 1.0
    lines = ["throughput through the diurnal SN double/halve cycle:"]
    for point in points:
        mover = point["migration"]
        lines.append(
            f"  {point['label']:>12s} ({_cycle(point)}, "
            f"{mover['partitions_moved']} moves, "
            f"{point['redirects']} redirects)"
        )
        for name in PHASES:
            phase = point["phases"][name]
            bar = "#" * max(1, round(width * phase["txns_per_s"] / peak))
            lines.append(
                f"    {name:>7s} {phase['txns_per_s']:>9,.0f} txns/s "
                f"p99={phase['p99_ms']:6.2f}ms {bar}"
            )
        if point.get("decisions"):
            acted = [entry for entry in point["decisions"]
                     if not entry.endswith(" -")]
            lines.append(f"    autoscaler: {', '.join(acted) or '(held)'}")
    return "\n".join(lines)
