"""The experiment functions behind every figure and table of Section 6.

Each function runs the corresponding sweep and returns a list of row
dicts the benchmarks print in the paper's format.  Sizing is controlled
by a profile:

* ``smoke``  -- tiny, seconds per figure; used by the test suite;
* ``quick``  -- the default; scaled-down database and short simulated
  windows, enough for every qualitative shape to appear;
* ``full``   -- closer to the paper's 200-warehouse setup; slow.

Select via the ``REPRO_BENCH_PROFILE`` environment variable.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.baselines import (
    BaselineConfig,
    FoundationDBLike,
    MySqlClusterLike,
    VoltDBLike,
)
from repro.bench.config import TellConfig
from repro.bench.metrics import TxnMetrics
from repro.bench.simcluster import SimulatedTell
from repro.workloads.tpcc.params import TpccScale


@dataclass(frozen=True)
class BenchProfile:
    name: str
    warehouses: int
    customers_per_district: int
    initial_orders_per_district: int
    items: int
    duration_us: float
    warmup_us: float
    pn_counts: Sequence[int]
    threads_per_pn: int
    baseline_duration_us: float

    def scale(self) -> TpccScale:
        return TpccScale(
            warehouses=self.warehouses,
            districts_per_warehouse=10,
            customers_per_district=self.customers_per_district,
            initial_orders_per_district=self.initial_orders_per_district,
            items=self.items,
        )


PROFILES = {
    "smoke": BenchProfile(
        name="smoke", warehouses=8, customers_per_district=30,
        initial_orders_per_district=20, items=400,
        duration_us=80_000.0, warmup_us=20_000.0,
        pn_counts=(1, 4), threads_per_pn=8,
        baseline_duration_us=500_000.0,
    ),
    "quick": BenchProfile(
        name="quick", warehouses=64, customers_per_district=60,
        initial_orders_per_district=20, items=1000,
        duration_us=250_000.0, warmup_us=50_000.0,
        pn_counts=(1, 4, 8), threads_per_pn=16,
        baseline_duration_us=2_000_000.0,
    ),
    "full": BenchProfile(
        name="full", warehouses=200, customers_per_district=100,
        initial_orders_per_district=30, items=2000,
        duration_us=1_000_000.0, warmup_us=200_000.0,
        pn_counts=(1, 2, 3, 4, 5, 6, 7, 8), threads_per_pn=24,
        baseline_duration_us=5_000_000.0,
    ),
}


def bench_profile() -> BenchProfile:
    name = os.environ.get("REPRO_BENCH_PROFILE", "quick").lower()
    try:
        return PROFILES[name]
    except KeyError:
        known = ", ".join(PROFILES)
        raise ValueError(f"unknown REPRO_BENCH_PROFILE {name!r} (known: {known})")


def tell_config(profile: BenchProfile, **overrides: Any) -> TellConfig:
    defaults = dict(
        processing_nodes=4,
        storage_nodes=7,
        threads_per_pn=profile.threads_per_pn,
        scale=profile.scale(),
        duration_us=profile.duration_us,
        warmup_us=profile.warmup_us,
    )
    defaults.update(overrides)
    return TellConfig(**defaults)


def run_tell(config: TellConfig) -> TxnMetrics:
    deployment = SimulatedTell(config)
    deployment.load()
    return deployment.run()


# ---------------------------------------------------------------------------
# Table 4: response-time decomposition into transaction phases
# ---------------------------------------------------------------------------


def run_phase_breakdown(profile: Optional[BenchProfile] = None,
                        **overrides: Any) -> dict:
    """One TPC-C run with observability forced on; returns the
    ``repro-obs/1`` snapshot whose ``phases`` section is the paper's
    Table-4 shape (snapshot / read / write / commit per transaction
    type).  Deterministic for a fixed seed."""
    profile = profile or bench_profile()
    config = tell_config(profile, observability=True, **overrides)
    metrics = run_tell(config)
    snapshot = metrics.obs_snapshot
    assert snapshot is not None  # observability=True guarantees one
    return snapshot


# ---------------------------------------------------------------------------
# Figures 5/6: processing scale-out at RF1/RF2/RF3
# ---------------------------------------------------------------------------


def run_scaleout_processing(
    mix: str, profile: Optional[BenchProfile] = None
) -> List[Dict[str, Any]]:
    profile = profile or bench_profile()
    rows: List[Dict[str, Any]] = []
    for replication_factor in (1, 2, 3):
        sns = max(7, replication_factor)
        for pns in profile.pn_counts:
            metrics = run_tell(tell_config(
                profile,
                processing_nodes=pns,
                storage_nodes=sns,
                replication_factor=replication_factor,
                mix=mix,
            ))
            rows.append({
                "rf": replication_factor,
                "pns": pns,
                "tpmc": metrics.tpmc,
                "tps": metrics.tps,
                "abort_rate": metrics.abort_rate,
                "latency_ms": metrics.latency().mean_ms,
            })
    return rows


# ---------------------------------------------------------------------------
# Figure 7: storage scale-out (3/5/7 SNs, RF3)
# ---------------------------------------------------------------------------


def run_scaleout_storage(
    profile: Optional[BenchProfile] = None,
) -> List[Dict[str, Any]]:
    profile = profile or bench_profile()
    rows: List[Dict[str, Any]] = []
    for sns in (3, 5, 7):
        for pns in profile.pn_counts:
            metrics = run_tell(tell_config(
                profile,
                processing_nodes=pns,
                storage_nodes=sns,
                replication_factor=3,
            ))
            rows.append({
                "sns": sns,
                "pns": pns,
                "tpmc": metrics.tpmc,
                "abort_rate": metrics.abort_rate,
            })
    return rows


# ---------------------------------------------------------------------------
# Table 3: commit-manager scale-out
# ---------------------------------------------------------------------------


def run_commit_managers(
    profile: Optional[BenchProfile] = None,
) -> List[Dict[str, Any]]:
    profile = profile or bench_profile()
    pns = max(profile.pn_counts)
    rows: List[Dict[str, Any]] = []
    for cms in (1, 2, 4):
        metrics = run_tell(tell_config(
            profile,
            processing_nodes=pns,
            commit_managers=cms,
        ))
        rows.append({
            "commit_managers": cms,
            "tpmc": metrics.tpmc,
            "abort_rate": metrics.abort_rate,
        })
    return rows


# ---------------------------------------------------------------------------
# Figures 8/9 and Table 4: system comparison
# ---------------------------------------------------------------------------

#: Tell deployments roughly matching the paper's total-core points
#: (small / medium / large clusters).
TELL_COMPARISON_SHAPES = [
    {"processing_nodes": 1, "storage_nodes": 3, "commit_managers": 2},
    {"processing_nodes": 4, "storage_nodes": 5, "commit_managers": 2},
    {"processing_nodes": 8, "storage_nodes": 7, "commit_managers": 2},
]
BASELINE_NODE_COUNTS = [3, 7, 11]


def run_system_comparison(
    mix: str,
    replication_factors: Sequence[int] = (3,),
    profile: Optional[BenchProfile] = None,
) -> List[Dict[str, Any]]:
    """Tell vs VoltDB-like vs MySQL-Cluster-like vs FoundationDB-like."""
    profile = profile or bench_profile()
    rows: List[Dict[str, Any]] = []
    for rf in replication_factors:
        for shape in TELL_COMPARISON_SHAPES:
            config = tell_config(profile, replication_factor=rf, mix=mix,
                                 **shape)
            metrics = run_tell(config)
            rows.append({
                "system": "tell",
                "rf": rf,
                "cores": config.total_cores,
                "tpmc": metrics.tpmc,
                "latency_ms": metrics.latency().mean_ms,
                "latency_std_ms": metrics.latency().std_ms,
            })
        for nodes in BASELINE_NODE_COUNTS:
            for engine_cls, terminals_per_node in (
                (VoltDBLike, 40),
                (MySqlClusterLike, 24),
                (FoundationDBLike, 12),
            ):
                if engine_cls is FoundationDBLike and mix == "shardable":
                    continue  # the paper only runs FDB on the standard mix
                config = BaselineConfig(
                    nodes=nodes,
                    scale=profile.scale(),
                    mix=mix,
                    replication_factor=rf,
                    terminals=terminals_per_node * nodes,
                    duration_us=profile.baseline_duration_us,
                    warmup_us=profile.baseline_duration_us * 0.15,
                )
                metrics = engine_cls(config).run()
                rows.append({
                    "system": engine_cls.name,
                    "rf": rf,
                    "cores": config.total_cores,
                    "tpmc": metrics.tpmc,
                    "latency_ms": metrics.latency().mean_ms,
                    "latency_std_ms": metrics.latency().std_ms,
                })
    return rows


# ---------------------------------------------------------------------------
# Figure 10 / Table 5: network technology
# ---------------------------------------------------------------------------


def run_network_comparison(
    profile: Optional[BenchProfile] = None,
) -> List[Dict[str, Any]]:
    profile = profile or bench_profile()
    rows: List[Dict[str, Any]] = []
    for network in ("infiniband", "ethernet-10g"):
        for pns in profile.pn_counts:
            metrics = run_tell(tell_config(
                profile, processing_nodes=pns, network=network,
            ))
            latency = metrics.latency()
            rows.append({
                "network": network,
                "pns": pns,
                "tpmc": metrics.tpmc,
                "latency_ms": latency.mean_ms,
                "latency_std_ms": latency.std_ms,
                "tp99_ms": latency.p99_us / 1000.0,
                "tp999_ms": latency.p999_us / 1000.0,
            })
    return rows


# ---------------------------------------------------------------------------
# Figure 11: buffering strategies
# ---------------------------------------------------------------------------


def run_buffering_strategies(
    profile: Optional[BenchProfile] = None,
) -> List[Dict[str, Any]]:
    profile = profile or bench_profile()
    rows: List[Dict[str, Any]] = []
    for strategy in ("tb", "sb", "sbvs10", "sbvs1000"):
        for pns in profile.pn_counts:
            deployment = SimulatedTell(tell_config(
                profile, processing_nodes=pns, buffering=strategy,
            ))
            deployment.load()
            metrics = deployment.run()
            hit_ratios = [
                pn.buffers.stats.hit_ratio
                for pn, _pool, _cm, _idx in deployment._pn_handles
            ]
            rows.append({
                "strategy": strategy,
                "pns": pns,
                "tpmc": metrics.tpmc,
                "hit_ratio": sum(hit_ratios) / len(hit_ratios),
            })
    return rows


# ---------------------------------------------------------------------------
# Ablations (design choices called out in DESIGN.md)
# ---------------------------------------------------------------------------


def run_ablation_batching(
    profile: Optional[BenchProfile] = None,
) -> List[Dict[str, Any]]:
    profile = profile or bench_profile()
    pns = max(profile.pn_counts)
    rows: List[Dict[str, Any]] = []
    for batching in (True, False):
        deployment = SimulatedTell(tell_config(
            profile, processing_nodes=pns, batching=batching,
        ))
        deployment.load()
        metrics = deployment.run()
        rows.append({
            "batching": batching,
            "tpmc": metrics.tpmc,
            "messages_per_txn": (
                deployment.fabric.stats.messages
                / max(1, metrics.total_finished)
            ),
            "latency_ms": metrics.latency().mean_ms,
        })
    return rows


def run_ablation_sync_interval(
    profile: Optional[BenchProfile] = None,
) -> List[Dict[str, Any]]:
    profile = profile or bench_profile()
    pns = max(profile.pn_counts)
    rows: List[Dict[str, Any]] = []
    for interval_us in (100.0, 1000.0, 10_000.0):
        metrics = run_tell(tell_config(
            profile,
            processing_nodes=pns,
            commit_managers=2,
            cm_sync_interval_us=interval_us,
        ))
        rows.append({
            "sync_interval_ms": interval_us / 1000.0,
            "tpmc": metrics.tpmc,
            "abort_rate": metrics.abort_rate,
        })
    return rows


def run_ablation_tid_ranges(
    profile: Optional[BenchProfile] = None,
) -> List[Dict[str, Any]]:
    profile = profile or bench_profile()
    pns = max(profile.pn_counts)
    rows: List[Dict[str, Any]] = []
    for range_size in (1, 16, 256):
        metrics = run_tell(tell_config(
            profile, processing_nodes=pns, tid_range_size=range_size,
        ))
        rows.append({
            "tid_range": range_size,
            "tpmc": metrics.tpmc,
            "abort_rate": metrics.abort_rate,
            "latency_ms": metrics.latency().mean_ms,
        })
    return rows
