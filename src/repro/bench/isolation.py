"""The isolation-protocol comparison suite (``--suite isolation``).

A Table-3-style experiment the paper never ran: the same skew-heavy
workload under each isolation protocol (SI / WSI / SSI,
:mod:`repro.core.isolation`), comparing throughput, abort rate, and the
anomaly count measured by the sanitizer's dependency-graph oracle.

The workload is a bank of doctor-pair scripts (the write-skew shape:
overlapping reads, disjoint writes) plus read-only auditors, driven over
the simulated fabric by the same :class:`~repro.san.scenarios.SimWorld`
harness the conflict scenarios use.  Everything is deterministic -- no
RNG, fixed interleaving policy -- so per-mode numbers are reproducible
and the anomaly counts are exact:

* under SI both doctors of a racing pair commit and the oracle counts a
  write-skew cycle;
* under WSI/SSI commit-time validation aborts one of them, trading
  throughput for zero anomalies.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, Generator, List, Optional, Sequence

from repro.errors import TellError, TransactionAborted

#: Modes compared, in presentation order.
MODES = ("si", "wsi", "ssi")

#: Key space of the paired on-call rows (disjoint from the scenario keys).
_PAIR_BASE = 940_000


def _pair_keys(pair: int) -> tuple:
    return (_PAIR_BASE + 2 * pair, _PAIR_BASE + 2 * pair + 1)


def _doctor(world: Any, pn_id: int, pair: int, side: int,
            rounds: int, counts: Dict[str, int]) -> Generator:
    """One doctor: repeatedly check the pair's on-call total and go
    off-call when the constraint allows -- the write-skew shape."""
    pn = world.pns[pn_id]
    keys = _pair_keys(pair)
    for _round in range(rounds):
        try:
            txn = yield from pn.begin()
            values = yield from txn.read_many(list(keys))
            on_call = sum(
                payload[0] for payload in values.values()
                if payload is not None
            )
            if on_call >= 2:
                yield from txn.update(keys[side], (0,))
            else:
                # Go back on call so later rounds race again.
                yield from txn.update(keys[side], (1,))
            yield from txn.commit()
            counts["committed"] += 1
        except (TransactionAborted, TellError):
            counts["aborted"] += 1
    return None


def _auditor(world: Any, pn_id: int, pairs: int, rounds: int,
             counts: Dict[str, int]) -> Generator:
    """Read-only sweeps over every pair (exercises the read-only fast
    path, which no protocol validates)."""
    pn = world.pns[pn_id]
    keys = [key for pair in range(pairs) for key in _pair_keys(pair)]
    for _round in range(rounds):
        try:
            txn = yield from pn.begin()
            yield from txn.read_many(keys)
            yield from txn.commit()
            counts["committed"] += 1
        except (TransactionAborted, TellError):
            counts["aborted"] += 1
    return None


def run_isolation_point(mode: str, pairs: int = 4, rounds: int = 6) -> Dict[str, Any]:
    """Run the skew workload under ``mode`` and measure the trade-off."""
    from repro.san.scenarios import SimWorld

    world = SimWorld(n_pns=2, isolation=mode)
    seed_rows: Dict[Any, Any] = {}
    for pair in range(pairs):
        for key in _pair_keys(pair):
            seed_rows[key] = (1,)
    world.seed(seed_rows)

    counts = {"committed": 0, "aborted": 0}
    processes = []
    for pair in range(pairs):
        for side in range(2):
            pn_id = (2 * pair + side) % len(world.pns)
            processes.append(world.spawn(
                pn_id,
                _doctor(world, pn_id, pair, side, rounds, counts),
                f"doctor-{pair}-{side}",
            ))
    processes.append(world.spawn(
        0, _auditor(world, 0, pairs, rounds, counts), "auditor"
    ))
    started_us = world.sim.now
    world.run_all(processes)
    elapsed_us = max(world.sim.now - started_us, 1.0)

    cycles = world.sanitizers[0].analyze()
    manager = world.commit_manager
    finished = counts["committed"] + counts["aborted"]
    return {
        "mode": mode,
        "committed": counts["committed"],
        "aborted": counts["aborted"],
        "abort_rate": counts["aborted"] / finished if finished else 0.0,
        "txns_per_s": counts["committed"] / (elapsed_us / 1e6),
        "anomalies": len(cycles),
        "validations": manager.validations,
        "validation_aborts": manager.validation_aborts,
        "sanitizer_clean": world.log.clean,
    }


def run_isolation_suite(
    modes: Optional[Sequence[str]] = None,
    pairs: int = 4,
    rounds: int = 6,
) -> List[Dict[str, Any]]:
    """One row per isolation mode (default: all three)."""
    return [
        run_isolation_point(mode, pairs=pairs, rounds=rounds)
        for mode in (modes or MODES)
    ]


def render_isolation_table(rows: List[Dict[str, Any]]) -> str:
    """Fixed-width comparison table for the terminal/report."""
    lines = [
        "Isolation protocol trade-off (skew-heavy workload, "
        "simulated fabric):",
        f"  {'Mode':5s} {'Committed':>9s} {'Aborted':>8s} "
        f"{'Abort rate':>10s} {'Txns/s':>10s} {'Anomalies':>9s} "
        f"{'Validations':>11s}",
    ]
    for row in rows:
        lines.append(
            f"  {row['mode']:5s} {row['committed']:9d} "
            f"{row['aborted']:8d} {row['abort_rate'] * 100:9.2f}% "
            f"{row['txns_per_s']:10,.1f} {row['anomalies']:9d} "
            f"{row['validations']:11d}"
        )
    return "\n".join(lines)


def merge_isolation_report(path: str, rows: List[Dict[str, Any]]) -> None:
    """Merge ``rows`` into the ``isolation`` section of ``path``,
    keyed by mode; the rest of the report is preserved (same contract
    as :func:`repro.bench.scale.merge_scale_report`)."""
    report: Dict[str, Any] = {}
    if os.path.exists(path):
        with open(path, "r", encoding="utf-8") as handle:
            report = json.load(handle)
    section = report.setdefault("isolation", {})
    existing = {row["mode"]: row for row in section.get("modes", [])}
    for row in rows:
        existing[row["mode"]] = row
    section["modes"] = sorted(
        existing.values(),
        key=lambda row: (
            MODES.index(row["mode"]) if row["mode"] in MODES else len(MODES)
        ),
    )
    section["created_unix"] = int(time.time())
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(report, indent=2, sort_keys=True) + "\n")
