"""Throughput and latency accounting for benchmark runs."""

from __future__ import annotations

import hashlib
import json
import math
from typing import Dict, List, Optional, Tuple


class LatencyStats:
    """Mean, standard deviation, and tail percentiles of a latency set."""

    __slots__ = ("count", "mean_us", "std_us", "p50_us", "p99_us", "p999_us",
                 "max_us")

    def __init__(self, latencies_us: List[float]):
        self.count = len(latencies_us)
        if not latencies_us:
            self.mean_us = self.std_us = self.p50_us = 0.0
            self.p99_us = self.p999_us = self.max_us = 0.0
            return
        ordered = sorted(latencies_us)
        self.count = len(ordered)
        self.mean_us = sum(ordered) / self.count
        variance = sum((x - self.mean_us) ** 2 for x in ordered) / self.count
        self.std_us = math.sqrt(variance)
        self.p50_us = _percentile(ordered, 0.50)
        self.p99_us = _percentile(ordered, 0.99)
        self.p999_us = _percentile(ordered, 0.999)
        self.max_us = ordered[-1]

    @property
    def mean_ms(self) -> float:
        return self.mean_us / 1000.0

    @property
    def std_ms(self) -> float:
        return self.std_us / 1000.0

    def __repr__(self) -> str:
        return (
            f"LatencyStats(n={self.count}, mean={self.mean_ms:.2f}ms, "
            f"sigma={self.std_ms:.2f}ms, p99={self.p99_us / 1000:.2f}ms)"
        )


def _percentile(ordered: List[float], fraction: float) -> float:
    """Linear interpolation between closest ranks (numpy's default).

    The previous nearest-rank rounding could be off by most of one
    inter-sample gap on small or skewed samples; interpolating matches
    the conventional definition: rank = fraction * (n - 1), and the
    value is interpolated between floor(rank) and ceil(rank).
    """
    if not ordered:
        return 0.0
    rank = fraction * (len(ordered) - 1)
    lower = int(rank)
    upper = lower + 1
    if upper >= len(ordered):
        return ordered[-1]
    weight = rank - lower
    return ordered[lower] * (1.0 - weight) + ordered[upper] * weight


class TxnMetrics:
    """Per-transaction-type counters collected during a (simulated) run.

    ``record`` is called by terminal workers; throughput properties follow
    the paper's definitions: TpmC counts only *successful* new-order
    transactions per minute; aborted transactions are excluded.
    """

    def __init__(self) -> None:
        self.committed: Dict[str, int] = {}
        self.conflicts: Dict[str, int] = {}
        self.user_aborts: Dict[str, int] = {}
        self.latencies_us: Dict[str, List[float]] = {}
        self.measured_time_us: float = 0.0
        #: Per-request-class dispatch trace, attached by
        #: :class:`repro.dispatch.TraceInterceptor` when one is installed.
        #: Deliberately outside :meth:`digest` -- tracing is observational
        #: and must not change the behaviour fingerprint.
        self.request_trace: Optional[object] = None
        #: ``repro-obs/1`` snapshot, attached by observability-enabled
        #: deployments when the run finishes.  Also outside the digest.
        self.obs_snapshot: Optional[dict] = None

    def record(
        self, txn_name: str, outcome: str, latency_us: float
    ) -> None:
        """outcome: 'committed' | 'conflict' | 'user_abort'."""
        if outcome == "committed":
            self.committed[txn_name] = self.committed.get(txn_name, 0) + 1
            self.latencies_us.setdefault(txn_name, []).append(latency_us)
        elif outcome == "conflict":
            self.conflicts[txn_name] = self.conflicts.get(txn_name, 0) + 1
        elif outcome == "user_abort":
            self.user_aborts[txn_name] = self.user_aborts.get(txn_name, 0) + 1
        else:
            raise ValueError(f"unknown outcome {outcome!r}")

    # -- totals -----------------------------------------------------------------

    @property
    def total_committed(self) -> int:
        return sum(self.committed.values())

    @property
    def total_conflicts(self) -> int:
        return sum(self.conflicts.values())

    @property
    def total_finished(self) -> int:
        return (
            self.total_committed
            + self.total_conflicts
            + sum(self.user_aborts.values())
        )

    @property
    def abort_rate(self) -> float:
        """Conflict aborts over all finished transactions (the paper's
        "overall transaction abort rate")."""
        finished = self.total_finished
        return self.total_conflicts / finished if finished else 0.0

    # -- throughput ---------------------------------------------------------------

    @property
    def tpmc(self) -> float:
        """Successful new-order transactions per minute."""
        if self.measured_time_us <= 0:
            return 0.0
        minutes = self.measured_time_us / 60e6
        return self.committed.get("new_order", 0) / minutes

    @property
    def tps(self) -> float:
        """All committed transactions per second."""
        if self.measured_time_us <= 0:
            return 0.0
        return self.total_committed / (self.measured_time_us / 1e6)

    # -- latency ------------------------------------------------------------------

    def latency(self, txn_name: Optional[str] = None) -> LatencyStats:
        if txn_name is not None:
            return LatencyStats(self.latencies_us.get(txn_name, []))
        merged: List[float] = []
        for values in self.latencies_us.values():
            merged.extend(values)
        return LatencyStats(merged)

    def merge(self, other: "TxnMetrics") -> None:
        for name, count in other.committed.items():
            self.committed[name] = self.committed.get(name, 0) + count
        for name, count in other.conflicts.items():
            self.conflicts[name] = self.conflicts.get(name, 0) + count
        for name, count in other.user_aborts.items():
            self.user_aborts[name] = self.user_aborts.get(name, 0) + count
        for name, values in other.latencies_us.items():
            self.latencies_us.setdefault(name, []).extend(values)

    def digest(self) -> str:
        """SHA-256 over every raw simulated measurement.

        Two runs with identical behaviour produce identical digests: the
        digest covers per-type commit/conflict/abort counts, the measured
        window, and the full latency series (which pins TpmC, abort rate,
        and all percentiles).  This is the behaviour-invariance check for
        performance work: an optimization must not change the digest.
        """
        payload = {
            "committed": dict(sorted(self.committed.items())),
            "conflicts": dict(sorted(self.conflicts.items())),
            "user_aborts": dict(sorted(self.user_aborts.items())),
            "measured_time_us": self.measured_time_us,
            "latencies_us": {
                name: self.latencies_us[name]
                for name in sorted(self.latencies_us)
            },
        }
        encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(encoded.encode("utf-8")).hexdigest()

    def trace_json(self, indent: int = 2) -> Optional[str]:
        """JSON dump of the dispatch trace (``repro-dispatch-trace/1``
        schema, see ``docs/dispatch.md``), or ``None`` when the run was
        not traced."""
        trace = self.request_trace
        if trace is None:
            return None
        return trace.dump_json(indent=indent)  # type: ignore[attr-defined]

    def summary(self) -> str:
        lat = self.latency()
        return (
            f"committed={self.total_committed} conflicts={self.total_conflicts} "
            f"abort_rate={self.abort_rate * 100:.2f}% tpmc={self.tpmc:,.0f} "
            f"tps={self.tps:,.0f} latency={lat.mean_ms:.2f}ms"
        )
