"""Wall-clock microbenchmarks for the simulation stack.

The repo's true performance axis is *how fast a simulated run executes on
the host*: every figure replays millions of kernel events and protocol
operations, so the hot paths measured here (event loop, snapshot algebra,
version sets, the end-to-end simulated TPC-C deployment) bound how large
an experiment is affordable.

Four microbenchmarks:

* ``sim_kernel``   -- raw event-loop throughput (events/second),
* ``snapshot``     -- snapshot-descriptor/committed-set ops (ops/second),
* ``record``       -- versioned-record reads+writes (ops/second),
* ``tpcc_e2e``     -- a small but complete simulated TPC-C run
  (committed transactions per wall-clock second), plus the metrics
  digest used to prove behaviour invariance.

Optimizations must be *behaviour-invariant*: the ``tpcc_e2e`` benchmark
records :meth:`repro.bench.metrics.TxnMetrics.digest` and
:func:`build_report` refuses to claim a speedup when the digest moved.

Use via ``tools/perf_report.py`` (writes ``BENCH_perf.json``) or the
``repro-perf`` console script after ``pip install -e .``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Any, Callable, Dict, List, Optional

BENCH_SCHEMA = "repro-perf/1"


# ---------------------------------------------------------------------------
# individual microbenchmarks
# ---------------------------------------------------------------------------


def bench_sim_kernel(events: int = 200_000) -> Dict[str, Any]:
    """Event-loop throughput: Delay-driven processes plus call_at storms."""
    from repro.sim.kernel import Delay, Simulator

    sim = Simulator()
    n_procs = 50
    per_proc = events // (2 * n_procs)

    def ticker(step: float):
        pause = Delay(step)
        for _ in range(per_proc):
            yield pause

    for i in range(n_procs):
        sim.spawn(ticker(1.0 + 0.01 * i), name=f"tick-{i}")
    counter = [0]

    def cb() -> None:
        counter[0] += 1

    for i in range(events // 2):
        sim.call_at(float(i % 1000), cb)
    started = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - started
    total = n_procs * per_proc + counter[0]
    return {
        "name": "sim_kernel",
        "unit": "events/s",
        "value": total / elapsed,
        "wall_s": elapsed,
        "work": total,
    }


def bench_snapshot(iterations: int = 60_000) -> Dict[str, Any]:
    """Snapshot algebra: contains / with_completed / union / mark_completed."""
    from repro.core.snapshot import CommittedSet, SnapshotDescriptor

    started = time.perf_counter()
    ops = 0
    committed = CommittedSet()
    # Out-of-order completions keep a ragged bitset alive, which is the
    # interesting (non-contiguous) regime for the normalization path.
    for tid in range(1, iterations + 1):
        committed.mark_completed(tid + 2)
        committed.mark_completed(tid)
        ops += 2
        if tid % 64 == 0:
            committed.mark_completed(tid + 1)
            ops += 1
    snap = SnapshotDescriptor(100, 0b1011001)
    other = SnapshotDescriptor(104, 0b1101)
    sink = 0
    for tid in range(95, 95 + 64):
        for _ in range(iterations // 2_000):
            sink += tid in snap
            ops += 1
    for _ in range(iterations // 4):
        merged = snap.union(other)
        grown = merged.with_completed(merged.base + 5)
        sink += grown.base
        ops += 2
    elapsed = time.perf_counter() - started
    return {
        "name": "snapshot",
        "unit": "ops/s",
        "value": ops / elapsed,
        "wall_s": elapsed,
        "work": ops,
        "check": sink,
    }


def bench_record(iterations: int = 30_000) -> Dict[str, Any]:
    """Version-set writes (with_version) and MVCC reads (latest_visible)."""
    from repro.core.record import Version, VersionedRecord
    from repro.core.snapshot import SnapshotDescriptor

    started = time.perf_counter()
    ops = 0
    base = VersionedRecord.initial(1, ("row", 0))
    records: List[VersionedRecord] = []
    for i in range(iterations // 10):
        record = base
        for tid in (7, 3, 12, 9, 20):
            record = record.with_version(Version(tid + i % 3 * 100, ("row", tid)))
            ops += 1
        records.append(record)
    snapshots = [
        SnapshotDescriptor(5, 0b101),
        SnapshotDescriptor(0, 0),
        SnapshotDescriptor(10_000, 0),
    ]
    sink = 0
    for _ in range(10):
        for record in records:
            for snapshot in snapshots:
                version = record.latest_visible(snapshot)
                sink += 0 if version is None else version.tid
                ops += 1
    elapsed = time.perf_counter() - started
    return {
        "name": "record",
        "unit": "ops/s",
        "value": ops / elapsed,
        "wall_s": elapsed,
        "work": ops,
        "check": sink,
    }


def bench_tpcc_e2e(
    duration_us: float = 200_000.0, seed: int = 1
) -> Dict[str, Any]:
    """End-to-end simulated TPC-C: wall-clock committed txns per second.

    Runs the real protocol code under the simulator at a reduced scale;
    the metrics digest doubles as the behaviour-invariance witness.
    """
    from repro.bench.config import TellConfig
    from repro.bench.simcluster import run_tell_experiment
    from repro.workloads.tpcc.params import TpccScale

    config = TellConfig(
        processing_nodes=2,
        storage_nodes=3,
        threads_per_pn=8,
        scale=TpccScale.small(2),
        duration_us=duration_us,
        warmup_us=duration_us / 10,
        seed=seed,
    )
    started = time.perf_counter()
    metrics = run_tell_experiment(config)
    elapsed = time.perf_counter() - started
    finished = metrics.total_finished
    latency = metrics.latency()
    return {
        "name": "tpcc_e2e",
        "unit": "txns/s",
        "value": finished / elapsed,
        "wall_s": elapsed,
        "work": finished,
        "digest": metrics.digest(),
        "sim": {
            "tpmc": metrics.tpmc,
            "abort_rate": metrics.abort_rate,
            "committed": metrics.total_committed,
            "p50_us": latency.p50_us,
            "p99_us": latency.p99_us,
            "p999_us": latency.p999_us,
        },
    }


BENCHMARKS: Dict[str, Callable[..., Dict[str, Any]]] = {
    "sim_kernel": bench_sim_kernel,
    "snapshot": bench_snapshot,
    "record": bench_record,
    "tpcc_e2e": bench_tpcc_e2e,
}

#: Reduced workloads for CI smoke runs (one iteration, no thresholds).
SMOKE_KWARGS: Dict[str, Dict[str, Any]] = {
    "sim_kernel": {"events": 20_000},
    "snapshot": {"iterations": 6_000},
    "record": {"iterations": 3_000},
    "tpcc_e2e": {"duration_us": 30_000.0},
}


# ---------------------------------------------------------------------------
# suite driver + report
# ---------------------------------------------------------------------------


def run_suite(
    names: Optional[List[str]] = None,
    repeat: int = 3,
    smoke: bool = False,
    verbose: bool = True,
) -> Dict[str, Any]:
    """Run the selected benchmarks; keep each one's best-of-``repeat``."""
    selected = names or list(BENCHMARKS)
    results: Dict[str, Any] = {}
    for name in selected:
        if name not in BENCHMARKS:
            raise ValueError(
                f"unknown benchmark {name!r} (known: {', '.join(BENCHMARKS)})"
            )
        func = BENCHMARKS[name]
        kwargs = SMOKE_KWARGS[name] if smoke else {}
        best: Optional[Dict[str, Any]] = None
        for _ in range(max(1, repeat)):
            result = func(**kwargs)
            if best is None or result["value"] > best["value"]:
                best = result
        assert best is not None
        results[name] = best
        if verbose:
            print(
                f"  {name:12s} {best['value']:>14,.0f} {best['unit']:9s}"
                f" ({best['wall_s']:.3f}s wall)",
                file=sys.stderr,
            )
    return results


def build_report(
    after: Dict[str, Any], before: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    """Assemble the BENCH_perf.json payload, with speedups when a
    baseline ("before") measurement is available."""
    report: Dict[str, Any] = {
        "schema": BENCH_SCHEMA,
        "created_unix": int(time.time()),
        "host_python": sys.version.split()[0],
        "benchmarks": {},
    }
    for name, result in after.items():
        entry: Dict[str, Any] = {"after": result}
        if before and name in before:
            entry["before"] = before[name]
            entry["speedup"] = result["value"] / before[name]["value"]
        report["benchmarks"][name] = entry
    after_digest = after.get("tpcc_e2e", {}).get("digest")
    before_digest = (before or {}).get("tpcc_e2e", {}).get("digest")
    if after_digest is not None:
        report["invariance"] = {
            "digest_after": after_digest,
            "digest_before": before_digest,
            "identical": (
                None if before_digest is None else after_digest == before_digest
            ),
        }
    return report


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-perf",
        description="Run the simulation-stack microbenchmarks and write "
                    "a BENCH_perf.json report.",
    )
    parser.add_argument("benchmarks", nargs="*",
                        help=f"subset of: {', '.join(BENCHMARKS)}")
    parser.add_argument("--output", "-o", default="BENCH_perf.json",
                        help="report path (default: BENCH_perf.json); "
                             "'-' prints to stdout")
    parser.add_argument("--baseline", help="earlier report (or raw suite "
                        "output) to diff against as 'before'")
    parser.add_argument("--repeat", type=int, default=3,
                        help="repetitions per benchmark, best kept (default 3)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny workloads, one repetition (CI smoke)")
    parser.add_argument("--render-scale", action="store_true",
                        help="print the events/s-vs-deployment-size curve "
                             "from the report's 'scale' section (written "
                             "by `python -m repro.bench --suite scale`) "
                             "and exit without benchmarking")
    args = parser.parse_args(argv)

    if args.render_scale:
        from repro.bench.scale import render_scale_curve

        path = args.output if args.output != "-" else "BENCH_perf.json"
        with open(path, "r", encoding="utf-8") as handle:
            points = json.load(handle).get("scale", {}).get("points", [])
        print(render_scale_curve(points))
        return 0

    # Load the baseline before benchmarking so a bad path fails in
    # milliseconds, not after minutes of measurement.
    before: Optional[Dict[str, Any]] = None
    if args.baseline:
        with open(args.baseline, "r", encoding="utf-8") as handle:
            loaded = json.load(handle)
        if loaded.get("schema") == BENCH_SCHEMA:  # a full report: unwrap
            before = {
                name: entry["after"]
                for name, entry in loaded.get("benchmarks", {}).items()
                if "after" in entry
            }
        else:  # raw run_suite() output
            before = loaded

    repeat = 1 if args.smoke else args.repeat
    print("running microbenchmarks...", file=sys.stderr)
    after = run_suite(args.benchmarks or None, repeat=repeat, smoke=args.smoke)

    report = build_report(after, before)
    encoded = json.dumps(report, indent=2, sort_keys=True)
    if args.output == "-":
        print(encoded)
    else:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(encoded + "\n")
        print(f"wrote {args.output}", file=sys.stderr)
    for name, entry in report["benchmarks"].items():
        if "speedup" in entry:
            print(f"  {name:12s} speedup {entry['speedup']:.2f}x",
                  file=sys.stderr)
    invariance = report.get("invariance")
    if invariance and invariance.get("identical") is False:
        print("ERROR: tpcc_e2e metrics digest changed vs baseline -- the "
              "optimization is not behaviour-invariant", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
