"""The ``scale`` benchmark suite: deployment sizes beyond the paper's testbed.

The paper's Figure 5-7 sweeps stop at 12 servers; ROADMAP item 2 asks the
deterministic simulator to reach 64-256 node deployments so throughput
curves flatten for *measured* reasons (commit-manager ceiling, replication
fan-out) rather than small-N noise.  This suite runs the full simulated
TPC-C deployment at 16/64/128 nodes plus a 100-warehouse configuration and
records *host* event-loop throughput (``Simulator.events_processed`` per
wall second) next to the simulated txns/s -- the first number tracks how
affordable large experiments are, the second is the science.

Every point reports the run's metrics digest.  The default points keep
coalescing off, so their digests are pinned by the same determinism
contract as ``tpcc_e2e``; the ``coalesced64`` point turns the knob on and
its digest is checked for *reproducibility* (same seed, same digest)
rather than against the uncoalesced baseline.

Use via ``python -m repro.bench --suite scale`` (appends a ``scale``
section to ``BENCH_perf.json``) or :func:`run_scale_suite` directly.
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Any, Dict, List, Optional

from repro.bench.config import TellConfig
from repro.workloads.tpcc.params import TpccScale


def _point(
    label: str,
    pns: int,
    sns: int,
    *,
    warehouses: int,
    duration_us: float,
    threads_per_pn: int = 16,
    commit_managers: int = 1,
    coalescing: bool = False,
    customers_per_district: int = 120,
) -> Dict[str, Any]:
    scale = TpccScale(
        warehouses=warehouses,
        districts_per_warehouse=10,
        customers_per_district=customers_per_district,
        initial_orders_per_district=customers_per_district,
        items=1000,
    )
    config = TellConfig(
        processing_nodes=pns,
        storage_nodes=sns,
        commit_managers=commit_managers,
        threads_per_pn=threads_per_pn,
        coalescing=coalescing,
        scale=scale,
        duration_us=duration_us,
        warmup_us=duration_us / 10,
        seed=1,
    )
    return {"label": label, "config": config}


#: The suite, smallest first.  ``smoke16`` is the CI gate
#: (``tools/perf_guard.py --scale-smoke``): small enough for every PR,
#: digest-pinned like ``tpcc_e2e``.  The node-count points share the
#: paper's 1:3 PN:SN ratio; ``wh100`` holds the deployment at 32 nodes
#: and scales the *database* instead (100 warehouses, reduced rows per
#: district so population stays affordable).
def scale_points() -> List[Dict[str, Any]]:
    return [
        _point("smoke16", 4, 12, warehouses=4, duration_us=30_000.0,
               threads_per_pn=8),
        _point("nodes16", 4, 12, warehouses=8, duration_us=100_000.0),
        _point("nodes64", 16, 48, warehouses=16, duration_us=60_000.0),
        _point("coalesced64", 16, 48, warehouses=16, duration_us=60_000.0,
               coalescing=True),
        _point("nodes128", 32, 96, warehouses=32, duration_us=40_000.0),
        _point("wh100", 8, 24, warehouses=100, duration_us=40_000.0,
               customers_per_district=30),
    ]


SMOKE_LABELS = ("smoke16",)


def run_scale_point(label: str, config: TellConfig) -> Dict[str, Any]:
    """Load + run one deployment; report host and simulated throughput."""
    from repro.bench.simcluster import SimulatedTell

    deployment = SimulatedTell(config)
    deployment.load()
    started = time.perf_counter()
    metrics = deployment.run()
    wall = time.perf_counter() - started
    events = deployment.sim.events_processed
    return {
        "label": label,
        "nodes": config.processing_nodes + config.storage_nodes,
        "pns": config.processing_nodes,
        "sns": config.storage_nodes,
        "warehouses": config.scale.warehouses,
        "coalescing": config.coalescing,
        "duration_us": config.duration_us,
        "events": events,
        "events_per_s": events / wall,
        "txns_per_s": metrics.total_finished / wall,
        "tpmc": metrics.tpmc,
        "abort_rate": metrics.abort_rate,
        "wall_s": wall,
        "digest": metrics.digest(),
    }


def run_scale_suite(
    labels: Optional[List[str]] = None,
    smoke: bool = False,
    verbose: bool = True,
) -> List[Dict[str, Any]]:
    """Run the selected points (default: all, or the smoke subset)."""
    points = scale_points()
    known = [point["label"] for point in points]
    selected = labels or (list(SMOKE_LABELS) if smoke else known)
    for label in selected:
        if label not in known:
            raise ValueError(
                f"unknown scale point {label!r} (known: {', '.join(known)})"
            )
    results = []
    for point in points:
        if point["label"] not in selected:
            continue
        result = run_scale_point(point["label"], point["config"])
        results.append(result)
        if verbose:
            print(
                f"  {result['label']:12s} {result['nodes']:4d} nodes "
                f"{result['events_per_s']:>12,.0f} events/s "
                f"{result['txns_per_s']:>8,.1f} txns/s "
                f"({result['wall_s']:.1f}s wall)",
                file=sys.stderr,
            )
    return results


def merge_scale_report(path: str, points: List[Dict[str, Any]]) -> None:
    """Merge ``points`` into the ``scale`` section of ``path``.

    The rest of the report (the ``benchmarks`` section written by
    :mod:`repro.bench.perfsuite`) is preserved; points are replaced by
    label so a smoke run refreshes ``smoke16`` without clobbering the
    full curve.
    """
    report: Dict[str, Any] = {}
    if os.path.exists(path):
        with open(path, "r", encoding="utf-8") as handle:
            report = json.load(handle)
    section = report.setdefault("scale", {})
    existing = {point["label"]: point for point in section.get("points", [])}
    for point in points:
        existing[point["label"]] = point
    order = [point["label"] for point in scale_points()]
    section["points"] = sorted(
        existing.values(),
        key=lambda point: (
            order.index(point["label"])
            if point["label"] in order else len(order)
        ),
    )
    section["created_unix"] = int(time.time())
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(report, indent=2, sort_keys=True) + "\n")


def render_scale_curve(points: List[Dict[str, Any]]) -> str:
    """ASCII events/s-vs-deployment-size curve for the report/terminal."""
    rows = [point for point in points if not point.get("coalescing")]
    rows.sort(key=lambda point: point["nodes"])
    if not rows:
        return "(no scale points recorded)"
    peak = max(point["events_per_s"] for point in rows)
    width = 40
    lines = ["host event-loop throughput vs deployment size:"]
    for point in rows:
        bar = "#" * max(1, round(width * point["events_per_s"] / peak))
        lines.append(
            f"  {point['nodes']:4d} nodes ({point['label']:>8s}) "
            f"{point['events_per_s']:>12,.0f} events/s {bar}"
        )
    extras = [point for point in points if point.get("coalescing")]
    for point in extras:
        lines.append(
            f"  {point['nodes']:4d} nodes ({point['label']:>8s}) "
            f"{point['events_per_s']:>12,.0f} events/s [coalescing on]"
        )
    return "\n".join(lines)
