"""The simulated Tell deployment: real protocol code, simulated time.

This module is the bridge between the library and the discrete-event
kernel.  Every processing-node worker is a simulated "thread" running the
*actual* transaction code (:mod:`repro.core`); the fabric decides when
each storage or commit-manager request completes, charging:

* wire latency and bandwidth (per the configured network profile),
* per-message CPU on both endpoints (the kernel-TCP tax on Ethernet),
* storage-node service time through a multi-core FIFO pool -- including
  the synchronous-replication wait, which occupies the master's worker
  and is what makes RF3 expensive under write-heavy load (Figure 5),
* processing-node CPU for query processing (Compute effects).

State mutations execute via ``Simulator.call_at`` at the exact simulated
instant the storage node services them, so LL/SC conflicts arise from
genuine request interleavings.
"""

from __future__ import annotations

import heapq
import random
from typing import Any, Dict, Generator, List, Optional, Sequence, Tuple

from repro import effects
from repro.bench.config import TellConfig
from repro.bench.metrics import TxnMetrics
from repro.core.buffers import make_strategy
from repro.core.commit_manager import CommitManager
from repro.core.processing_node import ProcessingNode
from repro.core.transaction import Transaction
from repro.dispatch import (
    KIND_BATCH,
    KIND_CM_ABORTED,
    KIND_CM_COMMITTED,
    KIND_CM_START,
    KIND_CM_VALIDATE,
    KIND_COMPUTE,
    KIND_SCAN,
    KIND_SLEEP,
    KIND_STORE,
    DispatchContext,
    DispatchEnv,
    Dispatcher,
    Interceptor,
    attach_all,
    compose,
    kind_of,
    kind_table,
)
from repro.errors import TellError, TransactionAborted, WrongOwner
from repro.net.profiles import NetworkProfile, profile_by_name
from repro.sim.kernel import Delay, Simulator, delay_of
from repro.sql.table import IndexManager
from repro.store.cluster import StorageCluster
from repro.store.management import ManagementNode
from repro.workloads.loader import BulkLoader
from repro.workloads.tpcc.mixes import MIXES
from repro.workloads.tpcc.params import ParamGenerator
from repro.workloads.tpcc.population import populate
from repro.workloads.tpcc.schema import build_tpcc_catalog
from repro.workloads.tpcc.transactions import (
    TRANSACTIONS,
    TpccContext,
    TpccRollback,
)

#: Response-size estimates by request kind (bytes); used for wire time.
READ_RESPONSE_BYTES = 280
WRITE_RESPONSE_BYTES = 24
CM_MESSAGE_BYTES = 96
SN_SERVICE_CM_US = 0.6
#: Backup write amplification: a replica put appends to the backup's log
#: and buffers it for persistent storage, costing more than the master's
#: in-memory update.
REPL_WRITE_AMP = 2.0
REPL_FIXED_US = 5.0

#: Exact request classes that must reach the backup replicas; used for
#: one-lookup membership tests in the fabric's hot loop (subclasses still
#: take the isinstance route).
_REPLICATED_OP_CLASSES = frozenset(
    (
        effects.Put,
        effects.PutIfVersion,
        effects.Delete,
        effects.DeleteIfVersion,
        effects.Increment,
    )
)


class CorePool:
    """A multi-server FIFO of CPU cores (reserve = find earliest core)."""

    __slots__ = ("_free",)

    def __init__(self, cores: int):
        self._free = [0.0] * cores
        heapq.heapify(self._free)

    def earliest(self, at: float) -> float:
        return max(at, self._free[0])

    def reserve(
        self,
        at: float,
        duration: float,
        _heapreplace=heapq.heapreplace,
    ) -> Tuple[float, float]:
        free = self._free
        head = free[0]
        start = at if at > head else head
        end = start + duration
        _heapreplace(free, end)
        return start, end


class FabricStats:
    __slots__ = ("messages", "store_ops", "bytes_sent")

    def __init__(self) -> None:
        self.messages = 0
        self.store_ops = 0
        self.bytes_sent = 0


class _Slot:
    """Result carrier between a call_at callback and the waiting driver."""

    __slots__ = ("value", "error")

    def __init__(self) -> None:
        self.value = None
        self.error: Optional[BaseException] = None


class SimFabric:
    """Times and applies requests for all processing nodes."""

    def __init__(
        self,
        sim: Simulator,
        cluster: StorageCluster,
        commit_managers: List[CommitManager],
        config: TellConfig,
    ):
        self.sim = sim
        self.cluster = cluster
        self.commit_managers = commit_managers
        self.config = config
        self.profile: NetworkProfile = profile_by_name(config.network)
        self.sn_pools = {
            node_id: CorePool(config.sn_cores) for node_id in cluster.nodes
        }
        self.cm_pools = [CorePool(2) for _ in commit_managers]
        self.stats = FabricStats()
        # Per-run constants of the CM round trip, hoisted off the hot path.
        self._cm_wire_us = self.profile.one_way(CM_MESSAGE_BYTES)
        self._cm_service_us = SN_SERVICE_CM_US + self.profile.server_cpu_per_msg_us
        #: PN<->SN message coalescing (the paper's batching knob applied
        #: to implicit, co-timed single-key traffic).  ``_pending`` maps
        #: (pn_pool, node_id) to the ops accumulated at the current
        #: timestamp; a flush callback drains each group as one message.
        self.coalescing = getattr(config, "coalescing", False)
        self._pending: Dict[Tuple[Any, int], List[Tuple[Any, int, Any]]] = {}
        #: Set by the elastic coordinator when live topology change is in
        #: play.  Arms the apply-time ownership guard in
        #: :meth:`_send_group`: a request that was routed before a
        #: migration promoted a new master must fail with
        #: :class:`~repro.errors.WrongOwner` *before any state mutation*
        #: (the redirect interceptor then re-routes it).  False on the
        #: static path -- the guard costs nothing when elasticity is off.
        self.elastic_active = False

    def register_node(self, node_id: int) -> None:
        """Give a freshly attached storage node its simulated core pool."""
        if node_id not in self.sn_pools:
            self.sn_pools[node_id] = CorePool(self.config.sn_cores)

    # -- top-level dispatch ------------------------------------------------------

    def perform(self, pn_pool: CorePool, cm_index: int,
                request: effects.Request, pn_id: int = -1) -> Generator:
        """Sub-generator (yields Delay/Event) resolving one request.

        Routing is the shared :func:`repro.dispatch.kind_of`
        classification (one dict lookup for the exact effect classes);
        this fabric owns only the *timing* model for each kind.  Checks
        are ordered by request frequency: single-key storage ops and
        Compute dominate the stream.
        """
        kind = kind_of(request)
        if kind == KIND_STORE:
            if self.coalescing:
                return (yield from self._perform_coalesced(pn_pool, request))
            return (yield from self._perform_single(pn_pool, request))
        if kind == KIND_COMPUTE:
            now = self.sim.now
            _start, end = pn_pool.reserve(now, request.duration)
            if end > now:
                yield Delay(end - now)
            return None
        if kind == KIND_SLEEP:
            yield delay_of(request.duration)
            return None
        if kind == KIND_BATCH:
            if self.config.batching:
                return (yield from self._perform_batch(pn_pool, request.ops))
            results = []
            for op in request.ops:  # no batching: one round trip each
                single = yield from self._perform_single(pn_pool, op)
                results.append(single)
            return results
        if kind == KIND_SCAN:
            return (yield from self._perform_scan(pn_pool, request))
        # Remaining kinds are the commit-manager round trips.
        return (yield from self._perform_cm(pn_pool, cm_index, request, pn_id,
                                            kind))

    # -- storage messages ------------------------------------------------------------

    def prepare_single(
        self, pn_pool: CorePool, op: effects.StoreRequest
    ) -> Tuple[_Slot, float]:
        """Non-generator core of one single-key op: the degenerate
        one-message batch.

        Performs every reservation and schedules the state transition,
        then returns ``(slot, wait_us)`` and leaves the single suspension
        to the caller -- the zero-allocation driver loop in
        :meth:`SimulatedTell._drive` yields one reusable Delay instead of
        instantiating a sub-generator per request.  Routing is inlined
        (partitioner + master lookup) so the hot path allocates nothing
        beyond the result slot.
        """
        cluster = self.cluster
        partition_id = cluster.partitioner.partition_of(op.key)
        node_id = cluster.partition_map.assignments[partition_id].replicas[0]
        now = self.sim.now
        t_send = now
        client_cpu = self.profile.client_cpu_per_msg_us
        if client_cpu > 0:
            _s, t_send = pn_pool.reserve(t_send, client_cpu)
        slot, t_done = self._send_group(
            t_send, node_id, [(0, op, partition_id)]
        )
        if client_cpu > 0:
            _s, t_done = pn_pool.reserve(t_done, client_cpu)
        return slot, t_done - now

    def _perform_single(
        self, pn_pool: CorePool, op: effects.StoreRequest
    ) -> Generator:
        """Generator wrapper over :meth:`prepare_single` -- most requests
        the protocol issues outside explicit batches land here (or on the
        driver's inlined equivalent)."""
        slot, wait = self.prepare_single(pn_pool, op)
        if wait > 0:
            yield Delay(wait)
        if slot.error is not None:
            raise slot.error
        return slot.value[0]

    def _perform_batch(
        self, pn_pool: CorePool, ops: List[effects.StoreRequest]
    ) -> Generator:
        """Send ops grouped per target storage node; one message each."""
        if len(ops) == 1:
            only = yield from self._perform_single(pn_pool, ops[0])
            return [only]
        routing_of = self.cluster.routing
        groups: Dict[int, List[Tuple[int, effects.StoreRequest, int]]] = {}
        for position, op in enumerate(ops):
            routing = routing_of(op)
            group = groups.get(routing.node_id)
            if group is None:
                groups[routing.node_id] = group = []
            group.append((position, op, routing.partition_id))
        now = self.sim.now
        # Send-side CPU: one charge per outgoing message.
        t_send = now
        client_cpu = self.profile.client_cpu_per_msg_us
        if client_cpu > 0:
            for _ in groups:
                _s, t_send = pn_pool.reserve(t_send, client_cpu)
        slots = []
        t_done = t_send
        for node_id, members in groups.items():
            slot, t_response = self._send_group(t_send, node_id, members)
            slots.append((slot, members))
            if t_response > t_done:
                t_done = t_response
        # Receive-side CPU, one charge per response message.
        if client_cpu > 0:
            for _ in groups:
                _s, t_done = pn_pool.reserve(t_done, client_cpu)
        if t_done > now:
            yield Delay(t_done - now)
        results: List[Any] = [None] * len(ops)
        error: Optional[BaseException] = None
        for slot, members in slots:
            if slot.error is not None:
                error = slot.error
                continue
            for (position, _op, _pid), value in zip(members, slot.value):
                results[position] = value
        if error is not None:
            raise error
        return results

    def _perform_coalesced(
        self, pn_pool: CorePool, op: effects.StoreRequest
    ) -> Generator:
        """One single-key op under the coalescing knob (Section 7 batching).

        Co-timed ops from the same PN to the same storage node aggregate
        into one fabric message: the first op of a (pn, node) group at the
        current instant schedules a same-time flush callback; every op
        parks on a private event until the group's shared response lands.
        The group pays one wire latency plus the *summed* serialization
        and service cost -- exactly the paper's middleware batching --
        instead of one full round trip per op.

        Determinism: group membership and flush order ride the kernel's
        same-time ready FIFO, so a fixed seed reproduces the identical
        grouping, timing, and digest on every invocation.
        """
        cluster = self.cluster
        partition_id = cluster.partitioner.partition_of(op.key)
        node_id = cluster.partition_map.assignments[partition_id].replicas[0]
        key = (pn_pool, node_id)
        event = self.sim.event()
        group = self._pending.get(key)
        if group is None:
            self._pending[key] = [(op, partition_id, event)]
            self.sim.call_at(
                self.sim.now, lambda: self._flush_coalesced(key)
            )
        else:
            group.append((op, partition_id, event))
        slot, position = yield event
        if slot.error is not None:
            raise slot.error
        return slot.value[position]

    def _flush_coalesced(self, key: Tuple[Any, int]) -> None:
        """Ship one accumulated (pn, node) group as a single message."""
        pn_pool, node_id = key
        group = self._pending.pop(key)
        now = self.sim.now
        t_send = now
        client_cpu = self.profile.client_cpu_per_msg_us
        if client_cpu > 0:
            _s, t_send = pn_pool.reserve(t_send, client_cpu)
        members = [
            (position, op, pid)
            for position, (op, pid, _event) in enumerate(group)
        ]
        slot, t_response = self._send_group(t_send, node_id, members)
        if client_cpu > 0:
            _s, t_response = pn_pool.reserve(t_response, client_cpu)

        def deliver() -> None:
            for position, (_op, _pid, event) in enumerate(group):
                event.trigger((slot, position))

        self.sim.call_at(t_response, deliver)

    def _send_group(
        self,
        now: float,
        node_id: int,
        members: List[Tuple[int, effects.StoreRequest, int]],
    ) -> Tuple[_Slot, float]:
        """Schedule one request message; returns (slot, t_response)."""
        profile = self.profile
        cluster = self.cluster
        node = cluster.nodes[node_id]
        pool = self.sn_pools[node_id]
        request_size = cluster.request_size
        service_us_read = node.service_us_read
        service_us_write = node.service_us_write

        # One pass over the members computes wire size, service time, and
        # the replicated-write set together (three separate traversals
        # previously).
        request_bytes = 0
        service = profile.server_cpu_per_msg_us
        response_bytes = 16
        writes: List[Tuple[effects.StoreRequest, int]] = []
        for _pos, op, pid in members:
            request_bytes += request_size(op)
            cls = op.__class__
            if cls is effects.Get or isinstance(op, effects.Get):
                service += service_us_read
                response_bytes += READ_RESPONSE_BYTES
            else:
                service += service_us_write
                response_bytes += WRITE_RESPONSE_BYTES
                if cls in _REPLICATED_OP_CLASSES or isinstance(
                    op,
                    (effects.Put, effects.PutIfVersion, effects.Delete,
                     effects.DeleteIfVersion, effects.Increment),
                ):
                    writes.append((op, pid))

        stats = self.stats
        stats.messages += 1
        stats.store_ops += len(members)
        stats.bytes_sent += request_bytes

        t_arrive = now + profile.one_way(request_bytes)

        start = pool.earliest(t_arrive)
        # Synchronous replication: the master worker is held until every
        # backup acknowledged (RAMCloud-style), so the wait extends the
        # reservation -- this is what throttles write capacity and
        # inflates commit latency under RF3 (Figure 5).  A backup write
        # is costlier than a master write (log append + buffer flush:
        # the ``REPL_WRITE_AMP`` factor plus a fixed per-put cost), and a
        # master pipelines its group's puts one at a time.
        repl_extra = 0.0
        if writes and cluster.replication_factor > 1:
            backup_targets: Dict[int, int] = {}
            backups_of = cluster.partition_map.backups_of
            for op, pid in writes:
                for backup_id in backups_of(pid):
                    backup_targets[backup_id] = backup_targets.get(backup_id, 0) + 1
            sent = start + service
            for backup_id, write_count in backup_targets.items():
                backup_node = cluster.nodes[backup_id]
                backup_pool = self.sn_pools[backup_id]
                b_arrive = sent + profile.one_way(64)
                backup_service = write_count * (
                    backup_node.service_us_write * REPL_WRITE_AMP
                    + REPL_FIXED_US
                )
                _bs, b_end = backup_pool.reserve(b_arrive, backup_service)
                repl_extra += max(0.0, b_end + profile.one_way(32) - sent)
        _s, t_service_end = pool.reserve(t_arrive, service + repl_extra)

        slot = _Slot()

        def apply() -> None:
            try:
                if self.elastic_active:
                    # Ownership may have changed between routing (send
                    # time) and service (now).  Reject the whole message
                    # BEFORE applying anything: a write landing on a
                    # demoted master would be silently lost by the next
                    # migration batch, and a half-applied group could not
                    # be retried.  The epoch rides the error so the
                    # redirect interceptor can report staleness.
                    assignments = cluster.partition_map.assignments
                    for _pos, op, pid in members:
                        if node_id not in assignments[pid].replicas:
                            raise WrongOwner(
                                pid, node_id, cluster.topology.epoch
                            )
                    for op, pid in writes:
                        if assignments[pid].replicas[0] != node_id:
                            raise WrongOwner(
                                pid, node_id, cluster.topology.epoch
                            )
                values = []
                for _pos, op, pid in members:
                    value, _size = cluster.apply(op, pid, node_id)
                    values.append(value)
                for op, pid in writes:
                    cluster.replicate(op, pid)
                slot.value = values
            except TellError as exc:
                slot.error = exc

        self.sim.call_at(t_service_end, apply)
        t_response = t_service_end + profile.one_way(response_bytes)
        return slot, t_response

    def _perform_scan(self, pn_pool: CorePool, op: effects.Scan) -> Generator:
        """Fan a scan out to every master; wait for the slowest slice."""
        profile = self.profile
        now = self.sim.now
        slices: Dict[int, List[int]] = {}
        for pid, node_id in self.cluster.scan_routing(op):
            slices.setdefault(node_id, []).append(pid)
        slot = _Slot()
        t_done = now
        for node_id, pids in slices.items():
            node = self.cluster.nodes[node_id]
            pool = self.sn_pools[node_id]
            t_arrive = now + profile.one_way(64)
            # Scans are served by a dedicated thread; cost grows with the
            # partition's population (approximated per stored cell).
            cells = sum(
                sum(len(s) for s in node.partitions[pid].spaces.values())
                for pid in pids
                if pid in node.partitions
            )
            service = profile.server_cpu_per_msg_us + 0.05 * max(cells, 1)
            _s, t_end = pool.reserve(t_arrive, service)
            t_done = max(t_done, t_end)
            self.stats.messages += 1

        event = self.sim.event()

        def run_scan() -> None:
            from repro.store.cell import approx_size

            try:
                slot.value = self.cluster.execute_scan(op)
                response_bytes = 64 + sum(
                    16 + approx_size(value) for _k, value, _v in slot.value
                )
            except TellError as exc:
                slot.error = exc
                response_bytes = 64
            # The response wire time depends on how much the scan ships:
            # storage-side push-down (Section 5.2) earns its keep here.
            self.stats.bytes_sent += response_bytes
            self.sim.call_at(
                self.sim.now + profile.one_way(response_bytes),
                lambda: event.trigger(None),
            )

        self.sim.call_at(t_done, run_scan)
        yield event
        if slot.error is not None:
            raise slot.error
        return slot.value

    # -- commit manager messages -----------------------------------------------------

    def prepare_cm(
        self, cm_index: int, request: effects.CommitManagerRequest,
        pn_id: int, kind: int,
    ) -> Tuple[Any, float]:
        """Non-generator core of one commit-manager round trip.

        Manager state executes at issue time (its operations are
        microsecond-cheap and commute across the tiny reordering window);
        the latency charged is arrival + queueing + response, plus one
        storage round trip whenever serving a start required refilling the
        manager's tid range from the shared counter.  Returns
        ``(result, wait_us)``; ``wait_us`` is always positive (two wire
        hops), the caller owns the suspension.
        """
        manager = self.commit_managers[cm_index]
        pool = self.cm_pools[cm_index]
        now = self.sim.now
        self.stats.messages += 1
        refilled = False
        if kind == KIND_CM_START:
            result: Any = manager.start(pn_id)
            refilled = result.range_refilled
        elif kind == KIND_CM_COMMITTED:
            manager.set_committed(request.tid)
            result = None
        elif kind == KIND_CM_VALIDATE:
            result = manager.validate_commit(request)
        else:
            manager.set_aborted(request.tid)
            result = None
        cm_wire = self._cm_wire_us
        _s, t_end = pool.reserve(now + cm_wire, self._cm_service_us)
        t_response = t_end + cm_wire
        if refilled:
            t_response += self.profile.round_trip() + 2.0
        return result, t_response - now

    def _perform_cm(
        self, pn_pool: CorePool, cm_index: int,
        request: effects.CommitManagerRequest, pn_id: int = -1,
        kind: int = -1,
    ) -> Generator:
        """Generator wrapper over :meth:`prepare_cm`."""
        if kind < 0:
            kind = kind_of(request)
        result, wait = self.prepare_cm(cm_index, request, pn_id, kind)
        yield Delay(wait)
        return result


class SimulatedTell:
    """A complete simulated deployment running TPC-C.

    ``interceptors`` is an ordered chain of
    :class:`repro.dispatch.Interceptor` middleware wrapped around every
    workload request (tracing, fault injection, retry policy -- see
    ``docs/dispatch.md``).  The default empty chain adds no work to the
    hot loop.
    """

    def __init__(self, config: TellConfig,
                 interceptors: Sequence[Interceptor] = ()):
        self.config = config
        self.sim = Simulator()
        self.cluster = StorageCluster(
            n_nodes=config.storage_nodes,
            replication_factor=config.replication_factor,
            partitions_per_node=config.partitions_per_node,
            placement=getattr(config, "placement", "hash"),
        )
        from repro.core.isolation import make_protocol, make_validator

        isolation = getattr(config, "isolation", "si")
        self.protocol = make_protocol(isolation)
        # One validator shared by every manager: it models validation
        # state synchronized through the store, not per-manager memory.
        self.validator = make_validator(isolation)
        self.commit_managers = [
            CommitManager(
                cm_id, self.cluster.execute, config.tid_range_size,
                interleaved=config.interleaved_tids,
                n_managers=config.commit_managers,
                validator=self.validator,
            )
            for cm_id in range(config.commit_managers)
        ]
        self.fabric = SimFabric(
            self.sim, self.cluster, self.commit_managers, config
        )
        self.management = ManagementNode(self.cluster)
        self.catalog = build_tpcc_catalog()
        self.metrics = TxnMetrics()
        self.obs = None
        from repro.obs import obs_enabled
        if config.observability or obs_enabled():
            from repro.obs import Observability
            from repro.obs.collect import (watch_commit_manager,
                                           watch_fabric,
                                           watch_storage_cluster,
                                           watch_topology)

            self.obs = Observability(clock=lambda: self.sim.now)
            watch_storage_cluster(self.obs.registry, self.cluster)
            for manager in self.commit_managers:
                watch_commit_manager(self.obs.registry, manager)
            watch_fabric(self.obs.registry, self.fabric.stats)
            watch_topology(self.obs.registry, self.cluster.topology)
        self.interceptors = list(interceptors)
        self.sanitizer_log = None
        from repro.san import sanitizers_enabled
        if sanitizers_enabled():
            from repro.san import make_sanitizers

            self.sanitizer_log, chain = make_sanitizers(isolation=isolation)
            self.interceptors.extend(chain)
        self._pn_handles: List[Tuple[ProcessingNode, CorePool, int, IndexManager]] = []
        # Live PN pool state: terminals of a stopped PN exit their loop at
        # the next transaction boundary (the flag check adds no simulated
        # time, so the static path's digest is untouched).
        self._pn_active: Dict[int, bool] = {}
        self._pn_procs: Dict[int, List[Any]] = {}
        self._warmup_end = min(config.warmup_us, config.duration_us)
        self._end_time = config.duration_us
        self._populated = False
        if self.interceptors:
            attach_all(
                self.interceptors,
                DispatchEnv(
                    cluster=self.cluster,
                    commit_managers=self.commit_managers,
                    sim=self.sim,
                    metrics=self.metrics,
                    management=self.management,
                ),
            )

    # -- setup (direct, untimed) --------------------------------------------------------

    def load(self) -> Dict[str, int]:
        """Populate the database (setup step, not simulated time)."""
        loader_indexes = IndexManager()
        loader = BulkLoader(self.catalog, loader_indexes)
        counts = effects.run_direct(
            populate(self.catalog, loader, self.config.scale,
                     seed=self.config.seed),
            Dispatcher(self.cluster),
        )
        self._populated = True
        return counts

    def _make_pn(self, pn_id: int) -> Tuple[ProcessingNode, CorePool, int, IndexManager]:
        pn = ProcessingNode(
            pn_id,
            buffers=make_strategy(self.config.buffering),
            clock=lambda: self.sim.now,
            protocol=self.protocol,
        )
        pool = CorePool(self.config.pn_cores)
        cm_index = pn_id % len(self.commit_managers)
        indexes = IndexManager()
        if self.obs is not None:
            from repro.obs.collect import (watch_index_manager,
                                           watch_processing_node)

            pn.obs = self.obs
            watch_processing_node(self.obs.registry, pn)
            watch_index_manager(self.obs.registry, indexes, pn_id)
        return pn, pool, cm_index, indexes

    # -- the simulated workload --------------------------------------------------------

    def run(self) -> TxnMetrics:
        if not self._populated:
            self.load()
        config = self.config
        end_time = self._end_time
        warmup_end = self._warmup_end
        mix = MIXES[config.mix]

        for pn_id in range(config.processing_nodes):
            self._spawn_pn(pn_id, mix, warmup_end, end_time)
        if len(self.commit_managers) > 1:
            for manager in self.commit_managers:
                self.sim.spawn(
                    self._cm_sync_loop(manager), name=f"cm{manager.cm_id}-sync"
                )
        self.sim.run(until=end_time)
        self.metrics.measured_time_us = end_time - warmup_end
        if self.sanitizer_log is not None:
            self.sanitizer_log.assert_clean()
        if self.obs is not None:
            from repro import obs as obs_module

            snapshot = self.obs.snapshot()
            # Outside the digest: observability must never change the
            # deterministic result identity of a run.
            self.metrics.obs_snapshot = snapshot
            obs_module.emit(self._obs_label(), snapshot)
        return self.metrics

    def _spawn_pn(self, pn_id: int, mix, warmup_end: float,  # noqa: ANN001
                  end_time: float) -> Tuple[ProcessingNode, CorePool, int,
                                            IndexManager]:
        handle = self._make_pn(pn_id)
        self._pn_handles.append(handle)
        self._pn_active[pn_id] = True
        procs = self._pn_procs.setdefault(pn_id, [])
        for thread in range(self.config.threads_per_pn):
            seed = (self.config.seed * 10_007 + pn_id * 131 + thread) & 0x7FFFFFFF
            procs.append(self.sim.spawn(
                self._terminal(handle, mix, seed, warmup_end, end_time),
                name=f"pn{pn_id}-t{thread}",
            ))
        return handle

    def start_pn(self) -> int:
        """Attach a fresh processing node while the simulation runs.

        The new PN's terminals enter the workload at the current
        simulated instant with the same deterministic seed derivation the
        initial pool uses, so a fixed seed reproduces the grown
        deployment exactly.  Returns the new pn id.
        """
        pn_id = (
            max(pn.pn_id for pn, _pool, _cm, _idx in self._pn_handles) + 1
            if self._pn_handles else 0
        )
        self._spawn_pn(pn_id, MIXES[self.config.mix],
                       self._warmup_end, self._end_time)
        return pn_id

    def stop_pn(self, pn_id: int) -> None:
        """Retire a processing node: its terminals exit at the next
        transaction boundary.  The caller (the elastic coordinator) then
        drains and runs PN recovery to roll back anything in flight."""
        self._pn_active[pn_id] = False

    def pn_quiesced(self, pn_id: int) -> bool:
        """True once every terminal of a stopped PN has actually exited.

        A terminal only observes :meth:`stop_pn` at its next transaction
        boundary, so a transaction in flight at stop time keeps running
        for a while; recovery must not roll it back underneath it (the
        sanitizers catch exactly that)."""
        return all(proc.finished for proc in self._pn_procs.get(pn_id, ()))

    def pn_handle(self, pn_id: int) -> Tuple[ProcessingNode, CorePool, int,
                                             IndexManager]:
        for handle in self._pn_handles:
            if handle[0].pn_id == pn_id:
                return handle
        raise KeyError(f"no processing node {pn_id}")

    def active_pn_ids(self) -> List[int]:
        return sorted(
            pn_id for pn_id, active in self._pn_active.items() if active
        )

    def _obs_label(self) -> str:
        config = self.config
        return (f"tell-pn{config.processing_nodes}"
                f"-sn{config.storage_nodes}"
                f"-rf{config.replication_factor}"
                f"-cm{config.commit_managers}"
                f"-{config.buffering}-{config.mix}-seed{config.seed}")

    def _terminal(
        self,
        handle: Tuple[ProcessingNode, CorePool, int, IndexManager],
        mix,  # noqa: ANN001
        seed: int,
        warmup_end: float,
        end_time: float,
    ) -> Generator:
        pn, pool, cm_index, indexes = handle
        config = self.config
        rng = random.Random(seed)
        param_gen = ParamGenerator(
            config.scale, seed=seed ^ 0x5DEECE66D,
            remote_accesses=mix.remote_accesses,
        )
        param_fns = {name: getattr(param_gen, name) for name in TRANSACTIONS}
        sim = self.sim
        active = self._pn_active
        pn_id = pn.pn_id
        while sim.now < end_time and active.get(pn_id, True):
            txn_name = mix.pick(rng)
            params = param_fns[txn_name]()
            started = self.sim.now
            try:
                outcome = yield from self._drive(
                    pool, cm_index,
                    self._transaction_script(pn, indexes, txn_name, params),
                    pn_id=pn.pn_id,
                )
            except TellError:
                # An infrastructure failure (e.g. a storage node dying
                # under an in-flight request) escaped the transaction's
                # own abort path.  The terminal abandons the transaction
                # exactly like a crashed PN -- recovery reconciles the
                # leftover state -- and keeps serving.
                outcome = "conflict"
            if started >= warmup_end:
                self.metrics.record(txn_name, outcome, self.sim.now - started)

    def _transaction_script(
        self, pn: ProcessingNode, indexes: IndexManager,
        txn_name: str, params,  # noqa: ANN001
    ) -> Generator:
        config = self.config
        try:
            txn: Transaction = yield from pn.begin()
        except TellError:
            return "conflict"
        if txn.span is not None:
            txn.span.attrs["txn"] = txn_name
        context = TpccContext(
            self.catalog, txn, indexes, cpu_per_row_us=config.cpu_per_row_us
        )
        context.districts_per_warehouse = config.scale.districts_per_warehouse
        if config.txn_overhead_us > 0:
            yield effects.Compute(config.txn_overhead_us)
        try:
            yield from TRANSACTIONS[txn_name](context, params)
        except TpccRollback:
            yield from txn.abort()
            return "user_abort"
        except TransactionAborted:
            return "conflict"
        except TellError:
            # e.g. KeyNotFound under races: treat as an abort
            yield from txn.abort()
            return "conflict"
        try:
            yield from txn.commit()
        except TransactionAborted:
            return "conflict"
        return "committed"

    def _drive(self, pool: CorePool, cm_index: int, gen,
               pn_id: int = -1) -> Generator:  # noqa: ANN001
        """Run a protocol coroutine under the fabric (a sim process body).

        With interceptors configured, every request flows through the
        composed :mod:`repro.dispatch` chain terminating in
        :meth:`SimFabric.perform`.  The empty chain takes the
        zero-allocation fast path: the pre-bound exact-class kind table
        classifies each request with one dict lookup, single-key storage
        and CM round trips run through the non-generator ``prepare_*``
        forms (no sub-generator, no OpRouting), and the one suspension
        per request reuses a single mutable Delay -- the kernel consumes
        ``duration`` synchronously at the yield, so the instance is free
        for the next request by the time this driver resumes.  Only
        batches, scans, and subclassed requests fall back to the generic
        :meth:`SimFabric.perform` sub-generator.
        """
        send_value: Any = None
        throw_exc: Optional[BaseException] = None
        fabric = self.fabric
        perform = fabric.perform
        sim = fabric.sim
        reserve = pool.reserve
        chain = None
        if self.interceptors:
            ctx = DispatchContext(
                pn_id=pn_id, clock=sim.clock(), engine="sim"
            )

            def tail(request: effects.Request) -> Generator:
                return perform(pool, cm_index, request, pn_id)

            chain = compose(self.interceptors, tail, ctx)
            while True:
                try:
                    if throw_exc is not None:
                        request = gen.throw(throw_exc)
                        throw_exc = None
                    else:
                        request = gen.send(send_value)
                except StopIteration as stop:
                    return stop.value
                try:
                    send_value = yield from chain(request)
                except TellError as exc:
                    send_value = None
                    throw_exc = exc
            # not reached

        kind_get = kind_table().get
        prepare_single = fabric.prepare_single
        prepare_cm = fabric.prepare_cm
        coalescing = fabric.coalescing
        # Private reusable suspension: never shared across processes and
        # never interned (unlike delay_of results), so mutating it is safe.
        wait_delay = Delay(0.0)
        while True:
            try:
                if throw_exc is not None:
                    request = gen.throw(throw_exc)
                    throw_exc = None
                else:
                    request = gen.send(send_value)
            except StopIteration as stop:
                return stop.value
            kind = kind_get(request.__class__, -1)
            # Compute is the most frequent request (charged per row) and
            # cannot fail; single-key storage ops are next.
            if kind == KIND_COMPUTE:
                now = sim.now
                _start, end = reserve(now, request.duration)
                if end > now:
                    wait_delay.duration = end - now
                    yield wait_delay
                send_value = None
                continue
            if kind == KIND_STORE and not coalescing:
                try:
                    slot, wait = prepare_single(pool, request)
                except TellError as exc:
                    send_value = None
                    throw_exc = exc
                    continue
                if wait > 0:
                    wait_delay.duration = wait
                    yield wait_delay
                error = slot.error
                if error is not None:
                    send_value = None
                    throw_exc = error
                else:
                    send_value = slot.value[0]
                continue
            if KIND_CM_START <= kind <= KIND_CM_ABORTED:
                try:
                    result, wait = prepare_cm(cm_index, request, pn_id, kind)
                except TellError as exc:
                    send_value = None
                    throw_exc = exc
                    continue
                wait_delay.duration = wait
                yield wait_delay
                send_value = result
                continue
            if kind == KIND_SLEEP:
                yield delay_of(request.duration)
                send_value = None
                continue
            # Batches, scans, coalesced stores, subclassed requests.
            try:
                send_value = yield from perform(
                    pool, cm_index, request, pn_id
                )
            except TellError as exc:
                send_value = None
                throw_exc = exc

    def quiesce(self) -> int:
        """Roll back every transaction still in flight after the run.

        Stopping the simulation mid-air leaves workers exactly like
        crashed processing nodes; the paper's recovery procedure
        (Section 4.4.1) brings the store back to a transaction-consistent
        state.  Returns the number of transactions rolled back.
        """
        from repro.core.recovery import recover_processing_node
        from repro.core.txlog import TransactionLog

        router = Dispatcher(self.cluster)
        rolled_back = 0
        pn_ids = {pn.pn_id for pn, _pool, _cm, _idx in self._pn_handles}
        for pn_id in sorted(pn_ids):
            rolled_back += len(
                effects.run_direct(
                    recover_processing_node(
                        pn_id, self.commit_managers, TransactionLog()
                    ),
                    router,
                )
            )
        return rolled_back

    def _cm_sync_loop(self, manager: CommitManager) -> Generator:
        """Background snapshot synchronization between commit managers."""
        peer_ids = [m.cm_id for m in self.commit_managers]
        # Delay objects are immutable; one interned instance serves every
        # iteration of the loop.
        pause = delay_of(self.config.cm_sync_interval_us)
        while True:
            yield pause
            # State-wise the sync runs through the store directly; its
            # timing cost (a handful of microseconds of CM time per
            # interval) is negligible compared to the interval itself.
            manager.sync(peer_ids)


def run_tell_experiment(
    config: TellConfig, interceptors: Sequence[Interceptor] = ()
) -> TxnMetrics:
    """Convenience: build, load, run, return metrics."""
    deployment = SimulatedTell(config, interceptors=interceptors)
    deployment.load()
    return deployment.run()
