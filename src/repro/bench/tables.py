"""Paper-style ASCII tables for benchmark output."""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned ASCII table."""
    cells = [[_format(value) for value in row] for row in rows]
    widths = [
        max(len(header), *(len(row[i]) for row in cells)) if cells else len(header)
        for i, header in enumerate(headers)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def _format(value: Any) -> str:
    if isinstance(value, float):
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:,.2f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def print_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: Optional[str] = None,
) -> None:
    print()
    print(format_table(headers, rows, title))
    print()


#: Table 1 of the paper: design-principle comparison (static content).
TABLE1_HEADERS = [
    "System", "Shared Data", "Decoupling", "In-Memory",
    "ACID Txns", "Complex Queries",
]
TABLE1_ROWS = [
    ("Tell (this reproduction)", "yes", "yes", "yes", "yes", "yes"),
    ("Oracle RAC", "yes", "no", "no", "yes", "yes"),
    ("FoundationDB", "yes", "yes", "yes", "yes", "yes"),
    ("Google F1", "yes", "yes", "no", "yes", "yes"),
    ("OMID", "yes", "yes", "no", "yes", "no"),
    ("Hyder", "yes", "yes", "no", "yes", "(partial)"),
    ("VoltDB", "no", "no", "yes", "yes", "yes"),
    ("Azure SQL Database", "no", "no", "no", "yes", "yes"),
    ("Google BigTable", "no", "yes", "no", "no", "no"),
]
