"""Simulated Tell deployment running the YCSB-style workload.

Reuses the TPC-C deployment's fabric, drivers, and recovery; only the
catalog, population, and terminal loop differ.  The point of the
experiment: a zipfian key-value workload has no partitionable structure
at all, and the shared-data architecture's scaling is unaffected --
"no assumptions on the workload" (Section 2.1) made measurable.
"""

from __future__ import annotations

from typing import Dict, Generator

from repro import effects
from repro.bench.config import TellConfig
from repro.bench.metrics import TxnMetrics
from repro.bench.simcluster import SimulatedTell
from repro.dispatch import Dispatcher
from repro.errors import TellError, TransactionAborted
from repro.sql.table import IndexManager
from repro.workloads.loader import BulkLoader
from repro.workloads.ycsb import (
    WORKLOADS,
    YcsbClient,
    build_ycsb_catalog,
    populate_ycsb,
)


class SimulatedYcsb(SimulatedTell):
    """A simulated deployment serving YCSB instead of TPC-C.

    ``config.mix`` selects the YCSB workload letter (A-F);
    ``record_count`` sizes the usertable.
    """

    def __init__(self, config: TellConfig, record_count: int = 10_000,
                 zipf_theta: float = 0.99):
        super().__init__(config)
        self.catalog = build_ycsb_catalog()
        self.record_count = record_count
        self.zipf_theta = zipf_theta
        if config.mix.upper() not in WORKLOADS:
            raise ValueError(f"unknown YCSB workload {config.mix!r}")
        self.workload = WORKLOADS[config.mix.upper()]

    # -- setup -----------------------------------------------------------------

    def load(self) -> Dict[str, int]:
        loader = BulkLoader(self.catalog, IndexManager())
        count = effects.run_direct(
            populate_ycsb(self.catalog, loader, self.record_count,
                          seed=self.config.seed),
            Dispatcher(self.cluster),
        )
        self._populated = True
        return {"usertable": count}

    # -- workload --------------------------------------------------------------

    def run(self) -> TxnMetrics:
        if not self._populated:
            self.load()
        config = self.config
        end_time = config.duration_us
        warmup_end = min(config.warmup_us, end_time)
        for pn_id in range(config.processing_nodes):
            handle = self._make_pn(pn_id)
            self._pn_handles.append(handle)
            for thread in range(config.threads_per_pn):
                seed = (config.seed * 7919 + pn_id * 211 + thread) & 0x7FFFFFFF
                self.sim.spawn(
                    self._ycsb_terminal(handle, seed, warmup_end, end_time),
                    name=f"ycsb-pn{pn_id}-t{thread}",
                )
        if len(self.commit_managers) > 1:
            for manager in self.commit_managers:
                self.sim.spawn(
                    self._cm_sync_loop(manager), name=f"cm{manager.cm_id}-sync"
                )
        self.sim.run(until=end_time)
        self.metrics.measured_time_us = end_time - warmup_end
        return self.metrics

    def _ycsb_terminal(self, handle, seed: int, warmup_end: float,
                       end_time: float) -> Generator:  # noqa: ANN001
        pn, pool, cm_index, indexes = handle
        client = YcsbClient(
            self.catalog, indexes, self.record_count, self.workload,
            theta=self.zipf_theta, seed=seed,
        )
        while self.sim.now < end_time:
            op, args = client.next_operation()
            started = self.sim.now
            outcome = yield from self._drive(
                pool, cm_index, self._ycsb_script(pn, client, op, args),
                pn_id=pn.pn_id,
            )
            if started >= warmup_end:
                self.metrics.record(op, outcome, self.sim.now - started)

    def _ycsb_script(self, pn, client: YcsbClient, op: str,
                     args: Dict) -> Generator:  # noqa: ANN001
        config = self.config
        try:
            txn = yield from pn.begin()
        except TellError:
            return "conflict"
        if config.txn_overhead_us > 0:
            yield effects.Compute(config.txn_overhead_us)
        try:
            yield from client.execute(txn, op, args)
            if config.cpu_per_row_us > 0:
                yield effects.Compute(config.cpu_per_row_us)
        except TransactionAborted:
            return "conflict"
        except TellError:
            yield from txn.abort()
            return "conflict"
        try:
            yield from txn.commit()
        except TransactionAborted:
            return "conflict"
        return "committed"
