"""Tell core: distributed snapshot isolation over a shared record store.

This package implements the paper's primary contribution (Sections 4-5):

* :mod:`repro.core.snapshot` -- snapshot descriptors (base version +
  committed-tid bitset) and their algebra;
* :mod:`repro.core.commit_manager` -- the lightweight service that hands
  out tids, snapshot descriptors, and the lowest active version, including
  multi-commit-manager operation synchronized through the store;
* :mod:`repro.core.record` -- multi-version records mapped to single
  key-value pairs;
* :mod:`repro.core.transaction` -- the transaction life-cycle with LL/SC
  conflict detection at commit;
* :mod:`repro.core.txlog` -- the shared transaction log;
* :mod:`repro.core.buffers` -- the three buffering strategies of
  Section 5.5;
* :mod:`repro.core.processing_node` -- the PN tying all of it together;
* :mod:`repro.core.recovery` -- roll-back of transactions left behind by a
  crashed processing node;
* :mod:`repro.core.gc` -- eager and lazy garbage collection of versions.
"""

from repro.core.snapshot import CommittedSet, SnapshotDescriptor, TxnStart
from repro.core.record import TOMBSTONE, Version, VersionedRecord
from repro.core.commit_manager import CommitManager
from repro.core.transaction import Transaction, TxnState
from repro.core.processing_node import ProcessingNode
from repro.core.txlog import LogEntry, TransactionLog

__all__ = [
    "CommitManager",
    "CommittedSet",
    "LogEntry",
    "ProcessingNode",
    "SnapshotDescriptor",
    "TOMBSTONE",
    "Transaction",
    "TransactionLog",
    "TxnStart",
    "TxnState",
    "Version",
    "VersionedRecord",
]
