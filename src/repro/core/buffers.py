"""The three buffering strategies of Section 5.5.

Shared data restricts caching: a record can be changed by a remote PN at
any time, so a buffer entry is only usable when it is provably recent
enough for the reading transaction's snapshot.  The paper proposes three
strategies, all implemented here behind one interface:

* :class:`TransactionBuffer` (TB) -- no PN-wide cache; every transaction
  keeps its private read cache (which all strategies provide, since a
  transaction may re-access a record).
* :class:`SharedRecordBuffer` (SB) -- a PN-wide cache; an entry carries a
  version-number set ``B`` and may serve transaction ``T`` when
  ``V_T ⊆ B``.  Misses refresh ``B`` to ``V_max``, the snapshot of the
  most recently started transaction on the PN.
* :class:`SharedBufferVersionSync` (SBVS) -- extends SB with version-set
  cells in the *store*: a small get can prove a buffered record valid
  without re-transferring it.  Records are grouped into cache units that
  share one version-set cell.

Every method that touches the store is a generator yielding storage
requests (see :mod:`repro.effects`).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Generator, List, Optional, Tuple

from repro import effects
from repro.core.record import VersionedRecord
from repro.core.snapshot import SnapshotDescriptor
from repro.core.spaces import DATA_SPACE, VSET_SPACE, vset_key

#: (record-or-None, cell_version) -- what a read produces.
ReadResult = Tuple[Optional[VersionedRecord], int]


class BufferStats:
    """Hit/miss accounting, reported by the Figure 11 experiment."""

    __slots__ = ("lookups", "hits", "vset_checks", "vset_valid", "fetches", "puts")

    def __init__(self) -> None:
        self.lookups = 0
        self.hits = 0
        self.vset_checks = 0
        self.vset_valid = 0
        self.fetches = 0
        self.puts = 0

    @property
    def hit_ratio(self) -> float:
        if self.lookups == 0:
            return 0.0
        return (self.hits + self.vset_valid) / self.lookups


class BufferingStrategy:
    """Interface shared by the three strategies."""

    name = "abstract"

    def __init__(self) -> None:
        self.stats = BufferStats()
        # The PN updates this with the snapshot of every starting
        # transaction; it is the V_max of Section 5.5.2.
        self.latest_snapshot = SnapshotDescriptor(0, 0)

    def observe_snapshot(self, snapshot: SnapshotDescriptor) -> None:
        if snapshot.base >= self.latest_snapshot.base:
            self.latest_snapshot = snapshot

    def read_records(
        self, snapshot: SnapshotDescriptor, keys: List[Any]
    ) -> Generator:
        """Fetch ``keys`` (deduplicated, batched); returns
        ``{key: (record, cell_version)}``."""
        raise NotImplementedError

    def note_applied(
        self, tid: int, key: Any, record: VersionedRecord, cell_version: int
    ) -> Generator:
        """Write-through notification after a successful LL/SC apply."""
        raise NotImplementedError

    def invalidate(self, key: Any) -> None:
        """Drop any buffered state for ``key`` (used after rollbacks)."""


class TransactionBuffer(BufferingStrategy):
    """TB: no shared buffer; always fetch from the storage system."""

    name = "tb"

    def read_records(self, snapshot, keys):
        self.stats.lookups += len(keys)
        self.stats.fetches += len(keys)
        results = yield effects.multi_get(DATA_SPACE, keys)
        return {key: result for key, result in zip(keys, results)}

    def note_applied(self, tid, key, record, cell_version):
        return
        yield  # pragma: no cover - makes this a generator


class SharedRecordBuffer(BufferingStrategy):
    """SB: PN-wide record cache guarded by version-number sets."""

    name = "sb"

    def __init__(self, capacity: int = 100_000):
        super().__init__()
        self.capacity = capacity
        # key -> [record, cell_version, B]
        self._entries: "OrderedDict[Any, List[Any]]" = OrderedDict()

    def read_records(self, snapshot, keys):
        self.stats.lookups += len(keys)
        found: Dict[Any, ReadResult] = {}
        missing: List[Any] = []
        for key in keys:
            entry = self._entries.get(key)
            if entry is not None and snapshot.issubset(entry[2]):
                # Condition 1: V_tx ⊆ B -- the buffer is recent enough.
                self._entries.move_to_end(key)
                found[key] = (entry[0], entry[1])
                self.stats.hits += 1
            else:
                missing.append(key)
        if missing:
            # Condition 2: fetch from the store; B becomes V_max.
            self.stats.fetches += len(missing)
            validity = self.latest_snapshot
            results = yield effects.multi_get(DATA_SPACE, missing)
            for key, (record, cell_version) in zip(missing, results):
                self._insert(key, record, cell_version, validity)
                found[key] = (record, cell_version)
        return found

    def note_applied(self, tid, key, record, cell_version):
        # Write-through: B = V_max ∪ {tid}.  V_max is valid because had a
        # transaction in it changed the record, our LL/SC would have failed.
        validity = self.latest_snapshot.with_completed(tid)
        self._insert(key, record, cell_version, validity)
        self.stats.puts += 1
        return
        yield  # pragma: no cover - makes this a generator

    def invalidate(self, key):
        self._entries.pop(key, None)

    def _insert(self, key, record, cell_version, validity) -> None:
        self._entries[key] = [record, cell_version, validity]
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)  # LRU eviction


class SharedBufferVersionSync(SharedRecordBuffer):
    """SBVS: shared buffer whose validity is synchronized via the store.

    Each cache unit (``unit_size`` consecutive rids of a table) has a
    version-set cell in the ``vset`` space.  A reader whose condition 1
    fails retrieves the small cell: if it equals the buffered set the
    record itself need not be re-transferred.  A writer updates the cell,
    which invalidates every buffered record of the unit on other PNs.
    """

    def __init__(self, unit_size: int = 10, capacity: int = 100_000):
        super().__init__(capacity)
        self.unit_size = unit_size
        self.name = f"sbvs{unit_size}"
        # unit -> set of buffered keys, for local unit invalidation
        self._unit_members: Dict[Any, set] = {}

    def _unit_of(self, key: Any) -> Any:
        table_id, rid = key
        return vset_key(table_id, rid, self.unit_size)

    def read_records(self, snapshot, keys):
        self.stats.lookups += len(keys)
        found: Dict[Any, ReadResult] = {}
        unverified: List[Any] = []
        for key in keys:
            entry = self._entries.get(key)
            if entry is not None and snapshot.issubset(entry[2]):
                self._entries.move_to_end(key)
                found[key] = (entry[0], entry[1])
                self.stats.hits += 1
            else:
                unverified.append(key)
        if not unverified:
            return found

        # Condition 2: fetch the (small) version-set cells.
        units = []
        seen_units = set()
        for key in unverified:
            unit = self._unit_of(key)
            if unit not in seen_units:
                seen_units.add(unit)
                units.append(unit)
        self.stats.vset_checks += len(units)
        vset_results = yield effects.multi_get(VSET_SPACE, units)
        stored_sets = {
            unit: (value if value is not None else SnapshotDescriptor(0, 0))
            for unit, (value, _version) in zip(units, vset_results)
        }

        refetch: List[Any] = []
        for key in unverified:
            stored = stored_sets[self._unit_of(key)]
            entry = self._entries.get(key)
            if entry is not None and entry[2] == stored:
                # Condition 2a: B' == B, the buffered record is still valid.
                found[key] = (entry[0], entry[1])
                self.stats.vset_valid += 1
            else:
                refetch.append(key)

        if refetch:
            # Condition 2b: re-fetch and adopt B' as the validity set.
            self.stats.fetches += len(refetch)
            results = yield effects.multi_get(DATA_SPACE, refetch)
            for key, (record, cell_version) in zip(refetch, results):
                self._insert_unit(key, record, cell_version,
                                  stored_sets[self._unit_of(key)])
                found[key] = (record, cell_version)
        return found

    def note_applied(self, tid, key, record, cell_version):
        # Update the record's unit cell so other PNs notice, then install
        # the written record locally.  Every other buffered record of the
        # unit is invalidated (their B no longer matches the stored cell).
        new_set = self.latest_snapshot.with_completed(tid)
        unit = self._unit_of(key)
        yield effects.Put(VSET_SPACE, unit, new_set)
        self.stats.puts += 1
        for member in list(self._unit_members.get(unit, ())):
            if member != key:
                self._entries.pop(member, None)
        self._unit_members[unit] = {key}
        self._insert_unit(key, record, cell_version, new_set)

    def invalidate(self, key):
        super().invalidate(key)
        unit = self._unit_of(key)
        members = self._unit_members.get(unit)
        if members is not None:
            members.discard(key)

    def _insert_unit(self, key, record, cell_version, validity) -> None:
        self._insert(key, record, cell_version, validity)
        self._unit_members.setdefault(self._unit_of(key), set()).add(key)


def make_strategy(name: str, **kwargs: Any) -> BufferingStrategy:
    """Factory used by experiment configs: tb / sb / sbvs10 / sbvs1000."""
    lowered = name.lower()
    if lowered == "tb":
        return TransactionBuffer()
    if lowered == "sb":
        return SharedRecordBuffer(**kwargs)
    if lowered.startswith("sbvs"):
        unit = int(lowered[4:]) if len(lowered) > 4 else 10
        return SharedBufferVersionSync(unit_size=unit, **kwargs)
    raise ValueError(f"unknown buffering strategy {name!r}")
