"""The commit manager service (Section 4.2).

A commit manager hands a starting transaction three things: a system-wide
unique tid, a snapshot descriptor, and the lowest active version number
(lav).  Under the paper's protocol (snapshot isolation) it is
deliberately lightweight -- it performs *no* commit validation
(conflicts are detected by LL/SC in the storage layer).  Under the
read-validating isolation protocols (WSI/SSI, ``repro.core.isolation``)
it additionally serves ``ValidateCommit`` requests against a shared
validator object; plain SI deployments leave ``validator`` unset and pay
nothing.

Several commit managers can run in parallel:

* tid uniqueness comes from an atomically incremented counter in the
  storage system; each manager acquires a continuous *range* of tids
  (e.g. 256) and assigns them on demand, so the counter is touched rarely;
* the snapshot (set of completed transactions) is synchronized through the
  store: in short intervals each manager writes its view and reads the
  others'.  Views are therefore delayed by at most the sync interval,
  which is legitimate (slightly older snapshots only raise the conflict
  probability, Section 6.3.3).

Atomicity contract (checked by ``repro-lint --atomic``): the
completed-set / stripe-cursor and active-base / active-PN fields are
``INVARIANT_PAIRS`` -- their updaters are deliberately synchronous
(no yield between the paired writes, RA003), peer-state absorption must
not re-enter the event loop per peer (RA002), and a validator that
registers a committer must release it on abort via ``on_aborted``
(RA005).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro import effects
from repro.core.snapshot import CommittedSet, SnapshotDescriptor, TxnStart
from repro.errors import InvalidState

#: Storage key of the global tid counter.
TID_COUNTER_KEY = ("counter", "tid")
#: Space in which commit managers keep their published state.
META_SPACE = "meta"


def _state_key(cm_id: int) -> Tuple[str, int]:
    return ("cm_state", cm_id)


class CommitManager:
    """One commit manager instance.

    ``store_execute`` is a callable executing a storage request
    synchronously (state-wise); the driver running the manager accounts
    for the time those requests take.
    """

    def __init__(
        self,
        cm_id: int,
        store_execute: Callable[[effects.Request], Any],
        tid_range_size: int = 256,
        interleaved: bool = False,
        n_managers: int = 1,
        validator: Optional[Any] = None,
    ):
        """``interleaved=True`` enables the tid scheme the paper lists as
        near-future work (Section 4.2, citing [58]): instead of acquiring
        continuous ranges from the shared counter, manager ``cm_id`` of
        ``n_managers`` owns the residue class ``tid ≡ cm_id + 1 (mod n)``.
        Uniqueness needs no shared counter at all, and tids from
        different managers stay finely interleaved, which keeps snapshots
        fresher (lower abort rates) than coarse continuous ranges.  The
        price: an idle manager must *retire* its unused tids during
        synchronization so the global base version can keep advancing.
        """
        if tid_range_size < 1:
            raise InvalidState("tid range size must be >= 1")
        if interleaved and (cm_id < 0 or cm_id >= n_managers):
            raise InvalidState("interleaved mode needs 0 <= cm_id < n_managers")
        self.cm_id = cm_id
        self.store_execute = store_execute
        self.tid_range_size = tid_range_size
        self.interleaved = interleaved
        self.n_managers = n_managers
        self._next_stripe = 0  # interleaved mode: index into our residue class
        self.completed = CommittedSet()
        # active transactions started through this manager
        self._active_base: Dict[int, int] = {}   # tid -> snapshot base
        self._active_pn: Dict[int, int] = {}     # tid -> processing node id
        self._next_tid = 1
        self._range_end = 0                      # exhausted: forces refill
        self.last_assigned_tid = 0
        self._peer_lav: Dict[int, int] = {}      # cm_id -> published lav
        self._peer_last_tid: Dict[int, int] = {}
        self.starts_served = 0
        self.range_refills = 0
        self.sync_rounds = 0
        # Read-validation state for the WSI/SSI isolation protocols
        # (repro.core.isolation.validation); None under plain SI.  All
        # managers of a deployment share ONE validator instance.
        self.validator = validator
        self.validations = 0
        self.validation_aborts = 0

    # -- tid ranges -----------------------------------------------------------

    def _refill_tid_range(self) -> None:
        top = self.store_execute(
            effects.Increment(META_SPACE, TID_COUNTER_KEY, self.tid_range_size)
        )
        self._next_tid = top - self.tid_range_size + 1
        self._range_end = top
        self.range_refills += 1

    # -- the three interface calls of Section 4.2 ------------------------------

    def _next_interleaved_tid(self) -> int:
        tid = self._next_stripe * self.n_managers + self.cm_id + 1
        self._next_stripe += 1
        return tid

    def start(self, pn_id: int = -1) -> TxnStart:
        """start() -> (tid, snapshot descriptor, lav)."""
        refilled = False
        if self.interleaved:
            tid = self._next_interleaved_tid()
        else:
            if self._next_tid > self._range_end:
                self._refill_tid_range()
                refilled = True
            tid = self._next_tid
            self._next_tid += 1
        self.last_assigned_tid = max(self.last_assigned_tid, tid)
        snapshot = self.completed.snapshot()
        self._active_base[tid] = snapshot.base
        self._active_pn[tid] = pn_id
        self.starts_served += 1
        start = TxnStart(tid, snapshot, self.lowest_active_version())
        start.range_refilled = refilled  # timing hint for the sim driver
        return start

    def set_committed(self, tid: int) -> None:
        """setCommitted(tid): the transaction's updates are applied."""
        self._finish(tid)

    def set_aborted(self, tid: int) -> None:
        """setAborted(tid): updates were rolled back before this call, so
        the tid can safely enter the completed set."""
        if self.validator is not None:
            # The tid may have validated and registered before failing at
            # LL/SC or index maintenance: un-register it.
            self.validator.on_aborted(tid)
        self._finish(tid)

    def validate_commit(self, request: effects.ValidateCommit) -> Any:
        """Serve a WSI/SSI commit validation (``ValidateCommit``)."""
        if self.validator is None:
            raise InvalidState(
                f"commit manager {self.cm_id} runs plain SI; "
                "no validator is attached"
            )
        self.validations += 1
        verdict = self.validator.validate_and_register(
            request.tid,
            request.snapshot,
            request.read_keys,
            request.write_keys,
            self.lowest_active_version(),
        )
        if not verdict.ok:
            self.validation_aborts += 1
        return verdict

    @property
    def isolation_name(self) -> str:
        """Mode string for reports/observability ("si" without a
        validator, else the validator's mode)."""
        return "si" if self.validator is None else self.validator.mode

    def _finish(self, tid: int) -> None:
        self.completed.mark_completed(tid)
        self._active_base.pop(tid, None)
        self._active_pn.pop(tid, None)

    # -- lav --------------------------------------------------------------------

    def local_lav(self) -> int:
        """Lowest base version among transactions active on this manager."""
        if self._active_base:
            return min(self._active_base.values())
        return self.completed.base

    def lowest_active_version(self) -> int:
        """Global lav: the minimum over this manager and its peers."""
        lav = self.local_lav()
        for peer_lav in self._peer_lav.values():
            if peer_lav < lav:
                lav = peer_lav
        return lav

    # -- multi-manager synchronization (Section 4.2) ------------------------------

    def publish_state(self) -> None:
        """Write this manager's view to the store for peers to read."""
        snapshot = self.completed.snapshot()
        self.store_execute(
            effects.Put(
                META_SPACE,
                _state_key(self.cm_id),
                (snapshot.base, snapshot.bits, self.local_lav(), self.last_assigned_tid),
            )
        )

    def absorb_peers(self, peer_ids: List[int]) -> None:
        """Read peers' published views and merge them into ours."""
        for peer_id in peer_ids:
            if peer_id == self.cm_id:
                continue
            value, _version = self.store_execute(
                effects.Get(META_SPACE, _state_key(peer_id))
            )
            if value is None:
                continue
            base, bits, peer_lav, peer_last_tid = value
            self.completed.merge_snapshot(SnapshotDescriptor(base, bits))
            self._peer_lav[peer_id] = peer_lav
            self._peer_last_tid[peer_id] = peer_last_tid

    def sync(self, peer_ids: List[int]) -> None:
        """One synchronization round: absorb peers, retire idle stripe
        tids (interleaved mode), then publish the freshest view."""
        self.sync_rounds += 1
        self.absorb_peers(peer_ids)
        if self.interleaved:
            self._retire_idle_stripe_tids()
        self.publish_state()

    def _retire_idle_stripe_tids(self) -> None:
        """Interleaved mode: complete unassigned tids of our residue
        class that peers have already raced past, so the global base can
        advance even when this manager is (relatively) idle.

        Retired tids are skipped by assignment (the stripe cursor moves
        past them), so they are never handed to a transaction.
        """
        horizon = max(self._peer_last_tid.values(), default=0)
        while True:
            tid = self._next_stripe * self.n_managers + self.cm_id + 1
            if tid >= horizon:
                break
            self.completed.mark_completed(tid)
            self._next_stripe += 1

    # -- read-only introspection (sanitizers, reports) -----------------------------

    def active_transactions(self) -> List[Tuple[int, int, int]]:
        """Sorted ``(tid, snapshot_base, pn_id)`` for every transaction
        this manager currently considers active.  Purely observational --
        the sanitizers use it to bound the true lowest active version."""
        return sorted(
            (tid, base, self._active_pn.get(tid, -1))
            for tid, base in self._active_base.items()
        )

    def completed_view(self) -> SnapshotDescriptor:
        """An immutable copy of the completed set (safe to retain)."""
        return self.completed.snapshot()

    # -- recovery support ----------------------------------------------------------

    def active_tids_of(self, pn_id: int) -> List[int]:
        """Transactions a (possibly failed) processing node has in flight."""
        return [tid for tid, owner in self._active_pn.items() if owner == pn_id]

    def highest_known_tid(self) -> int:
        """Upper bound on assigned tids (this manager and synced peers)."""
        peers = max(self._peer_last_tid.values(), default=0)
        return max(self.last_assigned_tid, peers)

    def _advance_stripe_past(self, horizon: int) -> None:
        """Interleaved mode, after recovery: skip every tid of our
        residue class up to and including ``horizon``.  The crashed
        predecessor may have assigned any of them, so handing them out
        again would violate tid uniqueness; marking them completed lets
        the global base version advance past them (exactly like stripe
        retirement for an idle manager)."""
        while True:
            tid = self._next_stripe * self.n_managers + self.cm_id + 1
            if tid > horizon:
                break
            self.completed.mark_completed(tid)
            self._next_stripe += 1

    @classmethod
    def recover(
        cls,
        cm_id: int,
        store_execute: Callable[[effects.Request], Any],
        peer_ids: List[int],
        tid_range_size: int = 256,
        interleaved: bool = False,
        n_managers: int = 1,
        validator: Optional[Any] = None,
    ) -> "CommitManager":
        """Start a replacement manager, restoring state from the store.

        The tid counter guarantees fresh tids (in interleaved mode the
        stripe cursor is advanced past every tid the failed manager may
        have assigned); published peer state (or the failed manager's own
        last publication) restores the snapshot.  ``validator`` re-attaches
        the deployment's shared WSI/SSI validation state -- pass a *fresh*
        validator with :meth:`~repro.core.isolation.validation.CommitValidator.mark_recovered`
        applied when the failed manager was the only holder of it.
        """
        manager = cls(cm_id, store_execute, tid_range_size,
                      interleaved=interleaved, n_managers=n_managers,
                      validator=validator)
        value, _version = store_execute(effects.Get(META_SPACE, _state_key(cm_id)))
        if value is not None:
            base, bits, _lav, last_tid = value
            manager.completed.merge_snapshot(SnapshotDescriptor(base, bits))
            manager.last_assigned_tid = last_tid
        manager.absorb_peers(peer_ids)
        if interleaved:
            manager._advance_stripe_past(manager.highest_known_tid())
        return manager

    def __repr__(self) -> str:
        return (
            f"<CommitManager {self.cm_id} base={self.completed.base} "
            f"active={len(self._active_base)}>"
        )
