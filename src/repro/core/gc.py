"""Garbage collection of record versions (Section 5.4).

Two strategies cooperate:

* *Eager* GC happens inline: a committing transaction strips collectable
  versions from a record before writing it back
  (:meth:`repro.core.record.VersionedRecord.collect_garbage`, wired into
  the commit path), and index lookups drop obsolete entries
  (:meth:`repro.index.btree.DistributedBTree.lookup_and_gc`).
* *Lazy* GC is a background task sweeping the data space in intervals,
  catching rarely-accessed records the eager path never sees.

This module implements the lazy sweeper.  Its prune write *must* stay a
``PutIfVersion`` conditioned on the version observed in the scan: the
scan result is stale after any later yield, and an unconditional write
would silently clobber concurrent committers (``repro-lint --atomic``
rule RA001 guards exactly this downgrade).
"""

from __future__ import annotations

from typing import Callable, Generator, Optional

from repro import effects
from repro.core.spaces import DATA_SPACE


class GcStats:
    __slots__ = ("passes", "records_seen", "versions_removed", "records_removed")

    def __init__(self) -> None:
        self.passes = 0
        self.records_seen = 0
        self.versions_removed = 0
        self.records_removed = 0

    def as_dict(self) -> dict:
        """Read-only snapshot of the counters (for reports/sanitizers)."""
        return {
            "passes": self.passes,
            "records_seen": self.records_seen,
            "versions_removed": self.versions_removed,
            "records_removed": self.records_removed,
        }


def lazy_gc_pass(lav: int, stats: Optional[GcStats] = None) -> Generator:
    """Sweep every record once: prune versions below the lav; drop cells
    whose only surviving version is a tombstone.

    Every mutation uses LL/SC: if a transaction raced us, we skip the
    record -- the next pass (or the eager path) gets it.
    """
    if stats is None:
        stats = GcStats()
    stats.passes += 1
    rows = yield effects.Scan(DATA_SPACE, None, None)
    for key, record, cell_version in rows:
        stats.records_seen += 1
        if record.fully_deleted(lav):
            ok, _ = yield effects.DeleteIfVersion(DATA_SPACE, key, cell_version)
            if ok:
                stats.records_removed += 1
                stats.versions_removed += len(record)
            continue
        pruned = record.collect_garbage(lav)
        if len(pruned) == len(record):
            continue
        ok, _ = yield effects.PutIfVersion(DATA_SPACE, key, pruned, cell_version)
        if ok:
            stats.versions_removed += len(record) - len(pruned)
    return stats


def lazy_gc_loop(
    lav_source: Callable[[], int],
    interval_us: float,
    stats: Optional[GcStats] = None,
) -> Generator:
    """Background task: run a sweep every ``interval_us`` forever.

    ``lav_source`` supplies a fresh lowest-active-version each pass
    (typically ``commit_manager.lowest_active_version``).
    """
    if stats is None:
        stats = GcStats()
    while True:
        yield effects.Sleep(interval_us)
        yield from lazy_gc_pass(lav_source(), stats)
