"""Pluggable isolation protocols for the commit pipeline.

Three first-class variants (``docs/isolation.md`` has the full matrix):

* ``si``  -- snapshot isolation, the paper's protocol (Section 4.1).
  No read tracking, no validation round trip; the commit pipeline is
  byte-identical to the historical ``Transaction.commit``.
* ``wsi`` -- write-snapshot isolation: the transaction's read set is
  captured on the PN and validated at the commit manager against keys
  written by concurrent commits.
* ``ssi`` -- serializable SI: the commit manager additionally tracks
  rw-antidependencies between recent commits and aborts transactions
  that would complete a dangerous structure.

This package is the *only* place allowed to touch the read-set /
validation state directly (``txn._read_keys``, the validator's commit
window) -- lint rule RL012 enforces the boundary.  Everything else goes
through :func:`make_protocol` / :func:`make_validator` and the protocol
hooks on :class:`~repro.core.isolation.base.IsolationProtocol`.
"""

from __future__ import annotations

from typing import Optional

from repro.core.isolation.base import IsolationProtocol, SIProtocol
from repro.core.isolation.validated import (
    SSIProtocol,
    ValidatedProtocol,
    WSIProtocol,
)
from repro.core.isolation.validation import (
    CommitValidator,
    SSICommitValidator,
    ValidationVerdict,
)
from repro.errors import InvalidState

#: Accepted values of ``DatabaseConfig.isolation`` / ``connect(isolation=)``.
ISOLATION_MODES = ("si", "wsi", "ssi")

#: Shared stateless SI instance: the default protocol everywhere a
#: processing node is built without an explicit choice.
DEFAULT_PROTOCOL = SIProtocol()

_PROTOCOLS = {
    "si": DEFAULT_PROTOCOL,
    "wsi": WSIProtocol(),
    "ssi": SSIProtocol(),
}


def make_protocol(isolation: str = "si") -> IsolationProtocol:
    """The (shared, stateless) protocol instance for ``isolation``."""
    try:
        return _PROTOCOLS[isolation]
    except KeyError:
        raise InvalidState(
            f"unknown isolation mode {isolation!r}; pick one of "
            f"{', '.join(ISOLATION_MODES)}"
        ) from None


def make_validator(isolation: str = "si") -> Optional[CommitValidator]:
    """The commit-manager validator for ``isolation`` (None under SI).

    Deployments with several commit managers must share one validator
    instance across all of them -- it models validation state kept in
    the (synchronized) store, not per-manager memory.
    """
    if isolation == "si":
        return None
    if isolation == "wsi":
        return CommitValidator()
    if isolation == "ssi":
        return SSICommitValidator()
    raise InvalidState(
        f"unknown isolation mode {isolation!r}; pick one of "
        f"{', '.join(ISOLATION_MODES)}"
    )


__all__ = [
    "ISOLATION_MODES",
    "DEFAULT_PROTOCOL",
    "IsolationProtocol",
    "SIProtocol",
    "ValidatedProtocol",
    "WSIProtocol",
    "SSIProtocol",
    "CommitValidator",
    "SSICommitValidator",
    "ValidationVerdict",
    "make_protocol",
    "make_validator",
]
