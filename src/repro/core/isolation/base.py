"""The isolation-protocol strategy layer.

:class:`IsolationProtocol` owns the commit pipeline that used to be
hardwired into ``Transaction.commit()``.  The pipeline itself -- precheck,
log append, LL/SC apply, index maintenance, status flip, commit-manager
report -- is identical for every protocol; the variants differ only in

* whether reads are *tracked* (``tracks_reads`` plus the ``attach`` /
  ``note_reads`` hooks called from the transaction's read paths), and
* the :meth:`validate` stage, which runs after the commit log entry is
  durable and before any update is applied.

:class:`SIProtocol` is the paper's protocol: no tracking, an empty
validate stage.  Its effect sequence is byte-identical to the historical
monolithic ``Transaction.commit`` -- ``tools/perf_guard.py`` pins that
with the benchmark digest.  The read-validating variants live in
:mod:`repro.core.isolation.validated`.

Protocol instances are stateless and shared across processing nodes;
all per-transaction state lives on the transaction object.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, List, Sequence

from repro import effects
from repro.core.txlog import STATUS_COMMITTED, LogEntry
from repro.errors import DuplicateKey, TransactionAborted

if TYPE_CHECKING:
    from repro.core.transaction import Transaction


class IsolationProtocol:
    """Base strategy: snapshot isolation (the commit pipeline as-is)."""

    #: Mode string, matches ``DatabaseConfig.isolation``.
    name = "si"
    #: True when the transaction read paths must capture read keys.
    #: Kept as a cheap class attribute so SI's read path stays a single
    #: attribute test away from the historical code.
    tracks_reads = False

    def attach(self, txn: "Transaction") -> None:
        """Called once from ``Transaction.__init__``; tracking protocols
        install their per-transaction read-set state here."""

    def note_reads(self, txn: "Transaction", keys: Sequence[Any]) -> None:
        """Record keys observed through ``read_many`` (and therefore
        ``read``/``read_for_update``).  Only called when
        ``tracks_reads`` is true."""

    def note_scanned(self, txn: "Transaction", keys: Sequence[Any]) -> None:
        """Record keys observed through a table scan (pushdown or raw)."""

    def validate(self, txn: "Transaction", entry: LogEntry) -> Generator:
        """Commit-time validation stage; SI has none.

        Runs between the commit-log append and the first applied update,
        so a validation abort only needs to flip the log status -- there
        is nothing to roll back yet.  Implementations abort by delegating
        to ``txn._finish_abort`` (which raises ``TransactionAborted``).
        """
        return
        yield  # pragma: no cover -- keeps this a generator function

    # -- the commit pipeline ---------------------------------------------------

    def commit(self, txn: "Transaction") -> Generator:
        """Run Try-Commit for ``txn``; raises ``TransactionAborted`` on
        conflict.  See ``Transaction.commit`` for the public entry."""
        from repro.core.transaction import TxnState

        span = txn.span
        if not txn._writes and not txn.index_ops:
            # Read-only fast path: nothing to apply or log.
            txn.state = TxnState.COMMITTED
            commit_child = span.child("commit") if span is not None else None
            yield effects.ReportCommitted(txn.tid)
            if commit_child is not None:
                commit_child.finish()
            txn._finish_span("committed")
            return

        # Conflict scenario 1 of Section 4.1: the record was already read
        # *with* a version newer than our snapshot (another transaction
        # applied after we started but before we read).  The LL/SC would
        # succeed -- nothing changed since the read -- so this case must
        # be detected from the version numbers themselves.
        commit_child = span.child("commit") if span is not None else None
        for key in txn._writes:
            if key in txn._inserted:
                continue
            record, _cell_version = txn._cache[key]
            if record is None:
                continue
            newest = record.newest_tid
            if newest != txn.tid and not txn.snapshot.contains(newest):
                txn.state = TxnState.ABORTED
                yield effects.ReportAborted(txn.tid)
                txn._finish_span("conflict")
                raise TransactionAborted(
                    txn.tid,
                    f"write-write conflict: {key!r} has newer version {newest}",
                )

        txn.state = TxnState.TRY_COMMIT
        entry = LogEntry(txn.tid, txn.pn.pn_id, txn.pn.now(), txn.write_set)
        yield from txn.pn.txlog.append(entry)
        if commit_child is not None:
            commit_child.finish()

        if self.tracks_reads:  # SI skips even the no-op generator
            yield from self.validate(txn, entry)

        write_child = span.child("write") if span is not None else None

        puts, new_records = txn._build_apply_ops()
        results = yield effects.Batch(puts)

        applied: List[Any] = []
        conflict = False
        for op, (ok, _version) in zip(puts, results):
            if ok:
                applied.append(op.key)
            else:
                conflict = True
        if conflict:
            yield from txn._rollback_applied(applied)
            yield from txn._finish_abort(entry, "write-write conflict")

        try:
            yield from txn._apply_index_ops()
        except DuplicateKey as duplicate:
            yield from txn._rollback_applied(applied)
            yield from txn._finish_abort(entry, str(duplicate))

        # Write-through to the PN's shared buffer (if any).
        for op, (ok, cell_version) in zip(puts, results):
            yield from txn.pn.buffers.note_applied(
                txn.tid, op.key, new_records[op.key], cell_version
            )

        if write_child is not None:
            write_child.finish()
        tail_child = span.child("commit") if span is not None else None
        yield from txn.pn.txlog.set_status(entry, STATUS_COMMITTED)
        txn.state = TxnState.COMMITTED
        yield effects.ReportCommitted(txn.tid)
        if tail_child is not None:
            tail_child.finish()
        txn._finish_span("committed")

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"


class SIProtocol(IsolationProtocol):
    """Snapshot isolation -- the explicit name for the base protocol."""

    name = "si"
