"""The read-validating protocols: WSI and SSI.

Both capture the transaction's read set on the processing node (a dict
used as an insertion-ordered set, installed by :meth:`attach`) and add
one commit-manager round trip -- :class:`repro.effects.ValidateCommit` --
to the writing commit path.  The admission rule itself lives with the
commit manager's validator (:mod:`repro.core.isolation.validation`); the
protocol variants differ only in which validator the deployment builds,
so WSI and SSI share this single protocol class hierarchy.

Read-only transactions keep the SI fast path: WSI admits them by
definition, and the SSI approximation documented in ``validation.py``
does not certify them either way.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Sequence

from repro import effects
from repro.core.isolation.base import IsolationProtocol
from repro.core.txlog import LogEntry

if TYPE_CHECKING:
    from repro.core.transaction import Transaction


class ValidatedProtocol(IsolationProtocol):
    """Shared machinery for protocols that validate reads at commit."""

    tracks_reads = True

    def attach(self, txn: "Transaction") -> None:
        # Dict-as-ordered-set: deterministic iteration order for the
        # ValidateCommit payload regardless of key hashing.
        txn._read_keys = {}

    def note_reads(self, txn: "Transaction", keys: Sequence[Any]) -> None:
        read_keys = txn._read_keys
        for key in keys:
            read_keys[key] = None

    def note_scanned(self, txn: "Transaction", keys: Sequence[Any]) -> None:
        read_keys = txn._read_keys
        for key in keys:
            read_keys[key] = None

    def validate(self, txn: "Transaction", entry: LogEntry) -> Generator:
        span = txn.span
        validate_child = span.child("validate") if span is not None else None
        verdict = yield effects.ValidateCommit(
            txn.tid, tuple(txn._read_keys), txn.write_set, txn.snapshot
        )
        if validate_child is not None:
            validate_child.finish()
        if not verdict.ok:
            yield from txn._finish_abort(
                entry, f"{self.name} validation: {verdict.reason}"
            )


class WSIProtocol(ValidatedProtocol):
    """Write-snapshot isolation (commit-time read validation)."""

    name = "wsi"


class SSIProtocol(ValidatedProtocol):
    """Serializable SI via rw-antidependency tracking at the CM."""

    name = "ssi"
