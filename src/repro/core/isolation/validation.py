"""Commit-time validation state for the read-validating protocols.

The commit manager owns one :class:`CommitValidator` (WSI) or
:class:`SSICommitValidator` (SSI) per deployment.  Both keep a *recent
commit window*: for every transaction that validated successfully and is
(about to be) committed, the key sets it read and wrote.  A transaction
asking to commit is checked against the window entries it is concurrent
with -- entries outside its snapshot -- and either admitted (and
registered in the window itself) or told to abort.

The window is bounded by the lowest active version: an entry whose tid is
contained in *every* active snapshot can never be concurrent with a
future validator call, so entries with ``tid <= lav`` are pruned on each
validation.  The lav handed in may be stale (peer views lag by one sync
interval) but staleness only keeps entries longer -- never drops one that
is still needed -- so pruning is sound.

Deployments with several commit managers share a *single* validator
instance, modelling the store-synchronized validation record the real
system would keep; see ``docs/isolation.md``.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple


class ValidationVerdict:
    """Result of a :class:`repro.effects.ValidateCommit` request."""

    __slots__ = ("ok", "reason", "conflict_tid")

    def __init__(self, ok: bool, reason: str = "",
                 conflict_tid: Optional[int] = None) -> None:
        self.ok = ok
        self.reason = reason
        self.conflict_tid = conflict_tid

    def __repr__(self) -> str:
        if self.ok:
            return "ValidationVerdict(ok)"
        return f"ValidationVerdict(abort: {self.reason})"


_ADMIT = ValidationVerdict(True)


class _WindowEntry:
    """One validated-and-committing transaction in the commit window."""

    __slots__ = ("read_keys", "write_keys", "out_rw")

    def __init__(self, read_keys: frozenset, write_keys: frozenset) -> None:
        self.read_keys = read_keys
        self.write_keys = write_keys
        # SSI only: this transaction has an outgoing rw-antidependency
        # (it read something a concurrent committed transaction wrote).
        self.out_rw = False


class CommitValidator:
    """Write-snapshot isolation (WSI) validation.

    Rule ("A Critique of Snapshot Isolation"): a committing *writer* must
    abort iff some concurrent committed transaction wrote a key the
    committer read.  Read-only transactions never validate (they observed
    a consistent snapshot, which WSI admits unconditionally), and
    write-write conflicts are still resolved by LL/SC in the store -- the
    validator only adds the read-write check SI lacks.
    """

    mode = "wsi"

    def __init__(self) -> None:
        # tid -> entry, insertion-ordered (tids are admitted roughly in
        # commit order, so pruning walks a prefix).
        self._commit_window: Dict[int, _WindowEntry] = {}
        # Transactions whose snapshot predates this horizon cannot be
        # validated soundly (window state was lost in a crash).
        self._validation_horizon = 0

    # -- bookkeeping ----------------------------------------------------------

    def is_empty(self) -> bool:
        return not self._commit_window

    def window_size(self) -> int:
        return len(self._commit_window)

    def on_aborted(self, tid: int) -> None:
        """The transaction validated but then failed LL/SC: un-register
        it so it cannot abort others."""
        self._commit_window.pop(tid, None)

    def mark_recovered(self, horizon_tid: int) -> None:
        """Called after a fail-over rebuilt the validator from nothing:
        transactions that started before ``horizon_tid`` was assigned may
        have concurrent commits we no longer remember, so they must abort
        conservatively."""
        if horizon_tid > self._validation_horizon:
            self._validation_horizon = horizon_tid

    def _prune(self, lav: int) -> None:
        window = self._commit_window
        for tid in [t for t in window if t <= lav]:
            del window[tid]

    # -- the validation call --------------------------------------------------

    def validate_and_register(
        self,
        tid: int,
        snapshot: Any,
        read_keys: Tuple[Any, ...],
        write_keys: Tuple[Any, ...],
        lav: int,
    ) -> ValidationVerdict:
        self._prune(lav)
        if snapshot.base < self._validation_horizon:
            return ValidationVerdict(
                False,
                "validator recovered after fail-over; transactions from "
                "before the crash must restart",
            )
        entry = _WindowEntry(frozenset(read_keys), frozenset(write_keys))
        verdict = self._check(tid, snapshot, entry)
        if verdict.ok:
            self._register(tid, snapshot, entry)
        return verdict

    def _concurrent(self, tid: int, snapshot: Any):
        """Window entries not contained in the committer's snapshot."""
        for ctid, entry in self._commit_window.items():
            if ctid != tid and not snapshot.contains(ctid):
                yield ctid, entry

    def _check(self, tid: int, snapshot: Any,
               entry: _WindowEntry) -> ValidationVerdict:
        if not entry.write_keys:
            return _ADMIT  # read-only: WSI admits unconditionally
        reads = entry.read_keys
        for ctid, committed in self._concurrent(tid, snapshot):
            if committed.write_keys & reads:
                return ValidationVerdict(
                    False,
                    f"read key overwritten by concurrent commit {ctid}",
                    conflict_tid=ctid,
                )
        return _ADMIT

    def _register(self, tid: int, snapshot: Any, entry: _WindowEntry) -> None:
        if entry.write_keys:  # read-only txns never conflict anyone
            self._commit_window[tid] = entry


class SSICommitValidator(CommitValidator):
    """Serializable snapshot isolation, commit-time approximation.

    Cahill/Fekete SSI aborts a transaction involved in a *dangerous
    structure*: two consecutive rw-antidependency edges between
    concurrent transactions.  Lacking in-flight read tracking, this
    validator approximates at commit time against the recent-commit
    window:

    * ``out_to``  -- concurrent committed transactions that *wrote* a key
      the committer read (the committer has an outgoing rw edge).
    * ``in_from`` -- concurrent committed transactions that *read* a key
      the committer writes (the committer has an incoming rw edge).

    The committer aborts if it would be the pivot (both an incoming and
    an outgoing edge) or if any ``out_to`` transaction already had an
    outgoing edge of its own (the committer completes someone else's
    dangerous structure).  On admit, every ``in_from`` entry is
    retroactively flagged ``out_rw`` -- its outgoing edge now provably
    exists -- and the committer registers with its own flag.

    The approximation is conservative for write-heavy anomalies (it
    eliminates write skew, which the sanitizer's dependency-graph oracle
    confirms) but does not certify read-only participants; see
    ``docs/isolation.md`` for the precise guarantee.
    """

    mode = "ssi"

    def _check(self, tid: int, snapshot: Any,
               entry: _WindowEntry) -> ValidationVerdict:
        if not entry.write_keys:
            return _ADMIT
        reads, writes = entry.read_keys, entry.write_keys
        out_to = []
        in_from = []
        for ctid, committed in self._concurrent(tid, snapshot):
            if committed.write_keys & reads:
                out_to.append((ctid, committed))
            if committed.read_keys & writes:
                in_from.append((ctid, committed))
        if out_to and in_from:
            return ValidationVerdict(
                False,
                f"pivot in a dangerous structure (rw in from "
                f"{in_from[0][0]}, rw out to {out_to[0][0]})",
                conflict_tid=out_to[0][0],
            )
        for ctid, committed in out_to:
            if committed.out_rw:
                return ValidationVerdict(
                    False,
                    f"closes dangerous structure through pivot {ctid}",
                    conflict_tid=ctid,
                )
        entry.out_rw = bool(out_to)
        for _ctid, committed in in_from:
            committed.out_rw = True
        return _ADMIT

    def _register(self, tid: int, snapshot: Any, entry: _WindowEntry) -> None:
        # Unlike WSI, read-only commits matter: a later writer overlapping
        # this read set gains an *incoming* rw edge.  Register writers and
        # readers alike.
        self._commit_window[tid] = entry
