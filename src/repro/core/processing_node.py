"""Processing nodes (PNs): where queries run and transactions live.

A PN is stateless with respect to the database content -- it holds only
soft state (buffer caches, rid ranges) and can therefore be added or
removed at any time, which is the architecture's elasticity story.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, Optional

from repro import effects
from repro.core.buffers import BufferingStrategy, TransactionBuffer
from repro.core.isolation import DEFAULT_PROTOCOL, IsolationProtocol
from repro.core.spaces import META_SPACE, rid_counter_key
from repro.core.transaction import Transaction
from repro.core.txlog import TransactionLog
from repro.errors import TransactionAborted


class PnStats:
    """Per-node commit/abort counters."""

    __slots__ = ("committed", "aborted", "begun")

    def __init__(self) -> None:
        self.committed = 0
        self.aborted = 0
        self.begun = 0

    @property
    def abort_rate(self) -> float:
        finished = self.committed + self.aborted
        return self.aborted / finished if finished else 0.0


class ProcessingNode:
    """One database instance of the processing layer."""

    def __init__(
        self,
        pn_id: int,
        buffers: Optional[BufferingStrategy] = None,
        clock: Optional[Callable[[], float]] = None,
        rid_range_size: int = 1024,
        protocol: Optional[IsolationProtocol] = None,
    ):
        self.pn_id = pn_id
        self.buffers: BufferingStrategy = (
            buffers if buffers is not None else TransactionBuffer()
        )
        # Isolation protocol shared by every transaction on this node
        # (stateless; see repro.core.isolation).
        self.protocol: IsolationProtocol = (
            protocol if protocol is not None else DEFAULT_PROTOCOL
        )
        self.txlog = TransactionLog()
        self._clock = clock
        self._logical_time = 0.0
        self.rid_range_size = rid_range_size
        # table_id -> [next_rid, range_end]
        self._rid_ranges: Dict[int, list] = {}
        self.stats = PnStats()
        # repro.obs hub, attached by an observability-enabled deployment;
        # None keeps every instrumentation site a single attribute check.
        self.obs = None

    def now(self) -> float:
        if self._clock is not None:
            return self._clock()
        self._logical_time += 1.0
        return self._logical_time

    # -- transactions -----------------------------------------------------------

    def begin(self) -> Generator:
        """Start a transaction: one round trip to the commit manager."""
        obs = self.obs
        if obs is None:
            start = yield effects.StartTransaction()
            self.buffers.observe_snapshot(start.snapshot)
            self.stats.begun += 1
            return Transaction(self, start)
        root = obs.tracer.start_span("txn")
        root.attrs["pn"] = self.pn_id
        snapshot_child = root.child("snapshot", start_us=root.start_us)
        start = yield effects.StartTransaction()
        snapshot_child.finish()
        root.attrs["tid"] = start.tid
        self.buffers.observe_snapshot(start.snapshot)
        self.stats.begun += 1
        txn = Transaction(self, start)
        txn.span = root
        return txn

    def run_transaction(
        self, logic: Callable[[Transaction], Generator], max_attempts: int = 1
    ) -> Generator:
        """Begin/execute/commit ``logic``; optionally retry on conflict.

        Returns ``(result, attempts)``.  Raises the final
        :class:`TransactionAborted` when every attempt conflicts.
        """
        attempts = 0
        while True:
            attempts += 1
            txn = yield from self.begin()
            try:
                result = yield from logic(txn)
                yield from txn.commit()
                self.stats.committed += 1
                return result, attempts
            except TransactionAborted:
                self.stats.aborted += 1
                if attempts >= max_attempts:
                    raise

    # -- rid allocation -----------------------------------------------------------

    def allocate_rid(self, table_id: int) -> Generator:
        """Hand out a fresh record id, refilling ranges from the shared
        counter the way commit managers refill tid ranges."""
        state = self._rid_ranges.get(table_id)
        if state is None or state[0] > state[1]:
            top = yield effects.Increment(
                META_SPACE, rid_counter_key(table_id), self.rid_range_size
            )
            state = [top - self.rid_range_size + 1, top]
            self._rid_ranges[table_id] = state
        rid = state[0]
        state[0] += 1
        return rid

    def __repr__(self) -> str:
        return f"<ProcessingNode {self.pn_id} buffers={self.buffers.name}>"
