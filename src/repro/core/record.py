"""Multi-version records stored as single key-value pairs (Section 5.1).

Every relational row is one key-value pair: the key is the record id
(rid), the value a serialized set of all versions of the record.  One read
fetches every version; one conditional write applies an update *and*
detects conflicts.  This is the paper's central storage-granularity
decision ("minimize network requests over network traffic").

Records are immutable: transactions build new record values and install
them with LL/SC, so a record object can safely live in shared buffers and
in the store at the same time.

Storage layout: a record keeps its versions as two parallel tuples --
``tids`` and ``payloads``, both newest first -- so the visibility scan and
GC walk flat memory instead of chasing one ``Version`` object per entry.
The slab layout is an implementation detail: the public API (``versions``,
``latest_visible``, ``with_version``, ...) is unchanged, and ``versions``
materializes :class:`Version` wrappers lazily for the sanitizers, tests,
and ``repr``.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from repro.core.snapshot import SnapshotDescriptor
from repro.errors import InvalidState
from repro.store.cell import approx_size


class _Tombstone:
    """Sentinel payload marking a deleted version."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "TOMBSTONE"


TOMBSTONE = _Tombstone()


class Version:
    """One version of a record: the creating tid and the row payload.

    ``payload`` is a tuple of column values, or :data:`TOMBSTONE` when the
    version represents a deletion.
    """

    __slots__ = ("tid", "payload", "_size")

    def __init__(self, tid: int, payload):
        self.tid = tid
        self.payload = payload
        self._size = -1

    @property
    def is_tombstone(self) -> bool:
        return self.payload is TOMBSTONE

    def approx_size(self) -> int:
        # Memoized: versions are immutable and sized on every store write.
        if self._size < 0:
            self._size = 8 + (
                1 if self.is_tombstone else approx_size(self.payload)
            )
        return self._size

    def __repr__(self) -> str:
        return f"Version(v{self.tid}, {self.payload!r})"


class VersionedRecord:
    """An immutable set of versions, newest first.

    ``tids`` and ``payloads`` are the parallel slab tuples (read-only;
    never mutate them).  Hot readers use :meth:`visible_index` plus a
    direct ``payloads[index]`` load; everything else goes through the
    Version-object API below.
    """

    __slots__ = ("tids", "payloads", "_size", "_versions")

    def __init__(self, versions: Iterable[Version]):
        ordered = sorted(versions, key=lambda version: version.tid, reverse=True)
        self.tids = tuple(version.tid for version in ordered)
        self.payloads = tuple(version.payload for version in ordered)
        self._size = -1
        self._versions = None

    @classmethod
    def _from_slabs(
        cls, tids: Tuple[int, ...], payloads: Tuple[object, ...]
    ) -> "VersionedRecord":
        """Internal: wrap already newest-first parallel tuples."""
        record = object.__new__(cls)
        record.tids = tids
        record.payloads = payloads
        record._size = -1
        record._versions = None
        return record

    @classmethod
    def _from_sorted(cls, versions: Tuple[Version, ...]) -> "VersionedRecord":
        """Internal: wrap an already newest-first Version tuple."""
        record = cls._from_slabs(
            tuple(version.tid for version in versions),
            tuple(version.payload for version in versions),
        )
        record._versions = tuple(versions)
        return record

    @classmethod
    def initial(cls, tid: int, payload) -> "VersionedRecord":
        return cls._from_slabs((tid,), (payload,))

    # -- reads -----------------------------------------------------------------

    @property
    def versions(self) -> Tuple[Version, ...]:
        """Version-object view of the slabs, materialized once on demand."""
        cached = self._versions
        if cached is None:
            cached = tuple(
                Version(tid, payload)
                for tid, payload in zip(self.tids, self.payloads)
            )
            self._versions = cached
        return cached

    def version_numbers(self) -> Tuple[int, ...]:
        return self.tids

    def visible_index(self, snapshot: SnapshotDescriptor) -> int:
        """Index into ``tids``/``payloads`` of the version the snapshot
        reads, or ``-1`` when nothing is visible (Section 4.2).

        This is the zero-allocation core of :meth:`latest_visible`; the
        hot read paths call it directly and index ``payloads``.
        """
        tids = self.tids
        if not tids:
            return -1
        base = snapshot.base
        if tids[0] <= base:
            # Short-circuit: the newest version predates the snapshot base,
            # so it is visible and by ordering it is the maximum.
            return 0
        bits = snapshot.bits
        index = 0
        for tid in tids:
            if tid <= base or bits >> (tid - base - 1) & 1:
                return index
            index += 1
        return -1

    def visible_payload(self, snapshot: SnapshotDescriptor) -> Optional[object]:
        """The payload the snapshot reads, or ``None`` when nothing is
        visible *or* the visible version is a tombstone.

        Zero-allocation companion to :meth:`latest_visible` for callers
        that only want live row data (reads, scans); callers that must
        distinguish "deleted" from "absent" use ``visible_index`` or
        ``latest_visible`` instead.
        """
        # visible_index, manually inlined: this is the per-read hot path.
        tids = self.tids
        if not tids:
            return None
        base = snapshot.base
        if tids[0] <= base:
            payload = self.payloads[0]
            return None if payload is TOMBSTONE else payload
        bits = snapshot.bits
        index = 0
        for tid in tids:
            if tid <= base or bits >> (tid - base - 1) & 1:
                payload = self.payloads[index]
                return None if payload is TOMBSTONE else payload
            index += 1
        return None

    def latest_visible(self, snapshot: SnapshotDescriptor) -> Optional[Version]:
        """The version the snapshot reads: max visible tid (Section 4.2).

        Returns ``None`` when no version is visible; a visible tombstone is
        returned as-is (callers treat it as "record deleted").
        """
        # visible_index, manually inlined; serves from the memoized
        # Version view, so repeated reads of an immutable record return
        # the same wrapper object, alloc-free.
        tids = self.tids
        if not tids:
            return None
        base = snapshot.base
        if tids[0] <= base:
            versions = self._versions
            return versions[0] if versions is not None else self.versions[0]
        bits = snapshot.bits
        index = 0
        for tid in tids:
            if tid <= base or bits >> (tid - base - 1) & 1:
                versions = self._versions
                if versions is None:
                    versions = self.versions
                return versions[index]
            index += 1
        return None

    def get(self, tid: int) -> Optional[Version]:
        try:
            index = self.tids.index(tid)
        except ValueError:
            return None
        return self.versions[index]

    @property
    def newest_tid(self) -> int:
        tids = self.tids
        return tids[0] if tids else 0

    def payload_of(self, tid: int) -> Optional[object]:
        """Read-only payload lookup by creating tid (None when absent).

        Observational accessor for the sanitizers: returns the payload
        object itself (records are immutable, so sharing is safe) without
        exposing the Version wrapper.
        """
        try:
            index = self.tids.index(tid)
        except ValueError:
            return None
        return self.payloads[index]

    # -- writes (all return new records) -------------------------------------------

    def with_version(self, version: Version) -> "VersionedRecord":
        """Insert ``version`` into the (already sorted) slabs.

        A single scan finds the insertion point -- usually index 0, since
        new versions almost always carry the highest tid -- instead of
        re-sorting the whole set on every write.
        """
        tid = version.tid
        tids = self.tids
        index = len(tids)
        for position, existing in enumerate(tids):  # newest first
            if existing == tid:
                raise InvalidState(f"record already has version {tid}")
            if existing < tid:
                index = position
                break
        return VersionedRecord._from_slabs(
            tids[:index] + (tid,) + tids[index:],
            self.payloads[:index] + (version.payload,) + self.payloads[index:],
        )

    def updated(self, tid: int, payload, lav: int) -> "VersionedRecord":
        """``collect_garbage(lav)`` + prepend of a new newest version, fused.

        The commit path installs exactly this shape -- the new tid is a
        fresh commit timestamp, so it exceeds every existing tid -- and
        the fused form builds the surviving slabs in one pass instead of
        allocating an intermediate record.  Falls back to the two-step
        path when the tid is not the newest (which also raises on
        duplicates, matching :meth:`with_version`).

        Like :meth:`collect_garbage`, the set of dropped versions is
        defined by :meth:`collectable_versions` -- the G-set definition
        stays the single (test-mutable) source of truth.
        """
        tids = self.tids
        if tids and tids[0] >= tid:
            return self.collect_garbage(lav).with_version(Version(tid, payload))
        garbage = self.collectable_versions(lav)
        if not garbage:
            return VersionedRecord._from_slabs(
                (tid,) + tids, (payload,) + self.payloads
            )
        drop = set(garbage)
        payloads = self.payloads
        new_tids = [tid]
        new_payloads = [payload]
        for position, existing in enumerate(tids):
            if existing not in drop:
                new_tids.append(existing)
                new_payloads.append(payloads[position])
        return VersionedRecord._from_slabs(tuple(new_tids), tuple(new_payloads))

    def without_version(self, tid: int) -> "VersionedRecord":
        try:
            index = self.tids.index(tid)
        except ValueError:
            return self
        return VersionedRecord._from_slabs(
            self.tids[:index] + self.tids[index + 1:],
            self.payloads[:index] + self.payloads[index + 1:],
        )

    # -- garbage collection (Section 5.4) --------------------------------------------

    def collectable_versions(self, lav: int) -> List[int]:
        """G = { x ∈ C | x != max(C) } with C = { x ∈ V | x <= lav }.

        The newest globally-visible version always survives so at least
        one version of the record remains.
        """
        candidates = [tid for tid in self.tids if tid <= lav]
        if len(candidates) <= 1:
            return []
        return candidates[1:]  # newest first: candidates[0] == max(C)

    def collect_garbage(self, lav: int) -> "VersionedRecord":
        """Drop every version in G; may return ``self`` unchanged.

        G comes from :meth:`collectable_versions` so a (deliberately)
        broken G-set definition propagates here -- the GC sanitizer's
        seeded-mutation tests rely on that coupling.
        """
        garbage = self.collectable_versions(lav)
        if not garbage:
            return self
        drop = set(garbage)
        tids = self.tids
        payloads = self.payloads
        keep_tids = []
        keep_payloads = []
        for position, existing in enumerate(tids):
            if existing not in drop:
                keep_tids.append(existing)
                keep_payloads.append(payloads[position])
        return VersionedRecord._from_slabs(tuple(keep_tids), tuple(keep_payloads))

    def fully_deleted(self, lav: int) -> bool:
        """True when the record is just a tombstone no snapshot older than
        ``lav`` can resurrect -- the cell itself may then be removed."""
        live = self.collect_garbage(lav)
        tombstone = TOMBSTONE
        return all(payload is tombstone for payload in live.payloads)

    # -- sizing -----------------------------------------------------------------

    def approx_size(self) -> int:
        if self._size < 0:
            total = 8
            for payload in self.payloads:
                # 8 per version header, +1 for a tombstone marker or the
                # serialized payload (same arithmetic as Version.approx_size).
                total += 9 if payload is TOMBSTONE else 8 + approx_size(payload)
            self._size = total
        return self._size

    def __len__(self) -> int:
        return len(self.tids)

    def __repr__(self) -> str:
        return f"VersionedRecord({list(self.versions)!r})"
