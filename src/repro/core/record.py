"""Multi-version records stored as single key-value pairs (Section 5.1).

Every relational row is one key-value pair: the key is the record id
(rid), the value a serialized set of all versions of the record.  One read
fetches every version; one conditional write applies an update *and*
detects conflicts.  This is the paper's central storage-granularity
decision ("minimize network requests over network traffic").

Records are immutable: transactions build new record values and install
them with LL/SC, so a record object can safely live in shared buffers and
in the store at the same time.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from repro.core.snapshot import SnapshotDescriptor
from repro.errors import InvalidState
from repro.store.cell import approx_size


class _Tombstone:
    """Sentinel payload marking a deleted version."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "TOMBSTONE"


TOMBSTONE = _Tombstone()


class Version:
    """One version of a record: the creating tid and the row payload.

    ``payload`` is a tuple of column values, or :data:`TOMBSTONE` when the
    version represents a deletion.
    """

    __slots__ = ("tid", "payload", "_size")

    def __init__(self, tid: int, payload):
        self.tid = tid
        self.payload = payload
        self._size = -1

    @property
    def is_tombstone(self) -> bool:
        return self.payload is TOMBSTONE

    def approx_size(self) -> int:
        # Memoized: versions are immutable and sized on every store write.
        if self._size < 0:
            self._size = 8 + (
                1 if self.is_tombstone else approx_size(self.payload)
            )
        return self._size

    def __repr__(self) -> str:
        return f"Version(v{self.tid}, {self.payload!r})"


class VersionedRecord:
    """An immutable set of versions, newest first."""

    __slots__ = ("versions", "_size")

    def __init__(self, versions: Iterable[Version]):
        ordered = sorted(versions, key=lambda version: version.tid, reverse=True)
        self.versions = tuple(ordered)
        self._size = -1

    @classmethod
    def _from_sorted(cls, versions: Tuple[Version, ...]) -> "VersionedRecord":
        """Internal: wrap an already newest-first tuple without re-sorting."""
        record = object.__new__(cls)
        record.versions = versions
        record._size = -1
        return record

    @classmethod
    def initial(cls, tid: int, payload) -> "VersionedRecord":
        return cls._from_sorted((Version(tid, payload),))

    # -- reads -----------------------------------------------------------------

    def version_numbers(self) -> Tuple[int, ...]:
        return tuple(version.tid for version in self.versions)

    def latest_visible(self, snapshot: SnapshotDescriptor) -> Optional[Version]:
        """The version the snapshot reads: max visible tid (Section 4.2).

        Returns ``None`` when no version is visible; a visible tombstone is
        returned as-is (callers treat it as "record deleted").
        """
        versions = self.versions
        if not versions:
            return None
        base = snapshot.base
        newest = versions[0]  # newest first
        if newest.tid <= base:
            # Short-circuit: the newest version predates the snapshot base,
            # so it is visible and by ordering it is the maximum.
            return newest
        bits = snapshot.bits
        for version in versions:
            tid = version.tid
            if tid <= base or bits >> (tid - base - 1) & 1:
                return version
        return None

    def get(self, tid: int) -> Optional[Version]:
        for version in self.versions:
            if version.tid == tid:
                return version
        return None

    @property
    def newest_tid(self) -> int:
        return self.versions[0].tid if self.versions else 0

    def payload_of(self, tid: int) -> Optional[object]:
        """Read-only payload lookup by creating tid (None when absent).

        Observational accessor for the sanitizers: returns the payload
        object itself (records are immutable, so sharing is safe) without
        exposing the Version wrapper.
        """
        for version in self.versions:
            if version.tid == tid:
                return version.payload
        return None

    # -- writes (all return new records) -------------------------------------------

    def with_version(self, version: Version) -> "VersionedRecord":
        """Insert ``version`` into the (already sorted) version tuple.

        A single scan finds the insertion point -- usually index 0, since
        new versions almost always carry the highest tid -- instead of
        re-sorting the whole set on every write.
        """
        tid = version.tid
        versions = self.versions
        index = len(versions)
        for position, existing in enumerate(versions):  # newest first
            if existing.tid == tid:
                raise InvalidState(f"record already has version {tid}")
            if existing.tid < tid:
                index = position
                break
        return VersionedRecord._from_sorted(
            versions[:index] + (version,) + versions[index:]
        )

    def without_version(self, tid: int) -> "VersionedRecord":
        remaining = tuple(v for v in self.versions if v.tid != tid)
        return VersionedRecord._from_sorted(remaining)

    # -- garbage collection (Section 5.4) --------------------------------------------

    def collectable_versions(self, lav: int) -> List[int]:
        """G = { x ∈ C | x != max(C) } with C = { x ∈ V | x <= lav }.

        The newest globally-visible version always survives so at least
        one version of the record remains.
        """
        candidates = [v.tid for v in self.versions if v.tid <= lav]
        if len(candidates) <= 1:
            return []
        newest = max(candidates)
        return [tid for tid in candidates if tid != newest]

    def collect_garbage(self, lav: int) -> "VersionedRecord":
        """Drop every version in G; may return ``self`` unchanged."""
        garbage = set(self.collectable_versions(lav))
        if not garbage:
            return self
        return VersionedRecord._from_sorted(
            tuple(v for v in self.versions if v.tid not in garbage)
        )

    def fully_deleted(self, lav: int) -> bool:
        """True when the record is just a tombstone no snapshot older than
        ``lav`` can resurrect -- the cell itself may then be removed."""
        live = self.collect_garbage(lav)
        return all(v.is_tombstone for v in live.versions)

    # -- sizing -----------------------------------------------------------------

    def approx_size(self) -> int:
        if self._size < 0:
            self._size = 8 + sum(v.approx_size() for v in self.versions)
        return self._size

    def __len__(self) -> int:
        return len(self.versions)

    def __repr__(self) -> str:
        return f"VersionedRecord({list(self.versions)!r})"
