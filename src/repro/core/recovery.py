"""Recovery of failed processing nodes (Section 4.4.1).

Processing nodes are crash-stop: when one fails, every transaction it had
in flight must be aborted, and transactions that were mid-commit (updates
partially applied) must be reverted.  The transaction log holds enough
information to do so: the write set identifies the records, and removing
the version numbered ``tid`` from each of them undoes the transaction.

Two discovery strategies are provided:

* :func:`recover_processing_node` asks the commit managers which tids the
  failed node had active (the managers track the owning PN per tid);
* :func:`discover_from_log` implements the paper's fallback of iterating
  the log backwards from the highest assigned tid down to the lav, which
  works even when commit-manager state was lost too.
"""

from __future__ import annotations

from typing import Any, Generator, Iterable, List

from repro import effects
from repro.core.commit_manager import CommitManager
from repro.core.spaces import DATA_SPACE
from repro.core.txlog import STATUS_ABORTED, LogEntry, TransactionLog


def rollback_entry(entry: LogEntry, txlog: TransactionLog) -> Generator:
    """Revert every record version written by ``entry``'s transaction."""
    for key in entry.write_set:
        yield from _remove_version(key, entry.tid)
    yield from txlog.set_status(entry, STATUS_ABORTED)


def _remove_version(key: Any, tid: int) -> Generator:
    """LL/SC loop removing version ``tid`` from the record at ``key``."""
    while True:
        value, cell_version = yield effects.Get(DATA_SPACE, key)
        if value is None or value.get(tid) is None:
            return
        remaining = value.without_version(tid)
        if len(remaining) == 0:
            ok, _ = yield effects.DeleteIfVersion(DATA_SPACE, key, cell_version)
        else:
            ok, _ = yield effects.PutIfVersion(
                DATA_SPACE, key, remaining, cell_version
            )
        if ok:
            return


def recover_processing_node(
    pn_id: int,
    commit_managers: List[CommitManager],
    txlog: TransactionLog,
) -> Generator:
    """Roll back every in-flight transaction of the failed node.

    The management node runs exactly one recovery process at a time; a
    single invocation can cover several failed nodes by being called per
    node while the recovery lock is held.  Returns the list of rolled-back
    tids.
    """
    active_tids: List[int] = []
    for manager in commit_managers:
        active_tids.extend(manager.active_tids_of(pn_id))
    rolled_back = yield from _rollback_tids(active_tids, pn_id, txlog)
    # Completing the tids lets the global base version advance again.
    # Recovery addresses *every* commit manager on the dead node's
    # behalf, not the caller's own CM binding, so it cannot go through
    # the dispatcher's single-CM effect.
    for manager in commit_managers:
        for tid in active_tids:
            manager.set_aborted(tid)  # repro-lint: ignore[RL008]
    return rolled_back


def discover_from_log(
    pn_id: int,
    highest_tid: int,
    lav: int,
    txlog: TransactionLog,
) -> Generator:
    """Paper's discovery walk: iterate the log backwards until the lav.

    The lav acts as a rolling checkpoint -- transactions at or below it
    have completed, so nothing older needs inspection.  Returns the tids
    that required rollback.
    """
    candidates = list(range(highest_tid, lav, -1))
    return (yield from _rollback_tids(candidates, pn_id, txlog))


def _rollback_tids(
    tids: Iterable[int], pn_id: int, txlog: TransactionLog
) -> Generator:
    ordered = sorted(tids, reverse=True)
    rolled_back: List[int] = []
    batch = 128
    for i in range(0, len(ordered), batch):
        entries = yield from txlog.get_many(ordered[i : i + batch])
        for tid in ordered[i : i + batch]:
            entry = entries.get(tid)
            if entry is None:
                continue  # never reached Try-Commit: nothing was applied
            if entry.pn_id != pn_id or entry.status != "active":
                continue
            yield from rollback_entry(entry, txlog)
            rolled_back.append(tid)
    return rolled_back
