"""Snapshot descriptors and the committed-transaction set (Section 4.2).

A snapshot descriptor consists of a *base version* ``b`` -- meaning ``b``
and every earlier transaction has completed -- and a set ``N`` of newly
completed tids greater than ``b + 1``.  ``N`` is a bitset: bit ``i``
represents tid ``b + 1 + i``.  When ``b + 1`` completes, the base advances
until the next incomplete tid.

The valid version number set a transaction may access is::

    V* = { x | x <= b  or  x in N }

and a read returns the version ``v = max(V ∩ V*)`` of the record's version
set ``V``.

Aborted transactions also enter the set: their versions are physically
removed from the store *before* the commit manager is notified, so
treating them as "completed" is safe and keeps the base advancing.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Tuple


class SnapshotDescriptor:
    """Immutable snapshot: base version + bitset of newer completed tids."""

    __slots__ = ("base", "bits")

    def __init__(self, base: int = 0, bits: int = 0):
        # Normalize: bit 0 represents base+1; if it is set the base moves.
        # ``~bits & (bits + 1)`` isolates the lowest zero bit, so one
        # bit_length() gives the whole run of trailing ones at once
        # instead of shifting bit by bit.
        if bits & 1:
            run = (~bits & (bits + 1)).bit_length() - 1
            bits >>= run
            base += run
        self.base = base
        self.bits = bits

    # -- membership ---------------------------------------------------------

    def contains(self, tid: int) -> bool:
        """Is ``tid`` visible in this snapshot (tid ∈ V*)?

        The ``tid <= base`` comparison is the O(1) fast exit: in steady
        state almost every version a transaction reads is older than the
        snapshot base, so most calls never touch the bitset.
        """
        base = self.base
        if tid <= base:
            return True
        return bool(self.bits >> (tid - base - 1) & 1)

    __contains__ = contains

    def latest_visible(self, version_numbers: Iterable[int]) -> Optional[int]:
        """max(V ∩ V*) -- the version a transaction reads, or None."""
        base = self.base
        bits = self.bits
        best: Optional[int] = None
        for number in version_numbers:
            if best is None or number > best:
                if number <= base or bits >> (number - base - 1) & 1:
                    best = number
        return best

    # -- algebra --------------------------------------------------------------

    def issubset(self, other: "SnapshotDescriptor") -> bool:
        """True if every tid visible here is visible in ``other``.

        This is the buffer-validity test of Section 5.5.2 (V_tx ⊆ B).
        """
        if self.base > other.base:
            # Our contiguous prefix must be covered by other's bits.
            span = self.base - other.base
            prefix_mask = (1 << span) - 1
            if other.bits & prefix_mask != prefix_mask:
                return False
            shifted_other = other.bits >> span
        else:
            shifted_other = other.bits << (other.base - self.base)
            # tids in (self.base, other.base] are visible in other by base.
            shifted_other |= (1 << (other.base - self.base)) - 1
        return self.bits & ~shifted_other == 0

    def union(self, other: "SnapshotDescriptor") -> "SnapshotDescriptor":
        """Smallest snapshot containing both (used by commit-manager sync).

        Allocates only the result descriptor; mutable folds that need no
        descriptor at all go through :meth:`CommittedSet.merge_snapshot`.
        """
        if self.base >= other.base:
            high, low = self, other
        else:
            high, low = other, self
        merged_bits = low.bits >> (high.base - low.base) | high.bits
        if merged_bits == high.bits:
            return high  # low added nothing: reuse the descriptor
        return SnapshotDescriptor(high.base, merged_bits)

    def with_completed(self, tid: int) -> "SnapshotDescriptor":
        """Snapshot extended by one completed transaction."""
        if tid <= self.base:
            return self
        return SnapshotDescriptor(self.base, self.bits | 1 << (tid - self.base - 1))

    # -- introspection -----------------------------------------------------------

    def as_pair(self) -> Tuple[int, int]:
        """Read-only ``(base, bits)`` view for external observers.

        The sanitizers (:mod:`repro.san`) re-derive visibility from this
        pair with their own bit math, so a bug in :meth:`contains` /
        :meth:`latest_visible` cannot hide from its own checker.
        """
        return (self.base, self.bits)

    def newly_completed(self) -> List[int]:
        """The explicit members of N (completed tids above the base)."""
        out: List[int] = []
        bits = self.bits
        tid = self.base + 1
        while bits:
            if bits & 1:
                out.append(tid)
            bits >>= 1
            tid += 1
        return out

    def approx_size(self) -> int:
        return 16 + self.bits.bit_length() // 8

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, SnapshotDescriptor)
            and self.base == other.base
            and self.bits == other.bits
        )

    def __hash__(self) -> int:
        return hash((self.base, self.bits))

    def __repr__(self) -> str:
        extras = self.newly_completed()
        shown = extras if len(extras) <= 6 else extras[:6] + ["..."]
        return f"Snapshot(base={self.base}, N={shown})"


class TxnStart:
    """What the commit manager returns from start(): (tid, snapshot, lav).

    ``range_refilled`` flags that serving this start required refilling
    the manager's tid range from the store counter; the simulation driver
    charges the extra round trip when it is set.
    """

    __slots__ = ("tid", "snapshot", "lav", "range_refilled")

    def __init__(self, tid: int, snapshot: SnapshotDescriptor, lav: int):
        self.tid = tid
        self.snapshot = snapshot
        self.lav = lav
        self.range_refilled = False

    def __repr__(self) -> str:
        return f"TxnStart(tid={self.tid}, lav={self.lav}, {self.snapshot!r})"


class CommittedSet:
    """Mutable committed-transaction set maintained by a commit manager."""

    __slots__ = ("base", "bits")

    def __init__(self, base: int = 0, bits: int = 0):
        self.base = base
        self.bits = bits
        self._normalize()

    def _normalize(self) -> None:
        bits = self.bits
        if bits & 1:
            # Same trailing-ones trick as SnapshotDescriptor: advance the
            # base over the whole contiguous run in one step.
            run = (~bits & (bits + 1)).bit_length() - 1
            self.bits = bits >> run
            self.base += run

    def mark_completed(self, tid: int) -> None:
        """Record that ``tid`` committed or aborted (mutates in place)."""
        base = self.base
        if tid <= base:
            return
        bits = self.bits | 1 << (tid - base - 1)
        if bits & 1:
            run = (~bits & (bits + 1)).bit_length() - 1
            bits >>= run
            self.base = base + run
        self.bits = bits

    def merge_snapshot(self, snapshot: SnapshotDescriptor) -> None:
        """Fold another commit manager's published view into this set.

        A mutable fold: no intermediate descriptors are allocated, unlike
        ``self.snapshot().union(snapshot)``.
        """
        other_base = snapshot.base
        if self.base >= other_base:
            self.bits |= snapshot.bits >> (self.base - other_base)
        else:
            self.bits = self.bits >> (other_base - self.base) | snapshot.bits
            self.base = other_base
        self._normalize()

    def contains(self, tid: int) -> bool:
        if tid <= self.base:
            return True
        return bool(self.bits >> (tid - self.base - 1) & 1)

    def snapshot(self) -> SnapshotDescriptor:
        return SnapshotDescriptor(self.base, self.bits)

    def __repr__(self) -> str:
        return f"CommittedSet(base={self.base})"
