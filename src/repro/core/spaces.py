"""Names of the storage spaces Tell uses and key constructors.

The storage system is a flat record manager; Tell layers its artifacts
into namespaces ("spaces"):

* ``data``  -- one cell per relational record, key ``(table_id, rid)``;
* ``index`` -- B+tree nodes, key ``(index_id, node_id)``;
* ``txlog`` -- transaction log entries, key ``tid``;
* ``meta``  -- counters (tid, rid), commit-manager state, the catalog;
* ``vset``  -- version-number-set cells for the SBVS buffering strategy,
  key ``(table_id, cache_unit)``.
"""

from __future__ import annotations

from typing import Any, Tuple

DATA_SPACE = "data"
INDEX_SPACE = "index"
LOG_SPACE = "txlog"
META_SPACE = "meta"
VSET_SPACE = "vset"

CATALOG_KEY = ("catalog",)


def data_key(table_id: int, rid: int) -> Tuple[int, int]:
    """Storage key of a record."""
    return (table_id, rid)


def rid_counter_key(table_id: int) -> Tuple[str, Tuple[str, int]]:
    """Meta-space key of a table's rid allocation counter."""
    return ("counter", ("rid", table_id))


def vset_key(table_id: int, rid: int, unit_size: int) -> Tuple[int, int]:
    """Cache-unit key for SBVS buffering: sequential rids share a unit."""
    return (table_id, rid // unit_size)
