"""Transactions: snapshot reads, buffered writes, LL/SC commit.

Implements the life-cycle of Section 4.3:

1. *Begin* -- the PN fetches (tid, snapshot, lav) from the commit manager.
2. *Running* -- reads fetch records from the store (through the PN's
   buffering strategy) and extract the snapshot-visible version; updates
   are buffered on the PN.
3. *Try-Commit* -- a log entry with the write-set is appended, then every
   buffered update is applied with a store-conditional write.  A failed
   LL/SC means a write-write conflict.
4. *Commit* -- indexes are updated, the commit flag is set in the log, and
   the commit manager is notified.  *Abort* -- applied updates are rolled
   back, then the commit manager is notified.

The Try-Commit sequence itself lives with the processing node's
:class:`~repro.core.isolation.IsolationProtocol` (``commit()`` delegates
to it): snapshot isolation runs exactly the pipeline above, while the
read-validating protocols (WSI/SSI) capture read keys through the hooks
in the read paths below and insert a validation stage before the first
update is applied.

All store-touching methods are generator coroutines.

Typestate contract (checked by ``repro-lint --atomic``, RA004/RA005):
a transaction is linear -- begin, uses, then exactly one finish
(``commit``/``abort``/a ``state = TxnState.ABORTED|COMMITTED`` write),
and every abort path must ``yield effects.ReportAborted(tid)`` so the
commit manager can advance LAV past the tid.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Any, Dict, Generator, List, Optional, Tuple

from repro import effects
from repro.core.record import TOMBSTONE, VersionedRecord
from repro.core.snapshot import TxnStart
from repro.core.spaces import DATA_SPACE
from repro.core.txlog import (
    STATUS_ABORTED,
    LogEntry,
)
from repro.errors import (
    InvalidState,
    KeyNotFound,
    TransactionAborted,
)

if TYPE_CHECKING:  # import cycle: processing_node constructs Transaction
    from repro.core.processing_node import ProcessingNode


class TxnState(enum.Enum):
    RUNNING = "running"
    TRY_COMMIT = "try-commit"
    COMMITTED = "committed"
    ABORTED = "aborted"


class Transaction:
    """One transaction executing on a processing node."""

    def __init__(self, pn: "ProcessingNode", start: TxnStart):
        self.pn = pn
        self.tid = start.tid
        self.snapshot = start.snapshot
        self.lav = start.lav
        self.state = TxnState.RUNNING
        # private transaction buffer: key -> (record-or-None, cell_version)
        self._cache: Dict[Any, Tuple[Optional[VersionedRecord], int]] = {}
        # buffered updates: key -> payload (TOMBSTONE for deletes)
        self._writes: Dict[Any, Any] = {}
        self._inserted: set = set()
        # pending index maintenance, filled by the relational layer:
        # ("insert"|"delete", btree, index_key, rid, unique)
        self.index_ops: List[Tuple] = []
        self.start_time = pn.now()
        # repro.obs root span; stays None unless the deployment enabled
        # observability.  Carried explicitly (no ambient span stack --
        # simulated coroutines interleave at every yield).
        self.span = None
        self.protocol = pn.protocol
        self.protocol.attach(self)

    # -- reads ------------------------------------------------------------------

    def read(self, key: Any) -> Generator:
        """Read one record; returns the visible payload tuple or None."""
        payloads = yield from self.read_many([key])
        return payloads[key]

    def read_many(self, keys: List[Any]) -> Generator:
        """Batched read; returns ``{key: payload-or-None}``."""
        self._require(TxnState.RUNNING)
        result: Dict[Any, Any] = {}
        to_fetch: List[Any] = []
        seen = set()
        for key in keys:
            if key in self._writes:
                payload = self._writes[key]
                result[key] = None if payload is TOMBSTONE else payload
            elif key in self._cache:
                result[key] = self._visible_payload(key)
            elif key not in seen:
                seen.add(key)
                to_fetch.append(key)
        if to_fetch:
            yield from self._fetch(to_fetch)
            for key in to_fetch:
                result[key] = self._visible_payload(key)
        protocol = self.protocol
        if protocol.tracks_reads:
            protocol.note_reads(self, keys)
        return result

    def read_for_update(self, key: Any) -> Generator:
        """SELECT FOR UPDATE: read a record and *materialize* the read as
        a write of the unchanged payload.

        Under snapshot isolation, concurrent transactions that both only
        read an item never conflict, which permits write skew (see
        Section 4.1: SI is not serializable).  Re-writing the read value
        turns the read into a member of the write set, so any concurrent
        writer -- or concurrent for-update reader -- conflicts at commit.
        This is the classic conflict-materialization fix applications use
        to close SI's serializability gaps selectively.

        A *missing* key is materialized as a tombstone write: the commit
        will issue a store-conditional create-at-version-0 for it, so two
        concurrent FOR UPDATE readers of the same absent key conflict
        exactly like two readers of a present one (previously the read
        silently degraded to a plain read and both could proceed).  The
        tombstone keeps the key absent for later reads in this
        transaction and commits as a no-op delete version.
        """
        payload = yield from self.read(key)
        if key not in self._writes:
            self._writes[key] = payload if payload is not None else TOMBSTONE
        return payload

    def _fetch(self, keys: List[Any]) -> Generator:
        span = self.span
        read_child = span.child("read") if span is not None else None
        fetched = yield from self.pn.buffers.read_records(self.snapshot, keys)
        if read_child is not None:
            read_child.finish()
        for key, (record, cell_version) in fetched.items():
            self._cache[key] = (record, cell_version)

    def _visible_payload(self, key: Any) -> Optional[Any]:
        record, _cell_version = self._cache[key]
        if record is None:
            return None
        return record.visible_payload(self.snapshot)

    # -- writes (buffered until commit) ----------------------------------------------

    def insert(self, key: Any, payload: Any) -> None:
        """Insert a record at a fresh key (rid allocated by the PN)."""
        self._require(TxnState.RUNNING)
        if key in self._writes and self._writes[key] is not TOMBSTONE:
            raise InvalidState(f"key {key!r} already written in this transaction")
        self._writes[key] = payload
        self._inserted.add(key)

    def update(self, key: Any, payload: Any) -> Generator:
        """Replace the visible version of ``key`` with ``payload``."""
        self._require(TxnState.RUNNING)
        if key in self._inserted or key in self._writes:
            self._writes[key] = payload
            return
        yield from self._ensure_updatable(key)
        self._writes[key] = payload

    def delete(self, key: Any) -> Generator:
        """Delete the record (writes a tombstone version)."""
        self._require(TxnState.RUNNING)
        if key in self._inserted:
            self._inserted.discard(key)
            del self._writes[key]
            return
        yield from self._ensure_updatable(key)
        self._writes[key] = TOMBSTONE

    def _ensure_updatable(self, key: Any) -> Generator:
        if key not in self._cache:
            yield from self._fetch([key])
        if self._visible_payload(key) is None:
            raise KeyNotFound(f"no visible version of {key!r} to update")

    # -- commit / abort -----------------------------------------------------------

    @property
    def write_set(self) -> Tuple[Any, ...]:
        return tuple(self._writes.keys())

    def local_writes(self) -> Dict[Any, Any]:
        """This transaction's buffered writes: key -> payload/TOMBSTONE.

        Access paths (table scans, index lookups) merge these in so a
        transaction reads its own uncommitted writes.
        """
        return dict(self._writes)

    @property
    def tracks_reads(self) -> bool:
        """True when the isolation protocol captures read keys (access
        paths outside the core read methods -- e.g. table scans -- must
        then report observed keys via :meth:`note_scanned`)."""
        return self.protocol.tracks_reads

    def note_scanned(self, keys: List[Any]) -> None:
        """Report keys observed by a scan to the isolation protocol."""
        self.protocol.note_scanned(self, keys)

    def commit(self) -> Generator:
        """Run Try-Commit; raises :class:`TransactionAborted` on conflict.

        The pipeline itself belongs to the processing node's isolation
        protocol (:mod:`repro.core.isolation`): SI runs the historical
        sequence unchanged, WSI/SSI insert a validation stage after the
        log append.  Returns the protocol's generator directly (rather
        than delegating with ``yield from``) so the strategy indirection
        adds no frame to the hot commit path.
        """
        self._require(TxnState.RUNNING)
        return self.protocol.commit(self)

    def abort(self) -> Generator:
        """Manual abort: nothing was applied, just notify the manager."""
        self._require(TxnState.RUNNING)
        self.state = TxnState.ABORTED
        span = self.span
        abort_child = span.child("abort") if span is not None else None
        yield effects.ReportAborted(self.tid)
        if abort_child is not None:
            abort_child.finish()
        self._finish_span("user_abort")

    # -- commit internals ------------------------------------------------------------

    def _build_apply_ops(self):
        """Construct the LL/SC puts (with eager version GC, Section 5.4)."""
        puts: List[effects.PutIfVersion] = []
        new_records: Dict[Any, VersionedRecord] = {}
        for key, payload in self._writes.items():
            if key in self._inserted:
                record = VersionedRecord.initial(self.tid, payload)
                expected = 0
            else:
                base_record, expected = self._cache[key]
                if base_record is None:
                    # The record vanished between read and write-buffering;
                    # treat as insert-at-version-0 (LL/SC still protects us).
                    record = VersionedRecord.initial(self.tid, payload)
                else:
                    # Fused eager-GC + install (collect_garbage + with_version
                    # in one slab pass; the tid is a fresh commit timestamp).
                    record = base_record.updated(self.tid, payload, self.lav)
            puts.append(effects.PutIfVersion(DATA_SPACE, key, record, expected))
            new_records[key] = record
        return puts, new_records

    def _apply_index_ops(self) -> Generator:
        for action, btree, index_key, rid, unique in self.index_ops:
            if action == "insert":
                yield from btree.insert(index_key, rid, unique=unique)
            elif action == "delete":
                yield from btree.delete(index_key, rid)
            else:
                raise InvalidState(f"unknown index action {action!r}")

    def _rollback_applied(self, applied_keys: List[Any]) -> Generator:
        """Revert our version from every record we managed to apply.

        Each removal is an LL/SC loop: concurrent writers may touch the
        record between our read and conditional write, in which case we
        simply retry on the fresh copy.
        """
        for key in applied_keys:
            while True:
                value, cell_version = yield effects.Get(DATA_SPACE, key)
                if value is None or value.get(self.tid) is None:
                    break  # already gone (e.g. our insert was GC-removed)
                remaining = value.without_version(self.tid)
                if len(remaining) == 0:
                    ok, _ = yield effects.DeleteIfVersion(
                        DATA_SPACE, key, cell_version
                    )
                else:
                    ok, _ = yield effects.PutIfVersion(
                        DATA_SPACE, key, remaining, cell_version
                    )
                if ok:
                    break
            self.pn.buffers.invalidate(key)

    def _finish_abort(self, entry: LogEntry, reason: str) -> Generator:
        yield from self.pn.txlog.set_status(entry, STATUS_ABORTED)
        self.state = TxnState.ABORTED
        yield effects.ReportAborted(self.tid)
        self._finish_span("conflict")
        raise TransactionAborted(self.tid, reason)

    # -- helpers --------------------------------------------------------------------

    def _finish_span(self, outcome: str) -> None:
        span = self.span
        if span is not None:
            span.attrs["outcome"] = outcome
            span.finish()

    def _require(self, state: TxnState) -> None:
        if self.state is not state:
            raise InvalidState(
                f"transaction {self.tid} is {self.state.value}, needs {state.value}"
            )

    def __repr__(self) -> str:
        return f"<Transaction tid={self.tid} {self.state.value}>"
