"""The shared transaction log (Sections 4.3 / 4.4.1).

Before a transaction applies its updates it appends a log entry -- keyed
by tid, stored in the shared storage system -- containing the processing
node id, a timestamp, and the write set (the storage keys of the updated
records).  After all updates and index changes are applied, a commit flag
is set on the entry.

The log is what makes processing nodes crash-safe: a recovery process can
discover which transactions of a failed node were mid-commit and revert
exactly the versions they wrote.
"""

from __future__ import annotations

from typing import Any, Generator, Iterable, Optional, Tuple

from repro import effects
from repro.store.cell import approx_size

LOG_SPACE = "txlog"

STATUS_ACTIVE = "active"
STATUS_COMMITTED = "committed"
STATUS_ABORTED = "aborted"


class LogEntry:
    """One transaction's log record."""

    __slots__ = ("tid", "pn_id", "timestamp", "write_set", "status")

    def __init__(
        self,
        tid: int,
        pn_id: int,
        timestamp: float,
        write_set: Tuple[Any, ...],
        status: str = STATUS_ACTIVE,
    ):
        self.tid = tid
        self.pn_id = pn_id
        self.timestamp = timestamp
        self.write_set = tuple(write_set)
        self.status = status

    def with_status(self, status: str) -> "LogEntry":
        return LogEntry(self.tid, self.pn_id, self.timestamp, self.write_set, status)

    @property
    def committed(self) -> bool:
        return self.status == STATUS_COMMITTED

    def approx_size(self) -> int:
        return 32 + sum(approx_size(key) for key in self.write_set)

    def __repr__(self) -> str:
        return (
            f"LogEntry(tid={self.tid}, pn={self.pn_id}, "
            f"{len(self.write_set)} writes, {self.status})"
        )


class TransactionLog:
    """Coroutine helpers for reading and writing the log.

    All methods are generators yielding storage requests; run them under a
    driver (direct or simulated).
    """

    def append(self, entry: LogEntry) -> Generator:
        """Write a fresh entry (the Try-Commit prerequisite)."""
        yield effects.Put(LOG_SPACE, entry.tid, entry)

    def set_status(self, entry: LogEntry, status: str) -> Generator:
        """Overwrite the entry with an updated status flag.

        Returns the updated entry.  The caller already holds the entry's
        contents, so this is a single put (no read-modify-write needed).
        """
        updated = entry.with_status(status)
        yield effects.Put(LOG_SPACE, entry.tid, updated)
        return updated

    def get(self, tid: int) -> Generator:
        """Fetch the entry for ``tid``; returns ``None`` when absent."""
        value, _version = yield effects.Get(LOG_SPACE, tid)
        return value

    def get_many(self, tids: Iterable[int]) -> Generator:
        """Batched fetch; returns {tid: entry-or-None}."""
        tid_list = list(tids)
        results = yield effects.multi_get(LOG_SPACE, tid_list)
        return {
            tid: value
            for tid, (value, _version) in zip(tid_list, results)
        }
