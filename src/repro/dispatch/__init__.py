"""The canonical effect-dispatch pipeline.

One classification step (:func:`~repro.dispatch.core.kind_of`), one
middleware protocol (:class:`~repro.dispatch.core.Interceptor`), one
synchronous driver (:class:`~repro.dispatch.direct.Dispatcher`), and the
three production interceptors (tracing, fault injection, retry policy).
See ``docs/dispatch.md`` for the architecture and the interceptor
authoring guide.
"""

from repro.dispatch.core import (
    KIND_BATCH,
    KIND_CM_ABORTED,
    KIND_CM_COMMITTED,
    KIND_CM_START,
    KIND_CM_VALIDATE,
    KIND_COMPUTE,
    KIND_SCAN,
    KIND_SLEEP,
    KIND_STORE,
    ZERO_CLOCK,
    DispatchContext,
    DispatchEnv,
    Interceptor,
    NextFn,
    attach_all,
    compose,
    drive_sync,
    kind_of,
    kind_table,
)
from repro.dispatch.direct import Dispatcher
from repro.dispatch.interceptors import (
    TRACE_SCHEMA,
    CrashPoint,
    FaultInjector,
    FaultRule,
    InjectedCrash,
    RequestTrace,
    RetryPolicy,
    ScheduledFault,
    TraceInterceptor,
    WrongOwnerRedirect,
    kill_storage_node,
    restart_storage_node,
)

__all__ = [
    "KIND_STORE",
    "KIND_BATCH",
    "KIND_SCAN",
    "KIND_CM_START",
    "KIND_CM_COMMITTED",
    "KIND_CM_ABORTED",
    "KIND_CM_VALIDATE",
    "KIND_COMPUTE",
    "KIND_SLEEP",
    "ZERO_CLOCK",
    "DispatchContext",
    "DispatchEnv",
    "Interceptor",
    "NextFn",
    "attach_all",
    "compose",
    "drive_sync",
    "kind_of",
    "kind_table",
    "Dispatcher",
    "TRACE_SCHEMA",
    "RequestTrace",
    "TraceInterceptor",
    "InjectedCrash",
    "FaultRule",
    "ScheduledFault",
    "FaultInjector",
    "CrashPoint",
    "RetryPolicy",
    "WrongOwnerRedirect",
    "kill_storage_node",
    "restart_storage_node",
]
