"""The canonical effect-dispatch core.

Every Tell protocol coroutine communicates with its driver by yielding
:class:`repro.effects.Request` objects.  Historically each driver grew its
own ``isinstance`` ladder to interpret them (the direct Router, the
simulation fabric, the setup-time loader router); this module replaces all
of them with one shared classification step plus one composition rule for
cross-cutting concerns:

* :func:`kind_of` maps a request to a small integer *kind* (single-key
  store op, batch, scan, commit-manager call, local compute/sleep) with a
  one-lookup fast path for the exact effect classes and a caching
  ``isinstance`` fallback for subclasses.  This is the only request
  classification ladder in the repository.
* :class:`Interceptor` is the uniform middleware protocol:
  ``intercept(request, ctx, next)`` written as a generator coroutine that
  delegates with ``result = yield from next(request)``.  The same
  interceptor runs unchanged under the direct runner (yields are resolved
  immediately) and the simulator (yields are Delays/Events charged in
  simulated time).
* :func:`compose` folds an ordered interceptor chain around a terminal
  handler.  An empty chain composes to the handler itself, so the default
  pipeline costs nothing -- the hot paths PR 1 optimized are untouched.

Drivers bind the kinds to their own handlers: the direct
:class:`repro.dispatch.direct.Dispatcher` resolves requests immediately,
while :class:`repro.bench.simcluster.SimFabric` keeps only the timing
model and lets this module own routing.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, List, Optional, Sequence

from repro import effects

#: Request kinds.  ``KIND_STORE``..``KIND_SCAN`` are storage-cluster
#: requests; the CM kinds address the processing node's commit manager;
#: COMPUTE/SLEEP are local effects charged only under simulation.
KIND_STORE = 0
KIND_BATCH = 1
KIND_SCAN = 2
KIND_CM_START = 3
KIND_CM_COMMITTED = 4
KIND_CM_ABORTED = 5
KIND_COMPUTE = 6
KIND_SLEEP = 7
#: Appended after the original kinds so the drivers' range fast paths
#: (``kind <= KIND_SCAN``, ``KIND_CM_START <= kind <= KIND_CM_ABORTED``)
#: keep their exact numeric meaning; only the WSI/SSI protocols yield it.
KIND_CM_VALIDATE = 8

#: Exact-class kind table: one dict lookup covers every effect the
#: protocol actually yields.  Subclasses are classified once by
#: :func:`_classify_slow` and then cached here, so even exotic requests
#: pay the isinstance ladder a single time per class.
_KIND_BY_CLASS: Dict[type, int] = {
    effects.Get: KIND_STORE,
    effects.Put: KIND_STORE,
    effects.PutIfVersion: KIND_STORE,
    effects.Delete: KIND_STORE,
    effects.DeleteIfVersion: KIND_STORE,
    effects.Increment: KIND_STORE,
    effects.Scan: KIND_SCAN,
    effects.Batch: KIND_BATCH,
    effects.StartTransaction: KIND_CM_START,
    effects.ReportCommitted: KIND_CM_COMMITTED,
    effects.ReportAborted: KIND_CM_ABORTED,
    effects.ValidateCommit: KIND_CM_VALIDATE,
    effects.Compute: KIND_COMPUTE,
    effects.Sleep: KIND_SLEEP,
}


def kind_table() -> Dict[type, int]:
    """The live exact-class kind mapping (treat as read-only).

    Hot drivers pre-bind ``kind_table().get`` once and classify each
    request with a single dict lookup, skipping even the
    :func:`kind_of` call.  A miss (``None``/default) means a subclassed
    request: fall back to :func:`kind_of`, which classifies it via the
    isinstance ladder and caches the verdict in this same table.
    """
    return _KIND_BY_CLASS


def _classify_slow(request: effects.Request) -> int:
    """The one isinstance ladder: classify a subclassed request and cache
    the verdict so the next instance takes the exact-class fast path."""
    if isinstance(request, effects.Scan):
        kind = KIND_SCAN
    elif isinstance(request, effects.StoreRequest):
        kind = KIND_STORE
    elif isinstance(request, effects.Batch):
        kind = KIND_BATCH
    elif isinstance(request, effects.StartTransaction):
        kind = KIND_CM_START
    elif isinstance(request, effects.ReportCommitted):
        kind = KIND_CM_COMMITTED
    elif isinstance(request, effects.ReportAborted):
        kind = KIND_CM_ABORTED
    elif isinstance(request, effects.ValidateCommit):
        kind = KIND_CM_VALIDATE
    elif isinstance(request, effects.Compute):
        kind = KIND_COMPUTE
    elif isinstance(request, effects.Sleep):
        kind = KIND_SLEEP
    else:
        raise TypeError(f"unroutable request: {request!r}")
    _KIND_BY_CLASS[request.__class__] = kind
    return kind


def kind_of(request: effects.Request) -> int:
    """Classify ``request`` into one of the ``KIND_*`` constants.

    Raises ``TypeError`` for objects that are not dispatchable requests
    (including unknown :class:`~repro.effects.CommitManagerRequest`
    subclasses, which no driver knows how to serve).
    """
    kind = _KIND_BY_CLASS.get(request.__class__)
    if kind is None:
        return _classify_slow(request)
    return kind


class _ZeroClock:
    """Direct-mode stand-in for the simulator clock: time is not
    modelled, so every read returns 0."""

    __slots__ = ()

    @property
    def now(self) -> float:
        return 0.0


ZERO_CLOCK = _ZeroClock()


class DispatchContext:
    """Per-pipeline state visible to every interceptor.

    ``clock`` exposes ``.now`` in simulated microseconds (always 0 under
    the direct runner); ``engine`` names the driver ("direct", "sim", or
    a baseline engine name) so interceptors can adapt their behaviour.
    """

    __slots__ = ("pn_id", "clock", "engine")

    def __init__(self, pn_id: int = -1, clock: Any = ZERO_CLOCK,
                 engine: str = "direct") -> None:
        self.pn_id = pn_id
        self.clock = clock
        self.engine = engine

    def __repr__(self) -> str:
        return f"DispatchContext(pn_id={self.pn_id}, engine={self.engine!r})"


class DispatchEnv:
    """Deployment-level bindings handed to :meth:`Interceptor.on_attach`.

    Fields are ``None`` when the owning driver does not have the
    component (e.g. ``sim`` under the direct runner).
    """

    __slots__ = ("cluster", "commit_managers", "sim", "metrics", "management")

    def __init__(self, cluster: Any = None,
                 commit_managers: Optional[Sequence[Any]] = None,
                 sim: Any = None, metrics: Any = None,
                 management: Any = None) -> None:
        self.cluster = cluster
        self.commit_managers = list(commit_managers or ())
        self.sim = sim
        self.metrics = metrics
        self.management = management


#: A pipeline stage: called with the request, returns the generator that
#: resolves it (yielding Delays/Events to the driver as needed).
NextFn = Callable[[Any], Generator[Any, Any, Any]]


class Interceptor:
    """Base class for dispatch middleware.

    Subclasses override :meth:`intercept` as a *generator coroutine* and
    delegate to the rest of the pipeline with
    ``result = yield from next(request)``.  They may re-invoke ``next``
    (retries), raise (fault injection), yield extra Delays (latency), or
    record metadata (tracing).  Under the direct runner every yielded
    value resolves immediately to ``None``; under the simulator yields
    are charged in simulated time.
    """

    def on_attach(self, env: DispatchEnv) -> None:
        """Called once when the owning driver wires the pipeline."""

    def intercept(self, request: Any, ctx: DispatchContext,
                  next: NextFn) -> Generator[Any, Any, Any]:
        return (yield from next(request))


def compose(interceptors: Sequence[Interceptor], tail: NextFn,
            ctx: DispatchContext) -> NextFn:
    """Fold ``interceptors`` (outermost first) around ``tail``.

    Returns a callable with the same shape as ``tail``; an empty chain
    returns ``tail`` itself, which is what lets the zero-interceptor
    pipeline compile down to the drivers' existing exact-class fast
    paths.
    """
    next_fn = tail
    for interceptor in reversed(list(interceptors)):
        next_fn = _bind(interceptor, ctx, next_fn)
    return next_fn


def _bind(interceptor: Interceptor, ctx: DispatchContext,
          next_fn: NextFn) -> NextFn:
    intercept = interceptor.intercept

    def layer(request: Any) -> Generator[Any, Any, Any]:
        return intercept(request, ctx, next_fn)

    return layer


def drive_sync(generator: Generator[Any, Any, Any]) -> Any:
    """Drive an interceptor-chain generator in direct (untimed) mode.

    Yielded Delays/Events model simulated time, which direct mode does
    not track, so every yield resolves immediately to ``None`` -- e.g.
    retry backoffs and injected latency become no-ops, exactly like
    ``Compute``/``Sleep`` under the direct Router.
    """
    try:
        while True:
            generator.send(None)
    except StopIteration as stop:
        return stop.value


def attach_all(interceptors: Sequence[Interceptor], env: DispatchEnv) -> None:
    """Run every interceptor's :meth:`~Interceptor.on_attach` hook."""
    for interceptor in interceptors:
        interceptor.on_attach(env)
