"""Direct (synchronous) dispatcher: the canonical in-process driver.

:class:`Dispatcher` resolves every request immediately against its bound
targets -- storage cluster, commit manager, and the (unmodelled) clock --
through the shared classification in :mod:`repro.dispatch.core`.  It
subsumes what used to be three separate isinstance ladders:
``repro.api.runner.Router``, the setup-time ``_ClusterOnlyRouter`` in the
simulation driver, and the ad-hoc loaders in tests.

With no interceptors the pipeline is exactly one kind lookup plus the
handler call, preserving the direct path's cost.  With interceptors the
request flows through the composed chain; yields (retry backoff, injected
latency) resolve immediately because direct mode does not model time.
"""

from __future__ import annotations

from typing import Any, Generator, Optional, Sequence

from repro.dispatch.core import (
    KIND_CM_ABORTED,
    KIND_CM_COMMITTED,
    KIND_CM_START,
    KIND_CM_VALIDATE,
    KIND_SCAN,
    DispatchContext,
    DispatchEnv,
    Interceptor,
    NextFn,
    attach_all,
    compose,
    drive_sync,
    kind_of,
)


class Dispatcher:
    """Binds one processing node's effects to in-process targets.

    ``commit_manager`` may be ``None`` (setup-time loading, cluster-only
    recovery): commit-manager requests then raise ``RuntimeError``.  The
    attribute is read on every dispatch, so rebinding it (commit-manager
    fail-over) takes effect immediately.
    """

    def __init__(
        self,
        cluster: Any,
        commit_manager: Any = None,
        pn_id: int = -1,
        interceptors: Sequence[Interceptor] = (),
    ) -> None:
        self.cluster = cluster
        self.commit_manager = commit_manager
        self.pn_id = pn_id
        self.interceptors = list(interceptors)
        self.context = DispatchContext(pn_id=pn_id, engine="direct")
        self._chain: Optional[NextFn] = None
        if self.interceptors:
            attach_all(
                self.interceptors,
                DispatchEnv(
                    cluster=cluster,
                    commit_managers=(
                        [] if commit_manager is None else [commit_manager]
                    ),
                ),
            )
            self._chain = compose(self.interceptors, self._tail, self.context)

    def execute(self, request: Any) -> Any:
        """Resolve one request synchronously; the drivers' entry point."""
        chain = self._chain
        if chain is None:
            return self._handle(request)
        return drive_sync(chain(request))

    # -- resolution ----------------------------------------------------------

    def _handle(self, request: Any) -> Any:
        kind = kind_of(request)
        if kind <= KIND_SCAN:  # store single / batch / scan
            return self.cluster.execute(request)
        if kind == KIND_CM_START:
            return self._commit_manager().start(self.pn_id)
        if kind == KIND_CM_COMMITTED:
            self._commit_manager().set_committed(request.tid)
            return None
        if kind == KIND_CM_ABORTED:
            self._commit_manager().set_aborted(request.tid)
            return None
        if kind == KIND_CM_VALIDATE:
            return self._commit_manager().validate_commit(request)
        return None  # Compute/Sleep: time is not modelled in direct mode

    def _tail(self, request: Any) -> Generator[Any, Any, Any]:
        """Generator-shaped terminal stage for the interceptor chain."""
        return self._handle(request)
        yield  # pragma: no cover -- makes this a generator function

    def _commit_manager(self) -> Any:
        if self.commit_manager is None:
            raise RuntimeError("no commit manager attached to this dispatcher")
        return self.commit_manager

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} pn_id={self.pn_id} "
            f"interceptors={len(self.interceptors)}>"
        )
