"""Production interceptors: tracing, fault injection, retry policy.

All three implement the uniform :class:`repro.dispatch.core.Interceptor`
protocol and therefore run unchanged under the direct runner, the
simulated deployment, and the baseline engines.  Order matters: the chain
runs outermost-first, so the conventional stack is

    [TraceInterceptor, RetryPolicy, FaultInjector]

-- the trace sees one logical request per protocol yield, the retry
policy re-drives the faulty tail, and faults are injected closest to the
(real or simulated) hardware.
"""

from __future__ import annotations

import json
import random
from typing import Any, Callable, Dict, Generator, List, Optional, Sequence, Tuple, Type

from repro.dispatch.core import (
    DispatchContext,
    DispatchEnv,
    Interceptor,
    NextFn,
)
from repro.errors import NodeUnavailable, WrongOwner

TRACE_SCHEMA = "repro-dispatch-trace/1"


# ---------------------------------------------------------------------------
# trace / metrics
# ---------------------------------------------------------------------------


def _approx_request_bytes(request: Any) -> int:
    """Wire-size estimate mirroring StorageCluster.request_size, without
    needing the cluster: 24 bytes of header plus key/value payload."""
    from repro.store.cell import approx_size

    ops = getattr(request, "ops", None)
    if ops is not None:  # a Batch
        return sum(_approx_request_bytes(op) for op in ops)
    key = getattr(request, "key", None)
    if key is None:
        return 24
    size = 24 + approx_size(key)
    value = getattr(request, "value", None)
    if value is not None:
        size += approx_size(value)
    return size


class _ClassStats:
    """Aggregates for one request class."""

    __slots__ = ("count", "ops", "errors", "bytes", "total_latency_us",
                 "max_latency_us", "histogram")

    def __init__(self) -> None:
        self.count = 0
        self.ops = 0
        self.errors = 0
        self.bytes = 0
        self.total_latency_us = 0.0
        self.max_latency_us = 0.0
        #: log2 latency histogram: bucket i counts requests with
        #: 2^(i-1) < latency_us <= 2^i (bucket 0: <= 1us).
        self.histogram: Dict[int, int] = {}

    def record(self, ops: int, size: int, latency_us: float) -> None:
        self.count += 1
        self.ops += ops
        self.bytes += size
        self.total_latency_us += latency_us
        if latency_us > self.max_latency_us:
            self.max_latency_us = latency_us
        bucket = 0
        scaled = latency_us
        while scaled > 1.0:
            scaled /= 2.0
            bucket += 1
        self.histogram[bucket] = self.histogram.get(bucket, 0) + 1

    def to_dict(self) -> Dict[str, Any]:
        mean = self.total_latency_us / self.count if self.count else 0.0
        return {
            "count": self.count,
            "ops": self.ops,
            "errors": self.errors,
            "bytes": self.bytes,
            "mean_latency_us": mean,
            "max_latency_us": self.max_latency_us,
            "latency_histogram_log2_us": {
                str(b): n for b, n in sorted(self.histogram.items())
            },
        }


class RequestTrace:
    """Per-request-class counters collected by :class:`TraceInterceptor`.

    ``to_dict()`` / ``dump_json()`` produce the trace format documented in
    ``docs/dispatch.md`` (schema ``repro-dispatch-trace/1``).
    """

    def __init__(self) -> None:
        self.per_class: Dict[str, _ClassStats] = {}
        self.round_trips = 0
        self.errors_by_type: Dict[str, int] = {}

    def stats_for(self, class_name: str) -> _ClassStats:
        stats = self.per_class.get(class_name)
        if stats is None:
            stats = _ClassStats()
            self.per_class[class_name] = stats
        return stats

    @property
    def total_requests(self) -> int:
        return sum(stats.count for stats in self.per_class.values())

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": TRACE_SCHEMA,
            "round_trips": self.round_trips,
            "total_requests": self.total_requests,
            "errors_by_type": dict(sorted(self.errors_by_type.items())),
            "per_class": {
                name: self.per_class[name].to_dict()
                for name in sorted(self.per_class)
            },
        }

    def dump_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)


class TraceInterceptor(Interceptor):
    """Counts, sizes, and times every request flowing through a pipeline.

    Purely observational: it charges no time and changes no results, so a
    run with only this interceptor produces a ``TxnMetrics.digest()``
    identical to the bare pipeline.  When the owning driver exposes a
    :class:`~repro.bench.metrics.TxnMetrics`, the trace is attached to it
    as ``metrics.request_trace``.
    """

    def __init__(self, trace: Optional[RequestTrace] = None) -> None:
        self.trace = trace if trace is not None else RequestTrace()

    def on_attach(self, env: DispatchEnv) -> None:
        if env.metrics is not None:
            env.metrics.request_trace = self.trace

    def intercept(self, request: Any, ctx: DispatchContext,
                  next: NextFn) -> Generator[Any, Any, Any]:
        trace = self.trace
        name = request.__class__.__name__
        ops = getattr(request, "ops", None)
        n_ops = len(ops) if ops is not None else 1
        size = _approx_request_bytes(request)
        started = ctx.clock.now
        try:
            result = yield from next(request)
        except BaseException as exc:
            stats = trace.stats_for(name)
            stats.errors += 1
            # Failed requests still count toward the per-class totals --
            # an aborted transaction's requests must reconcile with the
            # sanitizer shadow history, not vanish from the trace.  Only
            # ``round_trips`` stays success-only.
            stats.record(n_ops, size, ctx.clock.now - started)
            exc_name = exc.__class__.__name__
            trace.errors_by_type[exc_name] = (
                trace.errors_by_type.get(exc_name, 0) + 1
            )
            raise
        trace.round_trips += 1
        trace.stats_for(name).record(n_ops, size, ctx.clock.now - started)
        return result


# ---------------------------------------------------------------------------
# fault injection
# ---------------------------------------------------------------------------


class InjectedCrash(Exception):
    """Raised by :class:`CrashPoint` to abandon a protocol coroutine the
    instant after a chosen request executed -- the shape of a processing
    node dying mid-transaction.  Deliberately *not* a TellError: drivers
    must not route it into the coroutine's error handling (a crashed PN
    runs no cleanup code)."""

    def __init__(self, request: Any) -> None:
        super().__init__(f"injected crash after {request!r}")
        self.request = request


class FaultRule:
    """One deterministic injection rule.

    Matches requests by class name (``op``, ``None`` = any) and -- for
    storage requests -- by ``space`` (``None`` = any).  On a match, with
    probability ``error_rate`` the rule raises ``error_type(...)`` instead
    of executing the request, and with probability ``latency_rate`` it
    stalls the caller for ``latency_us`` of simulated time first.
    """

    __slots__ = ("op", "space", "error_rate", "error_type", "latency_us",
                 "latency_rate")

    def __init__(self, op: Optional[str] = None, space: Optional[str] = None,
                 error_rate: float = 0.0,
                 error_type: Type[Exception] = NodeUnavailable,
                 latency_us: float = 0.0, latency_rate: float = 1.0) -> None:
        self.op = op
        self.space = space
        self.error_rate = error_rate
        self.error_type = error_type
        self.latency_us = latency_us
        self.latency_rate = latency_rate

    def matches(self, request: Any) -> bool:
        if self.op is not None and request.__class__.__name__ != self.op:
            return False
        if self.space is not None and getattr(request, "space", None) != self.space:
            return False
        return True


class ScheduledFault:
    """A deployment-level event fired at an absolute simulated time.

    ``action(env)`` receives the :class:`DispatchEnv`; use the factories
    :func:`kill_storage_node` / :func:`restart_storage_node` or pass any
    callable (e.g. a commit-manager failover).  Requires a simulated
    deployment -- the direct runner has no timeline to schedule on.
    """

    __slots__ = ("at_us", "action", "label")

    def __init__(self, at_us: float, action: Callable[[DispatchEnv], None],
                 label: str = "fault") -> None:
        self.at_us = at_us
        self.action = action
        self.label = label

    def __repr__(self) -> str:
        return f"ScheduledFault({self.at_us}, {self.label!r})"


def kill_storage_node(node_id: int) -> Callable[[DispatchEnv], None]:
    """Action: crash one SN and fail its partitions over to replicas."""

    def action(env: DispatchEnv) -> None:
        if env.management is not None:
            env.management.handle_node_failure(node_id)
        else:
            env.cluster.nodes[node_id].crash()

    return action


def restart_storage_node(node_id: int) -> Callable[[DispatchEnv], None]:
    """Action: bring a crashed SN back (empty; the management node must
    re-replicate partitions onto it)."""

    def action(env: DispatchEnv) -> None:
        env.cluster.nodes[node_id].restart()

    return action


class FaultInjector(Interceptor):
    """Deterministic, seed-driven fault injection middleware.

    Three fault shapes, replacing the ad-hoc failure plumbing that tests
    used to hand-roll:

    * per-space/per-op *errors* and *added latency* via :class:`FaultRule`
      (probabilities drawn from a private seeded RNG, so a fixed seed
      reproduces the exact same faults),
    * deployment events (SN kill/restart, CM failover) via
      :class:`ScheduledFault`, armed on the simulator clock at attach
      time.
    """

    def __init__(self, seed: int = 0, rules: Sequence[FaultRule] = (),
                 schedule: Sequence[ScheduledFault] = ()) -> None:
        self.rng = random.Random(seed)
        self.rules = list(rules)
        self.schedule = list(schedule)
        self.injected_errors = 0
        self.injected_delays = 0
        self.fired_events: List[str] = []

    def on_attach(self, env: DispatchEnv) -> None:
        if not self.schedule:
            return
        if env.sim is None:
            raise ValueError(
                "ScheduledFault requires a simulated deployment; the "
                "direct runner has no timeline"
            )
        for fault in self.schedule:
            env.sim.call_at(fault.at_us, self._firer(fault, env))

    def _firer(self, fault: ScheduledFault,
               env: DispatchEnv) -> Callable[[], None]:
        def fire() -> None:
            fault.action(env)
            self.fired_events.append(fault.label)

        return fire

    def intercept(self, request: Any, ctx: DispatchContext,
                  next: NextFn) -> Generator[Any, Any, Any]:
        for rule in self.rules:
            if not rule.matches(request):
                continue
            if rule.latency_us > 0.0 and (
                rule.latency_rate >= 1.0
                or self.rng.random() < rule.latency_rate
            ):
                self.injected_delays += 1
                yield _delay(rule.latency_us)
            if rule.error_rate > 0.0 and self.rng.random() < rule.error_rate:
                self.injected_errors += 1
                raise rule.error_type(
                    f"injected fault for {request!r}"
                )
        return (yield from next(request))


def _delay(duration: float) -> Any:
    from repro.sim.kernel import delay_of

    return delay_of(duration)


class CrashPoint(Interceptor):
    """Crash the driving coroutine right after a chosen request executes.

    ``predicate(request)`` picks the crash point; the request *is*
    executed (its state transition lands in the store) and then
    :class:`InjectedCrash` unwinds the driver, abandoning the coroutine
    exactly like a processing-node failure between two requests.  Fires
    at most once unless ``repeat`` is set.
    """

    def __init__(self, predicate: Callable[[Any], bool],
                 repeat: bool = False) -> None:
        self.predicate = predicate
        self.repeat = repeat
        self.crashes = 0

    @property
    def fired(self) -> bool:
        return self.crashes > 0

    def intercept(self, request: Any, ctx: DispatchContext,
                  next: NextFn) -> Generator[Any, Any, Any]:
        result = yield from next(request)
        if (self.repeat or not self.fired) and self.predicate(request):
            self.crashes += 1
            raise InjectedCrash(request)
        return result


# ---------------------------------------------------------------------------
# retry policy
# ---------------------------------------------------------------------------


class RetryPolicy(Interceptor):
    """Centralized bounded retry with exponential backoff.

    Retries the tail of the pipeline when it raises one of ``retry_on``
    (transient storage errors by default), waiting ``backoff_us`` of
    simulated time before the first retry and doubling per attempt
    (``multiplier``).  Under the direct runner the backoff resolves
    immediately (time is not modelled).  ``retryable(request, exc)``
    optionally narrows which requests may be retried -- e.g. reads only.
    """

    def __init__(self, max_attempts: int = 3, backoff_us: float = 100.0,
                 multiplier: float = 2.0,
                 retry_on: Tuple[Type[Exception], ...] = (NodeUnavailable,),
                 retryable: Optional[Callable[[Any, Exception], bool]] = None,
                 ) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.max_attempts = max_attempts
        self.backoff_us = backoff_us
        self.multiplier = multiplier
        self.retry_on = retry_on
        self.retryable = retryable
        self.retries = 0

    def intercept(self, request: Any, ctx: DispatchContext,
                  next: NextFn) -> Generator[Any, Any, Any]:
        attempt = 1
        backoff = self.backoff_us
        while True:
            try:
                return (yield from next(request))
            except self.retry_on as exc:
                if attempt >= self.max_attempts:
                    raise
                if self.retryable is not None and not self.retryable(
                        request, exc):
                    raise
                attempt += 1
                self.retries += 1
                if backoff > 0.0:
                    yield _delay(backoff)
                    backoff *= self.multiplier


class WrongOwnerRedirect(Interceptor):
    """Re-route requests that hit a node whose partition migrated away.

    During a live migration a request can be routed (send time) to a
    node that is no longer the partition's owner by the time it is
    served; the storage layer rejects it with
    :class:`~repro.errors.WrongOwner` *before any state mutation*.  This
    interceptor waits ``pause_us`` of simulated time (letting the
    promotion's epoch settle) and re-issues the request down the tail of
    the pipeline, which re-reads the partition map and therefore reaches
    the new owner.

    Must sit **innermost** in the chain (closest to the fabric) so that
    outer middleware -- in particular the sanitizers -- observes one
    logical request regardless of how many redirects it took.
    ``max_redirects`` bounds pathological flapping; a redirect that keeps
    failing surfaces the final :class:`WrongOwner` to the caller.
    """

    def __init__(self, max_redirects: int = 8, pause_us: float = 20.0) -> None:
        if max_redirects < 1:
            raise ValueError("max_redirects must be >= 1")
        self.max_redirects = max_redirects
        self.pause_us = pause_us
        self.redirects = 0

    def intercept(self, request: Any, ctx: DispatchContext,
                  next: NextFn) -> Generator[Any, Any, Any]:
        attempt = 0
        while True:
            try:
                return (yield from next(request))
            except WrongOwner:
                if attempt >= self.max_redirects:
                    raise
                attempt += 1
                self.redirects += 1
                if self.pause_us > 0.0:
                    yield _delay(self.pause_us)


__all__ = [
    "TRACE_SCHEMA",
    "RequestTrace",
    "TraceInterceptor",
    "InjectedCrash",
    "FaultRule",
    "ScheduledFault",
    "FaultInjector",
    "CrashPoint",
    "RetryPolicy",
    "WrongOwnerRedirect",
    "kill_storage_node",
    "restart_storage_node",
]
