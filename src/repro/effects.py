"""Requests that protocol coroutines yield to their driver.

All Tell protocol code (transactions, B+tree, commit manager clients, SQL
executor) is written as generator coroutines that ``yield`` request objects
and receive the corresponding results via ``send``.  Two drivers exist:

* :class:`repro.api.runner.DirectRunner` resolves every request immediately
  against in-process components -- this powers the embedded database API
  and fast unit tests.
* The simulation driver in :mod:`repro.bench.cluster` charges network and
  service latency for every request, letting many workers interleave, which
  reproduces the distributed behaviour measured in the paper.

Because the same coroutines run under both drivers, the code being
benchmarked is the library itself, not a model of it.
"""

from __future__ import annotations

from typing import Any, Generator, Optional, Sequence

from repro.errors import TellError


class Request:
    """Base class for every yieldable request."""

    __slots__ = ()

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


# ---------------------------------------------------------------------------
# Storage layer requests (served by the shared record store)
# ---------------------------------------------------------------------------


class StoreRequest(Request):
    """A request addressed to the shared storage system."""

    __slots__ = ("space", "key")

    def __init__(self, space: str, key: Any) -> None:
        self.space = space
        self.key = key

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.space!r}, {self.key!r})"


class Get(StoreRequest):
    """Read one cell.  Result: ``(value, cell_version)``; missing cells
    return ``(None, 0)``.  The cell version is the LL token for LL/SC."""

    __slots__ = ()


class Put(StoreRequest):
    """Unconditional write.  Result: new cell version (int)."""

    __slots__ = ("value",)

    def __init__(self, space: str, key: Any, value: Any) -> None:
        super().__init__(space, key)
        self.value = value

    def __repr__(self) -> str:
        return f"Put({self.space!r}, {self.key!r}, {self.value!r})"


class PutIfVersion(StoreRequest):
    """Store-conditional write (the SC of LL/SC).

    The write succeeds only if the cell's current version equals
    ``expected_version`` (0 means "must not exist").  Result:
    ``(ok, new_or_current_version)``.  Unlike compare-and-swap this is
    immune to the ABA problem because cell versions increase on every write.
    """

    __slots__ = ("value", "expected_version")

    def __init__(self, space: str, key: Any, value: Any, expected_version: int) -> None:
        super().__init__(space, key)
        self.value = value
        self.expected_version = expected_version

    def __repr__(self) -> str:
        return (
            f"PutIfVersion({self.space!r}, {self.key!r}, {self.value!r}, "
            f"expected_version={self.expected_version})"
        )


class Delete(StoreRequest):
    """Remove a cell.  Result: ``True`` if it existed."""

    __slots__ = ()


class DeleteIfVersion(StoreRequest):
    """Conditional remove.  Result: ``(ok, current_version)``."""

    __slots__ = ("expected_version",)

    def __init__(self, space: str, key: Any, expected_version: int) -> None:
        super().__init__(space, key)
        self.expected_version = expected_version

    def __repr__(self) -> str:
        return (
            f"DeleteIfVersion({self.space!r}, {self.key!r}, "
            f"expected_version={self.expected_version})"
        )


class Increment(StoreRequest):
    """Atomically add ``delta`` to a numeric cell (creating it at 0).

    Result: the post-increment value.  Tell uses this for the global tid
    counter and for rid allocation.
    """

    __slots__ = ("delta",)

    def __init__(self, space: str, key: Any, delta: int = 1) -> None:
        super().__init__(space, key)
        self.delta = delta

    def __repr__(self) -> str:
        return f"Increment({self.space!r}, {self.key!r}, delta={self.delta})"


class Scan(StoreRequest):
    """Range scan over keys in one space: ``start <= key < end``.

    Result: list of ``(key, value, cell_version)`` sorted by key, at most
    ``limit`` entries.  This powers full table scans ("data is shipped to
    the query") and the lazy garbage collector.

    With ``snapshot`` set, the storage nodes resolve the snapshot-visible
    version of each record themselves and -- if ``scan_filter`` /
    ``projection`` are given -- pre-filter and trim rows before shipping
    them: the operator push-down of Section 5.2.  The result rows then
    carry the visible *payload* instead of the whole versioned record.
    """

    __slots__ = ("end", "limit", "snapshot", "scan_filter", "projection")

    def __init__(self, space: str, start: Any, end: Any,
                 limit: Optional[int] = None, snapshot: Any = None,
                 scan_filter: Any = None, projection: Any = None) -> None:
        super().__init__(space, start)
        self.end = end
        self.limit = limit
        self.snapshot = snapshot
        self.scan_filter = scan_filter
        self.projection = projection

    @property
    def start(self) -> Any:
        return self.key

    def __repr__(self) -> str:
        extra = ""
        if self.limit is not None:
            extra += f", limit={self.limit}"
        if self.snapshot is not None:
            extra += ", snapshot=..."
        if self.scan_filter is not None or self.projection is not None:
            extra += ", pushdown=..."
        return f"Scan({self.space!r}, {self.key!r}..{self.end!r}{extra})"


class Batch(Request):
    """Several storage requests combined into one network round trip.

    Tell "aggressively batches operations" (Section 5.1): requests going to
    the same storage node share a round trip.  Result: list of individual
    results, in order.
    """

    __slots__ = ("ops",)

    def __init__(self, ops: Sequence[StoreRequest]) -> None:
        self.ops = list(ops)

    def __repr__(self) -> str:
        return f"Batch({len(self.ops)} ops)"


def multi_get(space: str, keys: Sequence[Any]) -> Batch:
    """Convenience: batch of Gets for ``keys`` in ``space``."""
    return Batch([Get(space, key) for key in keys])


# ---------------------------------------------------------------------------
# Commit manager requests
# ---------------------------------------------------------------------------


class CommitManagerRequest(Request):
    __slots__ = ()


class StartTransaction(CommitManagerRequest):
    """Begin a transaction.  Result: :class:`repro.core.snapshot.TxnStart`
    carrying (tid, snapshot descriptor, lowest active version)."""

    __slots__ = ()


class ReportCommitted(CommitManagerRequest):
    """Tell the commit manager that ``tid`` committed."""

    __slots__ = ("tid",)

    def __init__(self, tid: int) -> None:
        self.tid = tid

    def __repr__(self) -> str:
        return f"ReportCommitted(tid={self.tid})"


class ReportAborted(CommitManagerRequest):
    """Tell the commit manager that ``tid`` aborted."""

    __slots__ = ("tid",)

    def __init__(self, tid: int) -> None:
        self.tid = tid

    def __repr__(self) -> str:
        return f"ReportAborted(tid={self.tid})"


class ValidateCommit(CommitManagerRequest):
    """Commit-time validation under the read-validating isolation
    protocols (WSI / SSI, :mod:`repro.core.isolation`).

    Carries the transaction's read and write key sets plus its snapshot
    descriptor; the commit manager checks them against the recent-commit
    window and registers the transaction on success.  Result: a
    ``ValidationVerdict`` (``.ok`` false means the transaction must
    abort).  Plain SI never yields this request.
    """

    __slots__ = ("tid", "read_keys", "write_keys", "snapshot")

    def __init__(self, tid: int, read_keys: Sequence[Any],
                 write_keys: Sequence[Any], snapshot: Any) -> None:
        self.tid = tid
        self.read_keys = tuple(read_keys)
        self.write_keys = tuple(write_keys)
        self.snapshot = snapshot

    def __repr__(self) -> str:
        return (
            f"ValidateCommit(tid={self.tid}, reads={len(self.read_keys)}, "
            f"writes={len(self.write_keys)})"
        )


# ---------------------------------------------------------------------------
# Local effects
# ---------------------------------------------------------------------------


class Compute(Request):
    """Local CPU work on the processing node, in microseconds.

    The direct runner ignores it; the simulation driver charges the PN's
    core pool, which is what makes processing nodes saturate realistically.
    """

    __slots__ = ("duration",)

    def __init__(self, duration: float) -> None:
        self.duration = duration

    def __repr__(self) -> str:
        return f"Compute({self.duration})"


class Sleep(Request):
    """Suspend for simulated time (background tasks: GC, CM sync)."""

    __slots__ = ("duration",)

    def __init__(self, duration: float) -> None:
        self.duration = duration

    def __repr__(self) -> str:
        return f"Sleep({self.duration})"


def run_direct(generator: Generator[Any, Any, Any], router: Any) -> Any:
    """Drive a protocol coroutine to completion, resolving each request
    immediately via ``router.execute``.  Returns the coroutine's result.

    Protocol-level errors (``TellError``) are thrown *into* the coroutine
    so its abort/cleanup path runs -- the same contract as the simulation
    driver.  Anything else (driver bugs, injected crashes) closes the
    coroutine and propagates, so ``finally`` blocks still execute instead
    of abandoning the transaction mid-flight.
    """
    send = generator.send
    result: Any = None
    error: Optional[BaseException] = None
    while True:
        try:
            if error is None:
                request = send(result)
            else:
                exc, error = error, None
                request = generator.throw(exc)
        except StopIteration as stop:
            return stop.value
        try:
            result = router.execute(request)
        except TellError as exc:
            error = exc
        except BaseException:
            generator.close()
            raise
