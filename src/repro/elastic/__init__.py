"""repro.elastic: live topology change on the simulated timeline.

The elasticity subsystem makes the paper's headline claim -- processing
and storage scale *independently* -- operational while traffic runs:

* :mod:`repro.elastic.topology` -- the versioned ownership layer
  (epochs, handoffs, deterministic rebalance/drain planning);
* :mod:`repro.elastic.migration` -- the bounded-batch key-handoff
  protocol streaming partitions to their new owner while PNs keep
  committing (SI-safe: destination rides the replica list, promotion is
  a single atomic epoch step);
* :mod:`repro.elastic.coordinator` -- the sim-timeline driver (SN
  add/remove, PN grow/shrink through the recovery path, timed batches);
* :mod:`repro.elastic.autoscaler` -- the deterministic policy that turns
  ``repro.obs`` snapshots (queue depth, p99, abort rate) into add/remove
  decisions.

In-flight requests that reach a node after its partition moved fail with
:class:`repro.errors.WrongOwner` *before any state mutation* and are
re-routed by :class:`repro.dispatch.WrongOwnerRedirect`.  See
``docs/elasticity.md`` for the full protocol.
"""

from repro.elastic.topology import (Handoff, Move, PlacementSpec, Topology)


def __getattr__(name):
    # Heavier pieces load lazily: the static-topology paths (embedded DB,
    # plain simulation) construct a Topology but never touch migration,
    # coordination, or autoscaling code.
    if name in ("MigrationStats", "run_moves_direct", "migrate_partition"):
        from repro.elastic import migration

        return getattr(migration, name)
    if name == "ElasticCoordinator":
        from repro.elastic.coordinator import ElasticCoordinator

        return ElasticCoordinator
    if name in ("Autoscaler", "AutoscalerPolicy", "Decision"):
        from repro.elastic import autoscaler

        return getattr(autoscaler, name)
    raise AttributeError(name)


__all__ = [
    "Autoscaler",
    "AutoscalerPolicy",
    "Decision",
    "ElasticCoordinator",
    "Handoff",
    "MigrationStats",
    "Move",
    "PlacementSpec",
    "Topology",
    "migrate_partition",
    "run_moves_direct",
]
