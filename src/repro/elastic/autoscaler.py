"""Deterministic autoscaling: observability signals -> elastic decisions.

The autoscaler is a simulated process that ticks at a fixed interval,
samples the deployment's observability signals (storage queue depth,
committed-transaction p99, abort rate -- the same quantities the
``repro.obs`` gauges export), and emits add/remove decisions through the
:class:`~repro.elastic.coordinator.ElasticCoordinator`.

Everything is a pure function of simulated time and deployment state:
no randomness, no wall clock.  A fixed seed therefore reproduces the
identical decision log, migration schedule, and epoch history -- which
is what makes autoscaling testable at all (the determinism suite pins
the decision log down byte for byte).

Policy shape (deliberately boring):

* **storage scale-out** when the worst SN queue backlog stays above
  ``out_queue_us`` (or p99 above ``out_p99_us``) for ``evidence_ticks``
  consecutive ticks;
* **storage scale-in** when backlog and p99 stay below the ``in_*``
  thresholds for ``evidence_ticks`` ticks;
* **processing grow** when p99 is high while storage queues are short
  (the bottleneck is PN-side);
* **processing shrink** when the abort rate exceeds
  ``max_abort_rate`` (contention thrashing: fewer concurrent
  transactions resolve it, Section 6 of the paper).

Each action is followed by ``cooldown_ticks`` of enforced silence so the
system observes the new topology before judging it again.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Optional

from repro.bench.metrics import _percentile
from repro.elastic.coordinator import ElasticCoordinator
from repro.errors import InvalidState
from repro.sim.kernel import delay_of


@dataclass(frozen=True)
class AutoscalerPolicy:
    """Thresholds and pacing for the deterministic scaling policy."""

    interval_us: float = 250_000.0
    #: storage scale-out: sustained backlog or tail latency
    out_queue_us: float = 40.0
    out_p99_us: float = 2_500.0
    #: storage scale-in: sustained idleness
    in_queue_us: float = 2.0
    in_p99_us: float = 900.0
    #: processing shrink: contention thrashing
    max_abort_rate: float = 0.25
    evidence_ticks: int = 2
    cooldown_ticks: int = 3
    min_storage_nodes: int = 1
    max_storage_nodes: int = 64
    min_processing_nodes: int = 1
    max_processing_nodes: int = 64

    def __post_init__(self) -> None:
        if self.interval_us <= 0:
            raise InvalidState("autoscaler interval must be positive")
        if self.evidence_ticks < 1 or self.cooldown_ticks < 0:
            raise InvalidState("evidence/cooldown ticks out of range")
        if self.min_storage_nodes > self.max_storage_nodes:
            raise InvalidState("min_storage_nodes > max_storage_nodes")
        if self.min_processing_nodes > self.max_processing_nodes:
            raise InvalidState("min_processing_nodes > max_processing_nodes")


class Decision:
    """One autoscaler tick's outcome (kept even when it decided nothing)."""

    __slots__ = ("at_us", "action", "reason", "signals")

    def __init__(self, at_us: float, action: Optional[str], reason: str,
                 signals: Dict[str, float]):
        self.at_us = at_us
        self.action = action
        self.reason = reason
        self.signals = signals

    def __repr__(self) -> str:
        return (f"Decision(t={self.at_us:.0f}us action={self.action} "
                f"reason={self.reason!r})")


class Autoscaler:
    """Ticks on the sim timeline and drives the elastic coordinator."""

    def __init__(
        self,
        coordinator: ElasticCoordinator,
        policy: Optional[AutoscalerPolicy] = None,
    ):
        self.coordinator = coordinator
        self.deployment = coordinator.deployment
        self.sim = coordinator.sim
        self.policy = policy or AutoscalerPolicy()
        self.decisions: List[Decision] = []
        self._high_ticks = 0
        self._low_ticks = 0
        self._cooldown = 0
        # metric deltas between ticks
        self._seen_latencies: Dict[str, int] = {}
        self._seen_conflicts = 0
        self._seen_finished = 0

    # -- signal sampling ----------------------------------------------------

    def sample(self) -> Dict[str, float]:
        """Read the tick's signals from live deployment state.

        These are exactly the quantities the ``repro.obs`` collectors
        export (``repro_sn_queue_us``, ``repro_pn_txns``, the latency
        series behind the bench percentiles); reading them directly
        keeps a tick O(nodes) instead of materializing a full snapshot.
        """
        fabric = self.deployment.fabric
        now = self.sim.now
        queue_us = 0.0
        for node_id in sorted(fabric.sn_pools):
            backlog = fabric.sn_pools[node_id].earliest(now) - now
            if backlog > queue_us:
                queue_us = backlog
        metrics = self.deployment.metrics
        fresh: List[float] = []
        for name in sorted(metrics.latencies_us):
            series = metrics.latencies_us[name]
            start = self._seen_latencies.get(name, 0)
            if len(series) > start:
                fresh.extend(series[start:])
            self._seen_latencies[name] = len(series)
        p99_us = _percentile(sorted(fresh), 0.99) if fresh else 0.0
        conflicts = metrics.total_conflicts
        finished = metrics.total_finished
        d_conflicts = conflicts - self._seen_conflicts
        d_finished = finished - self._seen_finished
        self._seen_conflicts = conflicts
        self._seen_finished = finished
        abort_rate = d_conflicts / d_finished if d_finished else 0.0
        return {
            "queue_us": queue_us,
            "p99_us": p99_us,
            "abort_rate": abort_rate,
            "txns": float(d_finished),
        }

    # -- the decision function ----------------------------------------------

    def decide(self, signals: Dict[str, float]) -> Optional[str]:
        """Pure policy step: signals -> action (or None).  Mutates only
        the evidence/cooldown counters."""
        policy = self.policy
        if self._cooldown > 0:
            self._cooldown -= 1
            return None
        if signals["txns"] <= 0:
            return None  # nothing finished this tick: no evidence either way
        n_sn = len(self.deployment.cluster.nodes)
        n_pn = len(self.deployment.active_pn_ids())
        if signals["abort_rate"] > policy.max_abort_rate:
            if n_pn > policy.min_processing_nodes:
                return "pn-shrink"
            return None
        high = (signals["queue_us"] > policy.out_queue_us
                or signals["p99_us"] > policy.out_p99_us)
        low = (signals["queue_us"] < policy.in_queue_us
               and signals["p99_us"] < policy.in_p99_us)
        if high:
            self._high_ticks += 1
            self._low_ticks = 0
        elif low:
            self._low_ticks += 1
            self._high_ticks = 0
        else:
            self._high_ticks = 0
            self._low_ticks = 0
            return None
        if self._high_ticks >= policy.evidence_ticks:
            if signals["queue_us"] <= policy.out_queue_us:
                # tail latency without storage backlog: PN-bound
                if n_pn < policy.max_processing_nodes:
                    return "pn-grow"
                return None
            if n_sn < policy.max_storage_nodes:
                return "sn-add"
            return None
        if self._low_ticks >= policy.evidence_ticks:
            if n_sn > policy.min_storage_nodes:
                return "sn-remove"
            return None
        return None

    # -- the sim process -----------------------------------------------------

    def process(self, until_us: float) -> Generator:
        """The autoscaler loop; spawn with ``sim.spawn(a.process(end))``."""
        tick = delay_of(self.policy.interval_us)
        while self.sim.now + self.policy.interval_us <= until_us:
            yield tick
            signals = self.sample()
            action = self.decide(signals)
            decision = Decision(
                self.sim.now, action,
                self._reason(action, signals), signals,
            )
            self.decisions.append(decision)
            if action is None:
                continue
            self._high_ticks = 0
            self._low_ticks = 0
            self._cooldown = self.policy.cooldown_ticks
            yield from self._execute(action)

    def _execute(self, action: str) -> Generator:
        coordinator = self.coordinator
        if action == "sn-add":
            yield from coordinator.add_storage_node()
        elif action == "sn-remove":
            victim = max(coordinator.topology.node_ids())
            yield from coordinator.remove_storage_node(victim, drain=True)
        elif action == "pn-grow":
            coordinator.grow_pns(1)
        elif action == "pn-shrink":
            yield from coordinator.shrink_pns(1)
        else:  # pragma: no cover - decide() only emits the four above
            raise InvalidState(f"unknown autoscaler action {action!r}")

    def _reason(self, action: Optional[str],
                signals: Dict[str, float]) -> str:
        return (
            f"queue={signals['queue_us']:.1f}us p99={signals['p99_us']:.0f}us "
            f"aborts={signals['abort_rate'] * 100:.1f}% -> {action or 'hold'}"
        )

    def decision_log(self) -> List[str]:
        """Compact, digest-friendly rendering of every decision."""
        return [
            f"{decision.at_us:.0f} {decision.action or '-'}"
            for decision in self.decisions
        ]
