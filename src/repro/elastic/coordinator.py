"""Sim-timeline driver for live topology change.

:class:`ElasticCoordinator` runs against a
:class:`repro.bench.simcluster.SimulatedTell` deployment and executes
elastic operations *while the workload runs*: every migration batch is a
timed message (wire latency plus per-cell copy service on both storage
nodes' core pools), so a rebalance visibly steals service capacity from
foreground traffic -- the throughput dip the elastic bench suite
measures -- and every state transition happens at an exact simulated
instant.

The coordinator is deliberately sequential: moves execute one at a time
in plan order, so a fixed seed reproduces the identical migration
schedule, epoch log, and digest on every run (pinned by the determinism
tests).
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional, Sequence, Tuple

from repro.elastic.migration import (DEFAULT_BATCH_CELLS, BatchCost,
                                     MigrationStats, migrate_partition)
from repro.elastic.topology import Move
from repro.errors import InvalidState
from repro.sim.kernel import Delay, delay_of

#: Per-cell copy service time on each endpoint of a migration batch
#: (microseconds).  Deliberately above the plain write service time: the
#: copy path serializes, ships, and installs versioned cells.
MIGRATION_CELL_US = 0.3
#: Polling interval while a retired PN's terminals finish their in-flight
#: transactions; recovery runs only once they have all exited, and rolls
#: back whatever they abandoned (the infrastructure-failure path).
PN_DRAIN_US = 500.0


class ElasticCoordinator:
    """Executes SN/PN scale-out and scale-in on the simulated timeline."""

    def __init__(
        self,
        deployment: Any,
        batch_cells: int = DEFAULT_BATCH_CELLS,
        drain_pause_us: float = PN_DRAIN_US,
    ):
        self.deployment = deployment
        self.sim = deployment.sim
        self.fabric = deployment.fabric
        self.cluster = deployment.cluster
        self.topology = deployment.cluster.topology
        self.batch_cells = batch_cells
        self.drain_pause_us = drain_pause_us
        self.stats = MigrationStats()
        #: (sim_time_us, description) log of every elastic action, in
        #: execution order -- the determinism tests pin this down.
        self.events: List[Tuple[float, str]] = []
        # Elastic operations serialize: planning against a topology whose
        # handoffs another operation is still executing would produce
        # colliding moves.  FIFO hand-off keeps the order deterministic.
        self._busy = False
        self._waiters: List[Any] = []

    def _acquire(self) -> Generator:
        if self._busy:
            gate = self.sim.event()
            self._waiters.append(gate)
            yield gate  # the releasing operation hands the lock over
        else:
            self._busy = True

    def _release(self) -> None:
        if self._waiters:
            self._waiters.pop(0).trigger(None)
        else:
            self._busy = False

    def _log(self, message: str) -> None:
        self.events.append((self.sim.now, message))

    def _arm(self) -> None:
        # From the first elastic operation on, requests may race topology
        # changes: arm the fabric's apply-time ownership guard (and the
        # WrongOwner error path behind it).  Never reset -- a finished
        # migration still leaves moved-out tombstones behind.
        if self.fabric.elastic_active:
            return
        self.fabric.elastic_active = True
        from repro.dispatch import WrongOwnerRedirect

        interceptors = self.deployment.interceptors
        if not any(isinstance(mw, WrongOwnerRedirect) for mw in interceptors):
            # Appended last = innermost: sanitizers (and any tracing)
            # observe one logical request however many redirects it took.
            interceptors.append(WrongOwnerRedirect())

    # -- storage scale-out / scale-in -------------------------------------

    def add_storage_node(self) -> Generator:
        """Attach a fresh SN and rebalance partitions onto it, live."""
        self._arm()
        yield from self._acquire()
        try:
            node = self.cluster.create_node()
            self.fabric.register_node(node.node_id)
            self._log(f"sn-add {node.node_id} epoch={self.topology.epoch}")
            moves = self.topology.plan_rebalance()
            yield from self._run_moves(moves)
            return node.node_id
        finally:
            self._release()

    def remove_storage_node(self, node_id: int, drain: bool = True) -> Generator:
        """Retire an SN.  ``drain=True`` migrates its partitions away
        first; ``drain=False`` models a hard removal (crash + fail-over
        through the management node, losing nothing only under RF>1)."""
        self._arm()
        yield from self._acquire()
        try:
            if drain:
                moves = self.topology.plan_drain(node_id)
                self._log(f"sn-drain {node_id} moves={len(moves)}")
                yield from self._run_moves(moves)
                node = self.cluster.nodes.get(node_id)
                if node is not None and node.partitions:
                    raise InvalidState(
                        f"drain of storage node {node_id} left "
                        f"{len(node.partitions)} partition(s) behind"
                    )
            else:
                self._log(f"sn-kill {node_id}")
                self.deployment.management.handle_node_failure(node_id)
            self.cluster.detach_node(node_id)
            self.fabric.sn_pools.pop(node_id, None)
            self._log(f"sn-removed {node_id} epoch={self.topology.epoch}")
        finally:
            self._release()

    def scale_storage_to(self, target: int) -> Generator:
        """Grow or shrink the SN fleet to ``target`` members, live.

        Growth attaches every missing node first and rebalances once --
        a single planning pass moves each partition at most once, where
        incremental :meth:`add_storage_node` calls would re-shuffle after
        every attach.  Shrink drains the highest-numbered nodes one at a
        time (each drain re-plans against the then-current membership).
        Returns the resulting sorted node-id list.
        """
        if target < 1:
            raise InvalidState("scale_storage_to needs target >= 1")
        current = sorted(self.cluster.nodes)
        if target > len(current):
            self._arm()
            yield from self._acquire()
            try:
                added = []
                for _ in range(target - len(current)):
                    node = self.cluster.create_node()
                    self.fabric.register_node(node.node_id)
                    added.append(node.node_id)
                self._log(f"sn-scale {len(current)}->{target} added={added}")
                yield from self._run_moves(self.topology.plan_rebalance())
            finally:
                self._release()
        elif target < len(current):
            for node_id in reversed(current[target:]):
                yield from self.remove_storage_node(node_id)
        return sorted(self.cluster.nodes)

    def rebalance(self) -> Generator:
        """Move partitions until master counts differ by at most one."""
        self._arm()
        yield from self._acquire()
        try:
            moves = self.topology.plan_rebalance()
            self._log(f"rebalance moves={len(moves)}")
            yield from self._run_moves(moves)
            return len(moves)
        finally:
            self._release()

    # -- processing scale-out / scale-in ----------------------------------

    def grow_pns(self, n: int = 1) -> List[int]:
        """Attach ``n`` fresh PNs; instant (a PN has no state to warm)."""
        if n < 1:
            raise InvalidState("grow_pns needs n >= 1")
        self._arm()
        new_ids = [self.deployment.start_pn() for _ in range(n)]
        self._log(f"pn-add {new_ids}")
        return new_ids

    def shrink_pns(self, n: int = 1) -> Generator:
        """Retire the ``n`` highest-numbered active PNs.

        Their terminals exit at the next transaction boundary; after a
        drain pause the stripe-recovery path (the same code a PN crash
        takes) rolls back anything still in flight, so no transaction or
        lav pin outlives its processing node.
        """
        active = self.deployment.active_pn_ids()
        if n < 1 or n >= len(active):
            raise InvalidState(
                f"cannot shrink {n} of {len(active)} active PNs "
                "(at least one must remain)"
            )
        self._arm()
        yield from self._acquire()
        try:
            victims = active[-n:]
            for pn_id in victims:
                self.deployment.stop_pn(pn_id)
            self._log(f"pn-stop {victims}")
            # Wait for the victims' terminals to actually exit: they only
            # observe the stop flag at a transaction boundary, and running
            # recovery under a still-live transaction would roll it back
            # underneath its own PN (the sanitizers catch that).
            yield delay_of(self.drain_pause_us)
            while not all(
                self.deployment.pn_quiesced(pn_id) for pn_id in victims
            ):
                yield delay_of(self.drain_pause_us)
            from repro.core.recovery import recover_processing_node
            from repro.core.txlog import TransactionLog

            rolled_back = 0
            for pn_id in victims:
                _pn, pool, cm_index, _indexes = self.deployment.pn_handle(pn_id)
                tids = yield from self.deployment._drive(
                    pool, cm_index,
                    recover_processing_node(
                        pn_id, self.deployment.commit_managers,
                        TransactionLog()
                    ),
                    pn_id=pn_id,
                )
                rolled_back += len(tids)
            self._log(f"pn-recovered {victims} rolled_back={rolled_back}")
            return rolled_back
        finally:
            self._release()

    # -- migration driving -------------------------------------------------

    def _run_moves(self, moves: Sequence[Move]) -> Generator:
        for move in moves:
            yield from self._run_move(move)
        self._log(
            f"moves-done n={len(moves)} epoch={self.topology.epoch} "
            f"balanced={self.topology.is_balanced()}"
        )

    def _run_move(self, move: Move) -> Generator:
        steps = migrate_partition(
            self.cluster, move, self.batch_cells, self.stats
        )
        committed = False
        while True:
            try:
                cost = next(steps)
            except StopIteration as stop:
                committed = bool(stop.value)
                break
            yield from self._charge_batch(cost)
        self._log(
            f"move p{move.partition_id} {move.src}->{move.dst} "
            f"{'ok' if committed else 'aborted'} epoch={self.topology.epoch}"
        )
        return committed

    def _charge_batch(self, cost: BatchCost) -> Generator:
        """Charge one migration batch: copy service on the source, wire
        time for the batch payload, install service on the destination.
        Reserving on the shared SN core pools is what makes a migration
        compete with foreground requests for service capacity."""
        fabric = self.fabric
        profile = fabric.profile
        now = self.sim.now
        service = (
            profile.server_cpu_per_msg_us + MIGRATION_CELL_US * cost.cells
        )
        t = now
        src_pool = fabric.sn_pools.get(cost.src)
        if src_pool is not None:
            _s, t = src_pool.reserve(t, service)
        t += profile.one_way(cost.nbytes)
        dst_pool = fabric.sn_pools.get(cost.dst)
        if dst_pool is not None:
            _s, t = dst_pool.reserve(t, service)
        if t > now:
            yield Delay(t - now)
