"""Bounded-batch partition handoff: stream keys while PNs keep committing.

The protocol (per partition move, see ``docs/elasticity.md``):

1. **Register** -- :meth:`Topology.begin_handoff` appends the destination
   to the partition's replica list (epoch bump).  From this instant every
   *new* write reaches the destination through the ordinary synchronous
   replication path, so the migration only has to stream the cells that
   already exist.
2. **Stream** -- existing cells copy over in bounded batches.  The step
   generator yields a :class:`BatchCost` before each batch; the driver
   (direct: ignore, sim: charge wire + service time on both nodes'
   core pools) decides how long the batch takes.  Each batch reads the
   *current master's* cells at its simulated instant, so a cell updated
   after the key snapshot copies in its newest state, and a deleted cell
   is skipped (the delete already replicated as a tombstone copy).
3. **Promote** -- :meth:`Topology.finish_handoff` swaps the destination
   into the source's slot in one atomic epoch step (master handoffs never
   leave an ownerless instant), and the source drops the partition with a
   moved-out tombstone: stragglers raise
   :class:`~repro.errors.WrongOwner` and get re-routed.
4. **Abort** -- on any storage error (source or destination died) the
   registration rolls back: the destination leaves the replica list and
   drops its partial copy.  A concurrent fail-over may have aborted the
   handoff already (:meth:`Topology.fail_over` evicts half-copied
   destinations before promoting backups); the generator detects that
   after every batch via :meth:`Topology.handoff_active` and unwinds.

Every step is SI-safe: the destination is indistinguishable from a
backup replica until promotion, and promotion changes routing only --
never version history.  The sanitizer suite stays clean through
migrations (pinned by the elastic tests).
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional, Sequence, Tuple

from repro.elastic.topology import Move, Topology
from repro.errors import TellError
from repro.store.cell import approx_size

#: Default cells per migration batch (bounds the per-event copy work and
#: the message size; the coordinator charges one wire+service round per
#: batch).
DEFAULT_BATCH_CELLS = 128


class MigrationStats:
    """Counters for one migration run (a rebalance or drain)."""

    __slots__ = ("partitions_moved", "cells_copied", "bytes_copied",
                 "batches", "aborted_handoffs")

    def __init__(self) -> None:
        self.partitions_moved = 0
        self.cells_copied = 0
        self.bytes_copied = 0
        self.batches = 0
        self.aborted_handoffs = 0

    def as_dict(self) -> dict:
        return {
            "partitions_moved": self.partitions_moved,
            "cells_copied": self.cells_copied,
            "bytes_copied": self.bytes_copied,
            "batches": self.batches,
            "aborted_handoffs": self.aborted_handoffs,
        }

    def __repr__(self) -> str:
        return (
            f"<MigrationStats moved={self.partitions_moved} "
            f"cells={self.cells_copied} batches={self.batches} "
            f"aborted={self.aborted_handoffs}>"
        )


class BatchCost:
    """Cost of the next migration batch, yielded to the driving loop."""

    __slots__ = ("src", "dst", "cells", "nbytes")

    def __init__(self, src: int, dst: int, cells: int, nbytes: int):
        self.src = src
        self.dst = dst
        self.cells = cells
        self.nbytes = nbytes

    def __repr__(self) -> str:
        return (f"BatchCost({self.src}->{self.dst}, cells={self.cells}, "
                f"bytes={self.nbytes})")


def migrate_partition(
    cluster: Any,
    move: Move,
    batch_cells: int = DEFAULT_BATCH_CELLS,
    stats: Optional[MigrationStats] = None,
) -> Generator[BatchCost, None, bool]:
    """Step generator moving one partition per the protocol above.

    Yields a :class:`BatchCost` before each batch copy; the caller
    resumes the generator once the batch's simulated (or zero, direct
    mode) transfer time elapsed.  Returns ``True`` when the handoff
    committed, ``False`` when it aborted (rolled back cleanly).
    """
    if stats is None:
        stats = MigrationStats()
    topology: Topology = cluster.topology
    pid = move.partition_id
    try:
        # Registration can legitimately fail under chaos: a fail-over
        # between planning and execution may have evicted the source
        # from the replica list or killed the destination.  The move is
        # simply skipped; the plan's remaining moves still run.
        handoff = topology.begin_handoff(pid, move.src, move.dst)
    except TellError:
        stats.aborted_handoffs += 1
        return False
    dst_node = cluster.nodes.get(move.dst)
    if dst_node is None or not dst_node.alive:
        topology.abort_handoff(handoff)
        stats.aborted_handoffs += 1
        return False
    dst_node.host_partition(pid)
    try:
        master_id = topology.owner_of(pid)
        master_store = cluster.nodes[master_id].partition(pid)
        for space in sorted(master_store.spaces):
            # Insertion order, not sort order: spaces may mix key types
            # (unorderable), and dict order is deterministic under the
            # sim.  The snapshot is only a work list -- each batch reads
            # the master's *current* cell at copy time.
            keys = list(master_store.spaces[space].keys())
            for start in range(0, len(keys), batch_cells):
                chunk = keys[start:start + batch_cells]
                cells = master_store.spaces.get(space)
                nbytes = 24 * len(chunk)
                if cells is not None:
                    for key in chunk:
                        cell = cells.get(key)
                        if cell is not None:
                            nbytes += approx_size(key) + approx_size(cell.value)
                yield BatchCost(move.src, move.dst, len(chunk), nbytes)
                # Simulated time passed: the handoff may have been
                # aborted by a fail-over, or the master may have moved.
                if not topology.handoff_active(handoff):
                    _drop_partial(cluster, move, pid)
                    stats.aborted_handoffs += 1
                    return False
                master_id = topology.owner_of(pid)
                master_store = cluster.nodes[master_id].partition(pid)
                cells = master_store.spaces.get(space)
                copied = 0
                if cells is not None:
                    for key in chunk:
                        cell = cells.get(key)
                        if cell is not None:
                            dst_node.copy_cell(pid, space, key, cell)
                            copied += 1
                stats.cells_copied += copied
                stats.bytes_copied += nbytes
                stats.batches += 1
        if not topology.handoff_active(handoff):
            _drop_partial(cluster, move, pid)
            stats.aborted_handoffs += 1
            return False
        topology.finish_handoff(handoff)
        src_node = cluster.nodes.get(move.src)
        if src_node is not None and src_node.alive:
            src_node.release_partition(pid, topology.epoch)
        stats.partitions_moved += 1
        return True
    except TellError:
        # Source or destination died mid-copy: unwind the registration.
        if topology.handoff_active(handoff):
            topology.abort_handoff(handoff)
        _drop_partial(cluster, move, pid)
        stats.aborted_handoffs += 1
        return False


def _drop_partial(cluster: Any, move: Move, pid: int) -> None:
    """Remove the destination's partial copy unless it still legitimately
    holds a replica (e.g. the fail-over promoted a *different* plan)."""
    dst_node = cluster.nodes.get(move.dst)
    if dst_node is None or not dst_node.alive:
        return
    replicas = cluster.partition_map.assignments[pid].replicas
    if move.dst not in replicas:
        dst_node.drop_partition(pid)


def run_moves_direct(
    cluster: Any,
    moves: Sequence[Move],
    batch_cells: int = DEFAULT_BATCH_CELLS,
    stats: Optional[MigrationStats] = None,
) -> MigrationStats:
    """Drive a list of moves synchronously (the embedded-database path).

    The direct runner models no time, so batch costs are consumed
    without waiting; state transitions are identical to the simulated
    path.
    """
    if stats is None:
        stats = MigrationStats()
    for move in moves:
        steps = migrate_partition(cluster, move, batch_cells, stats)
        while True:
            try:
                next(steps)
            except StopIteration:
                break
    return stats


# -- leak checking (the _backfill_index lesson, applied to migrations) -------


def capture_pins(commit_managers: Sequence[Any]) -> List[Tuple[int, Tuple, int]]:
    """Snapshot of every CM's active-transaction pins and lav.

    Taken before a migration; :func:`assert_migration_clean` compares
    against it afterwards to prove the migration opened no transaction
    and pinned no version (an aborted migration must not hold the lav
    down the way the old ``Session._backfill_index`` leak did).
    """
    return [
        (
            manager.cm_id,
            tuple(tid for tid, _base, _pn in manager.active_transactions()),
            manager.lowest_active_version(),
        )
        for manager in commit_managers
    ]


def assert_migration_clean(
    cluster: Any,
    commit_managers: Sequence[Any] = (),
    pins_before: Optional[List[Tuple[int, Tuple, int]]] = None,
) -> None:
    """Assert a finished (or aborted) migration leaked nothing.

    Checks the topology invariants (no residual handoffs, hosting
    matches assignment) and -- when ``pins_before`` was captured on a
    quiescent deployment -- that the commit managers' active-transaction
    sets and lav are unchanged: no open transaction or lav pin survives
    an aborted migration.
    """
    cluster.topology.assert_no_leaks(cluster)
    if pins_before is not None:
        pins_after = capture_pins(commit_managers)
        if pins_after != pins_before:
            from repro.errors import InvalidState

            raise InvalidState(
                f"migration leaked transaction state: pins before "
                f"{pins_before!r} != after {pins_after!r}"
            )
