"""Versioned topology: the ownership layer behind live elasticity.

:class:`Topology` wraps the cluster's partitioner and
:class:`~repro.store.partition.PartitionMap` behind a *versioned* surface:
every ownership change (node join/leave, handoff begin/finish/abort,
fail-over, replica restore) advances a monotonically increasing **epoch**
and is recorded in ``epoch_log`` -- which is what makes migration
schedules auditable and fixed-seed deterministic.

Encapsulation contract (enforced by lint rule RL013): the attributes
``epoch``, ``epoch_log``, and ``_handoffs`` may only be *written* inside
the ``repro.elastic`` package.  Everything else in the tree -- the
management node, the fabric, the admin API -- mutates ownership through
the methods here, never by poking the partition map's epoch state
directly.  Reads are free (observability gauges report the epoch).

The static placement path is untouched by construction: a Topology is
built around the *same* partitioner / partition-map objects the cluster
already owns, so deployments that never call an elastic operation run
byte-identically to the pre-elasticity tree (the perf-guard digest pins
this down).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import InvalidState, NodeUnavailable
from repro.store.partition import (HashPartitioner, PartitionMap,
                                   RangePartitioner)

#: Placement kinds understood by :class:`PlacementSpec`.
PLACEMENT_KINDS = ("hash", "range")


class PlacementSpec:
    """Parsed ``placement=`` configuration: kind + virtual-node count.

    The string forms accepted by :func:`parse` are ``"hash"``,
    ``"range"``, and either with an explicit virtual-node (= partitions
    per node) count: ``"hash:16"``.  Without a count the deployment's
    ``partitions_per_node`` applies.
    """

    __slots__ = ("kind", "virtual_nodes")

    def __init__(self, kind: str, virtual_nodes: Optional[int] = None):
        if kind not in PLACEMENT_KINDS:
            raise InvalidState(
                f"unknown placement kind {kind!r} "
                f"(expected one of {', '.join(PLACEMENT_KINDS)})"
            )
        if virtual_nodes is not None and virtual_nodes < 1:
            raise InvalidState("placement needs at least one virtual node")
        self.kind = kind
        self.virtual_nodes = virtual_nodes

    @classmethod
    def parse(cls, value: "str | PlacementSpec") -> "PlacementSpec":
        if isinstance(value, PlacementSpec):
            return value
        text = str(value).strip().lower()
        if ":" in text:
            kind, _, count = text.partition(":")
            try:
                virtual_nodes: Optional[int] = int(count)
            except ValueError:
                raise InvalidState(
                    f"malformed virtual-node count in placement {value!r}"
                ) from None
        else:
            kind, virtual_nodes = text, None
        return cls(kind, virtual_nodes)

    def partitions_for(self, n_nodes: int, partitions_per_node: int) -> int:
        per_node = self.virtual_nodes or partitions_per_node
        return n_nodes * per_node

    def make_partitioner(self, n_partitions: int) -> Any:
        if self.kind == "range":
            return RangePartitioner(n_partitions)
        return HashPartitioner(n_partitions)

    def __repr__(self) -> str:
        if self.virtual_nodes is None:
            return f"PlacementSpec({self.kind!r})"
        return f"PlacementSpec({self.kind!r}, virtual_nodes={self.virtual_nodes})"


class Handoff:
    """One in-flight partition handoff: ``dst`` takes over ``src``'s slot.

    While the handoff runs, ``dst`` rides the partition's replica list as
    an extra backup, so every new write reaches it through the ordinary
    synchronous-replication path; the migration coroutine only has to
    stream the *existing* cells.
    """

    __slots__ = ("partition_id", "src", "dst", "started_epoch")

    def __init__(self, partition_id: int, src: int, dst: int,
                 started_epoch: int):
        self.partition_id = partition_id
        self.src = src
        self.dst = dst
        self.started_epoch = started_epoch

    def __repr__(self) -> str:
        return (f"Handoff(p{self.partition_id} {self.src}->{self.dst} "
                f"@e{self.started_epoch})")


class Move:
    """A planned handoff: partition ``pid``'s ``src`` slot moves to ``dst``."""

    __slots__ = ("partition_id", "src", "dst")

    def __init__(self, partition_id: int, src: int, dst: int):
        self.partition_id = partition_id
        self.src = src
        self.dst = dst

    def __repr__(self) -> str:
        return f"Move(p{self.partition_id} {self.src}->{self.dst})"


class Topology:
    """Versioned ownership map over a partitioner + partition map."""

    def __init__(self, partitioner: Any, partition_map: PartitionMap,
                 placement: Optional[PlacementSpec] = None):
        self.partitioner = partitioner
        self.partition_map = partition_map
        self.placement = placement or PlacementSpec("hash")
        self.epoch = 1
        self.epoch_log: List[Tuple[int, str]] = [(1, "initial")]
        self._handoffs: Dict[int, Handoff] = {}

    # -- read surface -------------------------------------------------------

    @property
    def n_partitions(self) -> int:
        return self.partitioner.n_partitions

    def node_ids(self) -> List[int]:
        return list(self.partition_map.node_ids)

    def owner_of(self, partition_id: int) -> int:
        return self.partition_map.assignments[partition_id].replicas[0]

    def ownership(self) -> Dict[int, Tuple[int, ...]]:
        """Immutable snapshot: partition id -> replica tuple (master first)."""
        return {
            pid: tuple(assignment.replicas)
            for pid, assignment in sorted(
                self.partition_map.assignments.items()
            )
        }

    def migrations_in_flight(self) -> List[Handoff]:
        return [self._handoffs[pid] for pid in sorted(self._handoffs)]

    def handoff_active(self, handoff: Handoff) -> bool:
        """True while this exact handoff is still registered (a fail-over
        may abort it out from under the migration coroutine)."""
        return self._handoffs.get(handoff.partition_id) is handoff

    def master_counts(self) -> Dict[int, int]:
        counts = {node_id: 0 for node_id in self.partition_map.node_ids}
        for assignment in self.partition_map.assignments.values():
            master = assignment.replicas[0]
            if master in counts:
                counts[master] += 1
        return counts

    def is_balanced(self) -> bool:
        """Master counts within one of each other and nothing in flight."""
        if self._handoffs:
            return False
        counts = self.master_counts()
        if not counts:
            return True
        return max(counts.values()) - min(counts.values()) <= 1

    # -- epoch bookkeeping ---------------------------------------------------

    def _bump(self, reason: str) -> int:
        self.epoch += 1
        self.epoch_log.append((self.epoch, reason))
        return self.epoch

    # -- membership ----------------------------------------------------------

    def add_node(self, node_id: int) -> int:
        """Register a joined (empty) storage node; returns the new epoch."""
        if node_id in self.partition_map.node_ids:
            raise InvalidState(f"node {node_id} is already a member")
        self.partition_map.node_ids.append(node_id)
        return self._bump(f"add-node:{node_id}")

    def remove_node(self, node_id: int) -> int:
        """Deregister a drained node (it must host no replicas)."""
        hosted = self.partition_map.partitions_hosted_by(node_id)
        if hosted:
            raise InvalidState(
                f"node {node_id} still hosts {len(hosted)} partition(s); "
                f"drain before removal"
            )
        if node_id not in self.partition_map.node_ids:
            raise InvalidState(f"node {node_id} is not a member")
        self.partition_map.node_ids.remove(node_id)
        return self._bump(f"remove-node:{node_id}")

    # -- handoffs -------------------------------------------------------------

    def begin_handoff(self, partition_id: int, src: int, dst: int) -> Handoff:
        """Start moving ``src``'s replica slot of ``partition_id`` to ``dst``.

        ``dst`` joins the replica list as an extra backup immediately, so
        new writes replicate to it while existing cells stream over.
        """
        if partition_id in self._handoffs:
            raise InvalidState(
                f"partition {partition_id} already has a handoff in flight"
            )
        replicas = self.partition_map.assignments[partition_id].replicas
        if src not in replicas:
            raise InvalidState(
                f"node {src} does not hold a replica of partition "
                f"{partition_id}"
            )
        if dst in replicas:
            raise InvalidState(
                f"node {dst} already holds a replica of partition "
                f"{partition_id}"
            )
        self.partition_map.add_replica(partition_id, dst)
        handoff = Handoff(partition_id, src, dst, self.epoch)
        self._handoffs[partition_id] = handoff
        self._bump(f"handoff-begin:p{partition_id}:{src}->{dst}")
        return handoff

    def finish_handoff(self, handoff: Handoff) -> int:
        """Atomically promote ``dst`` into ``src``'s slot and drop ``src``.

        If ``src`` was the master, ``dst`` becomes the master in the same
        epoch step -- there is never an instant without an owner.
        """
        if not self.handoff_active(handoff):
            raise InvalidState(f"{handoff!r} is no longer active")
        replicas = self.partition_map.assignments[handoff.partition_id].replicas
        replicas.remove(handoff.dst)          # the temporary backup entry
        index = replicas.index(handoff.src)
        replicas[index] = handoff.dst
        del self._handoffs[handoff.partition_id]
        return self._bump(
            f"handoff-finish:p{handoff.partition_id}:"
            f"{handoff.src}->{handoff.dst}"
        )

    def abort_handoff(self, handoff: Handoff) -> int:
        """Roll a handoff back: ``dst`` leaves the replica list; ``src``
        keeps its slot.  Idempotent against a fail-over that already
        evicted ``dst``."""
        if self._handoffs.get(handoff.partition_id) is handoff:
            del self._handoffs[handoff.partition_id]
        replicas = self.partition_map.assignments[handoff.partition_id].replicas
        if handoff.dst in replicas and handoff.src in replicas:
            replicas.remove(handoff.dst)
        return self._bump(
            f"handoff-abort:p{handoff.partition_id}:"
            f"{handoff.src}->{handoff.dst}"
        )

    # -- failure handling ------------------------------------------------------

    def fail_over(self, dead_node_id: int,
                  live_node_ids: Sequence[int]) -> List[int]:
        """Epoch-bumping fail-over (the management node's entry point).

        Handoffs touching the dead node abort first: a half-copied
        destination must never be promoted to master by the generic
        fail-over path.  Returns the degraded partition ids, exactly like
        :meth:`PartitionMap.fail_over`.
        """
        for handoff in list(self._handoffs.values()):
            if dead_node_id in (handoff.src, handoff.dst):
                self.abort_handoff(handoff)
        degraded = self.partition_map.fail_over(dead_node_id, live_node_ids)
        self._bump(f"fail-over:{dead_node_id}")
        return degraded

    def add_replica(self, partition_id: int, node_id: int) -> int:
        """Epoch-bumping replica registration (RF restoration path)."""
        self.partition_map.add_replica(partition_id, node_id)
        return self._bump(f"add-replica:p{partition_id}:{node_id}")

    # -- rebalance planning -----------------------------------------------------

    def plan_rebalance(self) -> List[Move]:
        """Deterministic master-balancing plan.

        Nodes are processed in sorted id order; surplus nodes donate
        their highest-numbered mastered partitions to deficit nodes.  A
        donation is skipped when the target already holds a replica of
        that partition (moving it there would collapse the replica set);
        repeated rebalance rounds converge regardless.
        """
        nodes = sorted(self.partition_map.node_ids)
        if not nodes:
            return []
        mastered: Dict[int, List[int]] = {node_id: [] for node_id in nodes}
        for pid, assignment in sorted(self.partition_map.assignments.items()):
            if pid in self._handoffs:
                continue  # already moving; replanning it would collide
            master = assignment.replicas[0]
            if master in mastered:
                mastered[master].append(pid)
        total = sum(len(pids) for pids in mastered.values())
        base, remainder = divmod(total, len(nodes))
        desired = {
            node_id: base + (1 if index < remainder else 0)
            for index, node_id in enumerate(nodes)
        }
        deficits = [
            node_id for node_id in nodes
            if len(mastered[node_id]) < desired[node_id]
        ]
        moves: List[Move] = []
        for src in nodes:
            surplus = mastered[src][desired[src]:]
            for pid in reversed(surplus):
                dst = self._pick_target(pid, deficits, mastered, desired)
                if dst is None:
                    continue
                moves.append(Move(pid, src, dst))
                mastered[dst].append(pid)
                if len(mastered[dst]) >= desired[dst]:
                    deficits.remove(dst)
        return moves

    def _pick_target(self, partition_id: int, deficits: List[int],
                     mastered: Dict[int, List[int]],
                     desired: Dict[int, int]) -> Optional[int]:
        replicas = self.partition_map.assignments[partition_id].replicas
        for node_id in deficits:
            if node_id not in replicas:
                return node_id
        return None

    def plan_drain(self, node_id: int) -> List[Move]:
        """Every replica slot ``node_id`` holds, mapped to a new host.

        Targets are the least-loaded (by hosted partitions) other members
        not already holding the partition, ties broken by node id --
        fully deterministic.
        """
        others = sorted(
            member for member in self.partition_map.node_ids
            if member != node_id
        )
        if not others:
            raise NodeUnavailable(
                f"node {node_id} is the last member; nothing can absorb "
                f"its partitions"
            )
        load = {member: 0 for member in others}
        for assignment in self.partition_map.assignments.values():
            for replica in assignment.replicas:
                if replica in load:
                    load[replica] += 1
        moves: List[Move] = []
        for pid in sorted(
            self.partition_map.partitions_hosted_by(node_id)
        ):
            if pid in self._handoffs:
                continue  # already moving; replanning it would collide
            replicas = self.partition_map.assignments[pid].replicas
            eligible = [m for m in others if m not in replicas]
            if not eligible:
                raise NodeUnavailable(
                    f"no eligible host for partition {pid} off node "
                    f"{node_id}"
                )
            dst = min(eligible, key=lambda member: (load[member], member))
            load[dst] += 1
            moves.append(Move(pid, node_id, dst))
        return moves

    # -- invariants -------------------------------------------------------------

    def assert_no_leaks(self, cluster: Any) -> None:
        """Post-migration leak check (the ``_backfill_index`` lesson).

        After any migration -- committed *or aborted* -- the topology
        must hold no residual handoff state, every node must host exactly
        the partitions the map assigns it (modulo moved-out tombstones),
        and no replica list may reference an unknown or dead node.
        Raises :class:`InvalidState` on the first violation.
        """
        if self._handoffs:
            raise InvalidState(
                f"leaked handoff state: {self.migrations_in_flight()!r}"
            )
        members = set(self.partition_map.node_ids)
        hosted_by_map: Dict[int, set] = {}
        for pid, assignment in sorted(self.partition_map.assignments.items()):
            seen = set()
            for replica in assignment.replicas:
                if replica in seen:
                    raise InvalidState(
                        f"partition {pid} lists node {replica} twice"
                    )
                seen.add(replica)
                if replica not in members:
                    raise InvalidState(
                        f"partition {pid} references non-member node "
                        f"{replica}"
                    )
                node = cluster.nodes.get(replica)
                if node is None or not node.alive:
                    raise InvalidState(
                        f"partition {pid} references dead node {replica}"
                    )
                if pid not in node.partitions:
                    raise InvalidState(
                        f"node {replica} is assigned partition {pid} but "
                        f"does not host it"
                    )
                hosted_by_map.setdefault(replica, set()).add(pid)
        for node_id in sorted(members):
            node = cluster.nodes.get(node_id)
            if node is None or not node.alive:
                continue
            assigned = hosted_by_map.get(node_id, set())
            for pid in sorted(node.partitions):
                if pid not in assigned:
                    raise InvalidState(
                        f"node {node_id} hosts partition {pid} the map "
                        f"does not assign to it (migration residue)"
                    )

    def __repr__(self) -> str:
        return (
            f"<Topology epoch={self.epoch} nodes={len(self.partition_map.node_ids)} "
            f"partitions={self.n_partitions} "
            f"handoffs={len(self._handoffs)}>"
        )
