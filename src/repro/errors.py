"""Exception hierarchy for the Tell reproduction.

Every error raised by the library derives from :class:`TellError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the common cases (conflicts, missing keys,
node failures) that callers typically handle individually.
"""

from __future__ import annotations


class TellError(Exception):
    """Base class for all errors raised by this library."""


class ConflictError(TellError):
    """A store-conditional (LL/SC) write found the cell changed.

    Raised during commit when another transaction has applied a conflicting
    update since the record was load-linked.  The transaction must abort.
    """


class TransactionAborted(TellError):
    """The transaction was aborted (conflict, constraint, or user abort)."""

    def __init__(self, tid: int, reason: str = ""):
        super().__init__(f"transaction {tid} aborted: {reason}")
        self.tid = tid
        self.reason = reason


class KeyNotFound(TellError):
    """The requested key does not exist in the storage layer."""


class DuplicateKey(TellError):
    """A unique index already contains an entry for the inserted key."""


class NodeUnavailable(TellError):
    """The addressed node has crashed and no replica could take over."""


class WrongOwner(TellError):
    """The addressed node no longer owns the partition (it migrated).

    Raised during live rebalancing (:mod:`repro.elastic`) when a request
    reaches a node after the partition's ownership moved in a newer
    topology epoch.  The request is safe to re-issue: the
    ``WrongOwnerRedirect`` dispatch interceptor re-routes it against the
    current partition map.  The error is raised *before* any state
    mutation, so redirected retries never double-apply.
    """

    def __init__(self, partition_id: int, node_id: int, owner_epoch: int = -1):
        super().__init__(
            f"partition {partition_id} is no longer owned by node "
            f"{node_id} (topology epoch {owner_epoch})"
        )
        self.partition_id = partition_id
        self.node_id = node_id
        self.owner_epoch = owner_epoch


class NoCapacity(TellError):
    """The storage layer ran out of memory capacity for the requested put."""


class InvalidState(TellError):
    """An operation was attempted in a state that does not permit it."""


class SqlError(TellError):
    """Base class for SQL front-end errors."""


class SqlSyntaxError(SqlError):
    """The SQL text could not be parsed."""

    def __init__(self, message: str, position: int = -1):
        super().__init__(message)
        self.position = position


class SqlPlanError(SqlError):
    """The parsed statement cannot be planned (unknown table/column, ...)."""


class SchemaError(TellError):
    """Catalog-level violation (duplicate table, unknown column, ...)."""


class NoResultRows(SqlError):
    """``ResultSet.one()`` was called on an empty result."""


class MultipleResultRows(SqlError):
    """``ResultSet.one()`` was called on a result with several rows."""
