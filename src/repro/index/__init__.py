"""Latch-free distributed index structures (Section 5.3)."""

from repro.index.btree import BTreeNode, DistributedBTree, IndexCache

__all__ = ["BTreeNode", "DistributedBTree", "IndexCache"]
