"""A latch-free distributed B+tree stored in the shared record store.

Following Section 5.3, every tree node is one key-value pair in the
storage system, and all structural changes are installed with LL/SC
conditional writes -- no node is ever modified in place, so no latches
exist and system-wide progress is guaranteed (a failed conditional write
simply retries on the fresh copy).

The concrete design is a *B-link tree* (Lehman & Yao), the classic
latch-free-friendly B+tree variant the Bw-tree also builds on: every node
carries a ``high_key`` and a ``right_id`` sibling pointer, so a reader
that lands on a node that has since split simply follows the link
rightwards.  This makes half-finished splits harmless to concurrent
readers and writers on other processing nodes.

Index entries are composite ``(key, rid)`` pairs, which makes every entry
unique even for non-unique secondary indexes, and -- as Section 5.3.2
prescribes -- carry *no versioning information*: one entry per record,
maintained only when the indexed key changes.

Caching (Section 5.3.1): inner nodes are cached on the processing node;
leaf nodes are always fetched from the store.  When a fetched leaf does
not cover the probed key (its range no longer matches what the cached
parent promised), the reader follows sibling links for correctness and
invalidates the cached ancestors so the next traversal re-fetches them.
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, Generator, List, Optional, Tuple

from repro import effects
from repro.core.spaces import INDEX_SPACE, META_SPACE
from repro.errors import DuplicateKey, InvalidState
from repro.store.cell import approx_size

EntryKey = Tuple[Any, ...]  # (index key tuple, rid)

#: Upper bound greater than any rid, used for inclusive upper bounds.
MAX_RID = float("inf")


class BTreeNode:
    """Immutable node: leaves hold entry keys, inner nodes separators."""

    __slots__ = ("node_id", "level", "entries", "children", "high_key",
                 "right_id", "_size")

    def __init__(
        self,
        node_id: int,
        level: int,
        entries: Tuple[EntryKey, ...],
        children: Optional[Tuple[int, ...]] = None,
        high_key: Optional[EntryKey] = None,
        right_id: Optional[int] = None,
    ):
        self.node_id = node_id
        self.level = level
        self.entries = entries
        self.children = children  # None for leaves; len(entries)+1 for inner
        self.high_key = high_key  # None means +infinity
        self.right_id = right_id
        self._size = -1

    @property
    def is_leaf(self) -> bool:
        return self.level == 0

    def covers(self, entry_key: EntryKey) -> bool:
        """Does this node's range still include ``entry_key``?"""
        return self.high_key is None or entry_key < self.high_key

    def child_for(self, entry_key: EntryKey) -> int:
        assert self.children is not None
        position = bisect.bisect_right(self.entries, entry_key)
        return self.children[position]

    def approx_size(self) -> int:
        # Estimated from the first entry: entries of one index are
        # homogeneous, and sizing is on the hot path of every node write.
        if self._size < 0:
            per_entry = approx_size(self.entries[0]) if self.entries else 8
            size = 24 + per_entry * len(self.entries)
            if self.children is not None:
                size += 8 * len(self.children)
            self._size = size
        return self._size

    def __repr__(self) -> str:
        kind = "leaf" if self.is_leaf else f"inner(l{self.level})"
        return f"<BTreeNode {self.node_id} {kind} {len(self.entries)} entries>"


class IndexCache:
    """PN-local cache of inner nodes: node_id -> (node, cell_version)."""

    def __init__(self) -> None:
        self._nodes: Dict[int, Tuple[BTreeNode, int]] = {}
        self.hits = 0
        self.misses = 0

    def get(self, node_id: int) -> Optional[Tuple[BTreeNode, int]]:
        cached = self._nodes.get(node_id)
        if cached is not None:
            self.hits += 1
        return cached

    def put(self, node: BTreeNode, cell_version: int) -> None:
        if not node.is_leaf:  # leaves are never cached (Section 5.3.1)
            self._nodes[node.node_id] = (node, cell_version)

    def invalidate(self, node_id: int) -> None:
        self._nodes.pop(node_id, None)

    def clear(self) -> None:
        self._nodes.clear()


class BTreeStats:
    """Traversal / SMO accounting, harvested by ``repro.obs`` collectors.

    Plain integer counters so the hot path pays one increment; never read
    by the protocol itself.
    """

    __slots__ = ("node_fetches", "leaf_fetches", "smo_splits",
                 "smo_retries", "entries_pruned")

    def __init__(self) -> None:
        self.node_fetches = 0
        self.leaf_fetches = 0
        self.smo_splits = 0
        self.smo_retries = 0
        self.entries_pruned = 0


class DistributedBTree:
    """One index tree; instantiate per (index, processing node) pair.

    All PNs operating on the same ``index_id`` share the tree through the
    store; the object itself only holds the PN-local cache.
    """

    def __init__(
        self,
        index_id: int,
        max_entries: int = 64,
        cache: Optional[IndexCache] = None,
        cache_inner_nodes: bool = True,
    ):
        if max_entries < 4:
            raise InvalidState("B+tree fanout must be at least 4")
        self.index_id = index_id
        self.max_entries = max_entries
        self.stats = BTreeStats()
        self.cache = cache if cache is not None else IndexCache()
        self.cache_inner_nodes = cache_inner_nodes
        # Cached root pointer (node_id, level).  A stale root is safe as a
        # descent entry point (inner nodes are never deleted and sibling
        # links cover splits); it is refreshed when staleness is detected.
        self._root_cache: Optional[Tuple[int, int]] = None

    # -- storage helpers -------------------------------------------------------

    def _node_key(self, node_id: int) -> Tuple[int, int]:
        return (self.index_id, node_id)

    def _root_key(self) -> Tuple[int, str]:
        return (self.index_id, "root")

    def _fetch(self, node_id: int) -> Generator:
        """Fetch a node from the store; returns (node, cell_version)."""
        value, version = yield effects.Get(INDEX_SPACE, self._node_key(node_id))
        if value is None:
            raise InvalidState(
                f"index {self.index_id}: node {node_id} vanished"
            )
        self.cache.misses += 1
        stats = self.stats
        stats.node_fetches += 1
        if value.is_leaf:
            stats.leaf_fetches += 1
        return value, version

    def _load(self, node_id: int, use_cache: bool) -> Generator:
        if use_cache and self.cache_inner_nodes:
            cached = self.cache.get(node_id)
            if cached is not None:
                return cached
        node, version = yield from self._fetch(node_id)
        if use_cache and self.cache_inner_nodes:
            self.cache.put(node, version)
        return node, version

    def _new_node_id(self) -> Generator:
        value = yield effects.Increment(
            META_SPACE, ("counter", ("index_node", self.index_id))
        )
        return value + 1  # id 1 is reserved for the initial root leaf

    # -- lifecycle -------------------------------------------------------------

    def create(self) -> Generator:
        """Initialize an empty tree (id 1 = empty root leaf).

        Safe to race: only the first creator's conditional writes win.
        """
        leaf = BTreeNode(1, 0, ())
        yield effects.PutIfVersion(INDEX_SPACE, self._node_key(1), leaf, 0)
        yield effects.PutIfVersion(INDEX_SPACE, self._root_key(), (1, 0), 0)

    def _root(self) -> Generator:
        if self.cache_inner_nodes and self._root_cache is not None:
            return self._root_cache
        return (yield from self._refresh_root())

    def _refresh_root(self) -> Generator:
        value, _version = yield effects.Get(INDEX_SPACE, self._root_key())
        if value is None:
            raise InvalidState(f"index {self.index_id} does not exist")
        self._root_cache = value
        return value  # (root_node_id, root_level)

    # -- traversal ---------------------------------------------------------------

    def _descend(self, entry_key: EntryKey) -> Generator:
        """Walk to the leaf that should hold ``entry_key``.

        Returns ``(leaf, cell_version, path)`` where ``path[level]`` is the
        node id traversed at that level (used as split-insertion hints).
        Detects stale cached parents: if the store copy of a cached inner
        node no longer covers the key, the cache entry is refreshed
        recursively, exactly the validation rule of Section 5.3.1.
        """
        root_id, root_level = yield from self._root()
        path: Dict[int, int] = {root_level: root_id}
        node_id = root_id
        level = root_level
        while True:
            use_cache = level > 0
            node, version = yield from self._load(node_id, use_cache)
            moved_right = 0
            while not node.covers(entry_key):
                if node.right_id is None:
                    break  # rightmost node covers everything above
                self.cache.invalidate(node_id)
                node_id = node.right_id
                node, version = yield from self._load(node_id, use_cache)
                moved_right += 1
            if moved_right and level == 0:
                # Leaf range mismatch: cached parents were stale; refresh
                # them so future traversals go direct (Section 5.3.1).
                for parent_level in list(path):
                    if parent_level > 0:
                        self.cache.invalidate(path[parent_level])
            path[level] = node_id
            if node.is_leaf:
                return node, version, path
            node_id = node.child_for(entry_key)
            level = node.level - 1
            path[level] = node_id

    # -- lookups ---------------------------------------------------------------

    def lookup(self, key: Any) -> Generator:
        """All rids indexed under ``key`` (non-unique aware)."""
        entries = yield from self.range_entries((key,), (key, MAX_RID))
        return [entry[1] for entry in entries]

    def lookup_many(self, keys: List[Any]) -> Generator:
        """Point lookups for several keys with batched leaf fetches.

        This is the index side of Tell's aggressive batching (Section
        5.1): inner nodes come from the PN cache, so the leaves for all
        probed keys are fetched in a single round trip.  Keys whose leaf
        cannot be predicted from the cache (cold cache, stale range) fall
        back to individual descents.  Returns ``{key: [rids]}``.
        """
        result: Dict[Any, List[int]] = {}
        by_leaf: Dict[int, List[Any]] = {}
        fallback: List[Any] = []
        for key in keys:
            leaf_id = self._cached_leaf_for((key,))
            if leaf_id is None:
                fallback.append(key)
            else:
                by_leaf.setdefault(leaf_id, []).append(key)
        if by_leaf:
            leaf_ids = list(by_leaf.keys())
            responses = yield effects.Batch(
                [effects.Get(INDEX_SPACE, self._node_key(lid)) for lid in leaf_ids]
            )
            for leaf_id, (leaf, _version) in zip(leaf_ids, responses):
                for key in by_leaf[leaf_id]:
                    if leaf is None or not self._leaf_answers(leaf, key):
                        fallback.append(key)
                    else:
                        result[key] = self._rids_in_leaf(leaf, key)
        for key in fallback:
            result[key] = yield from self.lookup(key)
        return result

    def _leaf_answers(self, leaf: BTreeNode, key: Any) -> bool:
        """Can ``leaf`` alone answer a point lookup of ``key``?

        Requires the leaf to cover the whole ``(key, *)`` entry range: the
        key must be below the high key and, if present, not be the very
        first entry (a same-key entry could then live in a left sibling
        after a stale-cache descent).
        """
        if not leaf.is_leaf:
            return False
        if leaf.high_key is not None and (key, MAX_RID) >= leaf.high_key:
            return False
        position = bisect.bisect_left(leaf.entries, (key,))
        if position == 0 and leaf.entries and leaf.entries[0][0] == key:
            return False  # run may extend into the left sibling
        return True

    @staticmethod
    def _rids_in_leaf(leaf: BTreeNode, key: Any) -> List[int]:
        position = bisect.bisect_left(leaf.entries, (key,))
        rids: List[int] = []
        for entry in leaf.entries[position:]:
            if entry[0] != key:
                break
            rids.append(entry[1])
        return rids

    def _cached_leaf_for(self, entry_key: EntryKey) -> Optional[int]:
        """Predict the leaf for ``entry_key`` using only cached nodes."""
        if not self.cache_inner_nodes or self._root_cache is None:
            return None
        node_id, level = self._root_cache
        while level > 0:
            cached = self.cache.get(node_id)
            if cached is None:
                return None
            node, _version = cached
            if not node.covers(entry_key):
                return None  # stale range: take the slow path
            node_id = node.child_for(entry_key)
            level = node.level - 1
        return node_id

    def lookup_unique(self, key: Any) -> Generator:
        """The single rid under ``key`` or None."""
        rids = yield from self.lookup(key)
        if len(rids) > 1:
            # Possible transiently when stale entries await GC; the caller
            # disambiguates by reading the records.
            return rids
        return rids[0] if rids else None

    def range_entries(
        self,
        low: EntryKey,
        high: Optional[EntryKey],
        limit: Optional[int] = None,
    ) -> Generator:
        """Entries with ``low <= (key, rid) < high`` in order.

        ``high=None`` scans to the end of the index.
        """
        leaf, _version, _path = yield from self._descend(low)
        results: List[EntryKey] = []
        while True:
            start = bisect.bisect_left(leaf.entries, low)
            for entry in leaf.entries[start:]:
                if high is not None and entry >= high:
                    return results
                results.append(entry)
                if limit is not None and len(results) >= limit:
                    return results
            if leaf.right_id is None:
                return results
            if high is not None and leaf.high_key is not None and leaf.high_key >= high:
                return results
            leaf, _version = yield from self._fetch(leaf.right_id)

    # -- insert -----------------------------------------------------------------

    def insert(self, key: Any, rid: int, unique: bool = False) -> Generator:
        """Insert the entry ``(key, rid)``.

        With ``unique=True``, an existing entry under the same key raises
        :class:`DuplicateKey` (callers GC dead entries beforehand when the
        duplicate might be a leftover of a deleted record).
        Returns False if the exact entry already existed.
        """
        entry = (key, rid)
        while True:
            leaf, version, path = yield from self._descend(entry)
            position = bisect.bisect_left(leaf.entries, entry)
            if position < len(leaf.entries) and leaf.entries[position] == entry:
                return False
            if unique:
                same_key = [e for e in leaf.entries if e[0] == key]
                if same_key:
                    raise DuplicateKey(
                        f"index {self.index_id}: key {key!r} already present"
                    )
                # A same-key entry could also sit in the left sibling's
                # tail; entries share the key prefix so they cannot span
                # leaves unless this leaf starts with the key.
                if position == 0 and leaf.entries:
                    conflict = yield from self.lookup(key)
                    if conflict:
                        raise DuplicateKey(
                            f"index {self.index_id}: key {key!r} already present"
                        )
            new_entries = leaf.entries[:position] + (entry,) + leaf.entries[position:]
            if len(new_entries) <= self.max_entries:
                updated = BTreeNode(
                    leaf.node_id, 0, new_entries,
                    high_key=leaf.high_key, right_id=leaf.right_id,
                )
                ok, _ = yield effects.PutIfVersion(
                    INDEX_SPACE, self._node_key(leaf.node_id), updated, version
                )
                if ok:
                    return True
                self.stats.smo_retries += 1
                continue  # raced: retry from a fresh descent
            done = yield from self._split_and_insert(leaf, version, new_entries, path)
            if done:
                return True

    def _split_and_insert(
        self,
        node: BTreeNode,
        version: int,
        new_entries: Tuple[EntryKey, ...],
        path: Dict[int, int],
        new_children: Optional[Tuple[int, ...]] = None,
    ) -> Generator:
        """Split ``node`` (already containing the new entry in
        ``new_entries``) and hook the new sibling into the parent.

        Returns False when the conditional write of the left half lost a
        race (caller retries the whole operation).
        """
        mid = len(new_entries) // 2
        split_key = new_entries[mid]
        right_id = yield from self._new_node_id()
        if node.is_leaf:
            right = BTreeNode(
                right_id, 0, new_entries[mid:],
                high_key=node.high_key, right_id=node.right_id,
            )
            left = BTreeNode(
                node.node_id, 0, new_entries[:mid],
                high_key=split_key, right_id=right_id,
            )
        else:
            assert new_children is not None
            # Inner split: the separator at ``mid`` moves up; its right
            # neighbourhood forms the new node.
            right = BTreeNode(
                right_id, node.level, new_entries[mid + 1:],
                children=new_children[mid + 1:],
                high_key=node.high_key, right_id=node.right_id,
            )
            left = BTreeNode(
                node.node_id, node.level, new_entries[:mid],
                children=new_children[: mid + 1],
                high_key=split_key, right_id=right_id,
            )
        yield effects.Put(INDEX_SPACE, self._node_key(right_id), right)
        ok, _ = yield effects.PutIfVersion(
            INDEX_SPACE, self._node_key(node.node_id), left, version
        )
        if not ok:
            # Lost the race; the fresh right node is unreachable garbage.
            yield effects.Delete(INDEX_SPACE, self._node_key(right_id))
            self.stats.smo_retries += 1
            return False
        self.stats.smo_splits += 1
        self.cache.invalidate(node.node_id)
        yield from self._insert_separator(
            node.level + 1, split_key, right_id, path
        )
        return True

    def _insert_separator(
        self, level: int, split_key: EntryKey, child_id: int, path: Dict[int, int]
    ) -> Generator:
        """Install ``split_key -> child_id`` at ``level`` (growing the root
        if the tree is shorter than ``level``)."""
        while True:
            root_id, root_level = yield from self._root()
            if root_level < level:
                grown = yield from self._grow_root(
                    root_id, root_level, level, split_key, child_id
                )
                if grown:
                    return
                continue
            node_id = path.get(level)
            if node_id is None:
                node_id = yield from self._find_level_node(split_key, level)
            node, version = yield from self._fetch(node_id)
            moved = False
            while not node.covers(split_key):
                if node.right_id is None:
                    break
                node_id = node.right_id
                node, version = yield from self._fetch(node_id)
                moved = True
            if node.level != level:
                # Path hint was stale (e.g. root changed); re-resolve.
                path.pop(level, None)
                continue
            position = bisect.bisect_left(node.entries, split_key)
            if position < len(node.entries) and node.entries[position] == split_key:
                return  # separator already installed by a helper
            new_entries = (
                node.entries[:position] + (split_key,) + node.entries[position:]
            )
            new_children = (
                node.children[: position + 1]
                + (child_id,)
                + node.children[position + 1:]
            )
            if len(new_entries) <= self.max_entries:
                updated = BTreeNode(
                    node.node_id, level, new_entries, children=new_children,
                    high_key=node.high_key, right_id=node.right_id,
                )
                ok, _ = yield effects.PutIfVersion(
                    INDEX_SPACE, self._node_key(node.node_id), updated, version
                )
                if ok:
                    self.cache.invalidate(node.node_id)
                    return
                continue
            done = yield from self._split_and_insert(
                node, version, new_entries, path, new_children
            )
            if done:
                return

    def _grow_root(
        self,
        old_root_id: int,
        old_root_level: int,
        new_level: int,
        split_key: EntryKey,
        child_id: int,
    ) -> Generator:
        """Create a taller root; returns False when the root CAS lost."""
        new_root_id = yield from self._new_node_id()
        new_root = BTreeNode(
            new_root_id, new_level, (split_key,),
            children=(old_root_id, child_id),
        )
        yield effects.Put(INDEX_SPACE, self._node_key(new_root_id), new_root)
        current, root_version = yield effects.Get(INDEX_SPACE, self._root_key())
        if current != (old_root_id, old_root_level):
            self._root_cache = current  # our view was stale; adopt reality
            yield effects.Delete(INDEX_SPACE, self._node_key(new_root_id))
            return False
        ok, _ = yield effects.PutIfVersion(
            INDEX_SPACE, self._root_key(), (new_root_id, new_level), root_version
        )
        if ok:
            self._root_cache = (new_root_id, new_level)
        else:
            self._root_cache = None
            yield effects.Delete(INDEX_SPACE, self._node_key(new_root_id))
        return ok

    def _find_level_node(self, entry_key: EntryKey, level: int) -> Generator:
        """Descend from the root to the node at ``level`` covering the key."""
        root_id, root_level = yield from self._root()
        node_id = root_id
        current = root_level
        while current > level:
            node, _version = yield from self._load(node_id, use_cache=True)
            while not node.covers(entry_key):
                if node.right_id is None:
                    break
                self.cache.invalidate(node_id)
                node_id = node.right_id
                node, _version = yield from self._load(node_id, use_cache=True)
            node_id = node.child_for(entry_key)
            current = node.level - 1
        return node_id

    # -- delete ---------------------------------------------------------------

    def delete(self, key: Any, rid: int) -> Generator:
        """Remove the entry ``(key, rid)``; returns False if absent.

        Leaves may become empty; they are not merged (a simplification --
        the Bw-tree merges lazily, and empty leaves are harmless to
        correctness, only to space, which the paper's workloads never
        stressed).  A failed conditional write retries on the fresh copy,
        matching Section 5.4's "GC is retried with the next read".
        """
        entry = (key, rid)
        while True:
            leaf, version, _path = yield from self._descend(entry)
            position = bisect.bisect_left(leaf.entries, entry)
            if position >= len(leaf.entries) or leaf.entries[position] != entry:
                return False
            new_entries = leaf.entries[:position] + leaf.entries[position + 1:]
            updated = BTreeNode(
                leaf.node_id, 0, new_entries,
                high_key=leaf.high_key, right_id=leaf.right_id,
            )
            ok, _ = yield effects.PutIfVersion(
                INDEX_SPACE, self._node_key(leaf.node_id), updated, version
            )
            if ok:
                self.stats.entries_pruned += 1
                return True

    # -- bulk loading ------------------------------------------------------------

    def bulk_build(self, entries: List[EntryKey], fill: float = 0.75) -> Generator:
        """Build the tree bottom-up from sorted entries (initial load).

        Must only be used on an index no other node is accessing -- this
        is the database-population fast path, not a concurrent operation.
        Returns the number of nodes written.
        """
        if sorted(entries) != list(entries):
            raise InvalidState("bulk_build requires sorted entries")
        per_node = max(4, int(self.max_entries * fill))
        # Chunk the leaf level.
        leaf_chunks = [
            tuple(entries[i : i + per_node])
            for i in range(0, len(entries), per_node)
        ] or [()]
        levels: List[List[Tuple[EntryKey, ...]]] = [leaf_chunks]
        while len(levels[-1]) > 1:
            below = levels[-1]
            sep_keys = [chunk[0] for chunk in below]
            inner: List[Tuple[EntryKey, ...]] = []
            for i in range(0, len(below), per_node):
                inner.append(tuple(sep_keys[i : i + per_node]))
            levels.append(inner)
        # Allocate ids for every node in one counter bump.
        total = sum(len(level) for level in levels)
        top = yield effects.Increment(
            META_SPACE, ("counter", ("index_node", self.index_id)), total
        )
        first_id = top - total + 2  # ids start after the reserved root leaf
        ids: List[List[int]] = []
        cursor = first_id
        for level in levels:
            ids.append(list(range(cursor, cursor + len(level))))
            cursor += len(level)

        puts: List[effects.Put] = []
        # Leaves, with sibling links and high keys.
        leaf_ids = ids[0]
        for position, chunk in enumerate(leaf_chunks):
            right_id = leaf_ids[position + 1] if position + 1 < len(leaf_ids) else None
            high = (
                leaf_chunks[position + 1][0]
                if position + 1 < len(leaf_chunks)
                else None
            )
            puts.append(
                effects.Put(
                    INDEX_SPACE,
                    self._node_key(leaf_ids[position]),
                    BTreeNode(leaf_ids[position], 0, chunk,
                              high_key=high, right_id=right_id),
                )
            )
        # Inner levels.
        for level_number in range(1, len(levels)):
            chunks = levels[level_number]
            level_ids = ids[level_number]
            child_ids = ids[level_number - 1]
            child_cursor = 0
            for position, chunk in enumerate(chunks):
                n_children = len(chunk)
                children = tuple(child_ids[child_cursor : child_cursor + n_children])
                child_cursor += n_children
                separators = chunk[1:]  # first key of each child but the first
                right_id = (
                    level_ids[position + 1] if position + 1 < len(level_ids) else None
                )
                high = (
                    chunks[position + 1][0] if position + 1 < len(chunks) else None
                )
                puts.append(
                    effects.Put(
                        INDEX_SPACE,
                        self._node_key(level_ids[position]),
                        BTreeNode(level_ids[position], level_number, separators,
                                  children=children, high_key=high,
                                  right_id=right_id),
                    )
                )
        root_id = ids[-1][0]
        root_level = len(levels) - 1
        puts.append(effects.Put(INDEX_SPACE, self._root_key(), (root_id, root_level)))
        chunk_size = 512
        for i in range(0, len(puts), chunk_size):
            yield effects.Batch(puts[i : i + chunk_size])
        self._root_cache = (root_id, root_level)
        self.cache.clear()
        return total

    # -- whole-index iteration (for scans and verification) -----------------------

    def all_entries(self) -> Generator:
        """Every entry, left to right (used by tests and index rebuilds)."""
        root_id, root_level = yield from self._root()
        node_id = root_id
        level = root_level
        while level > 0:
            node, _version = yield from self._fetch(node_id)
            node_id = node.children[0]
            level = node.level - 1
        results: List[EntryKey] = []
        while node_id is not None:
            leaf, _version = yield from self._fetch(node_id)
            results.extend(leaf.entries)
            node_id = leaf.right_id
        return results
