"""repro-lint: AST-based invariant checker for this codebase.

The reproduction rests on conventions no runtime check can fully guard:
protocol code must *yield* its effects (RL001/RL002), simulated-time
code must never read the wall clock (RL003) or the process-global RNG
(RL004), scheduling-adjacent code must not iterate sets (RL005), effect
and kernel classes must keep the ``__slots__`` hot-path contract
(RL006), and mutable defaults leak state between runs (RL007).

``repro-lint src`` enforces all of it statically; ``--flow`` adds the
interprocedural RF family and ``--atomic`` the yield-point interleaving
and typestate RA family.  See ``docs/static-analysis.md`` for the full
rule catalog, the inline suppression syntax, and the baseline workflow.
"""

from repro.lint.atomic import ATOMIC_RULES, ATOMIC_RULES_BY_CODE
from repro.lint.baseline import Baseline
from repro.lint.engine import (
    Finding,
    LintResult,
    SourceModule,
    lint_paths,
    lint_source,
    lint_sources,
)
from repro.lint.rules import ALL_RULES, RULES_BY_CODE

__all__ = [
    "ALL_RULES",
    "ATOMIC_RULES",
    "ATOMIC_RULES_BY_CODE",
    "Baseline",
    "Finding",
    "LintResult",
    "RULES_BY_CODE",
    "SourceModule",
    "lint_paths",
    "lint_source",
    "lint_sources",
]
