"""The RA rule family: yield-point interleaving and typestate rules.

Every effect ``yield`` in protocol code is a preemption point -- the
kernel may run any other PN/CM/SN coroutine before the result comes
back.  The RA rules statically prove the windows around those points
safe: RA001-RA003 check shared-state atomicity across yields, RA004 and
RA005 check the transaction/validator lifecycle as finite-state
contracts over the call graph.  They run only under
``repro-lint --atomic`` (which implies ``--flow``) and require the
:class:`~repro.lint.flow.atomic.AtomicAnalysis` the engine attaches to
the flow analysis.

Unlike the RF rules, RA rules re-walk the *live* AST of the module under
check (path-sensitive staleness and typestate need statement order and
branch structure the serialized summaries do not keep); modules loaded
from the summary cache still contribute their call-graph facts, so
interprocedural resolution stays warm.
"""

from __future__ import annotations

import ast
from typing import Any, Iterator, List, Optional, Tuple

from repro.lint.flow.atomic import AtomicAnalysis
from repro.lint.flow.rules import _Loc
from repro.lint.index import ModuleSummary, ProjectIndex
from repro.lint.rules import Rule


class AtomicRule(Rule):
    """Base: fetch the atomic analysis off the flow analysis, run the
    module walker once (cached), and yield this rule's findings."""

    def check(self, module: ModuleSummary, tree: ast.Module,
              index: ProjectIndex) -> Iterator[Tuple[Any, str]]:
        flow = getattr(index, "flow", None)
        analysis: Optional[AtomicAnalysis] = getattr(flow, "atomic", None)
        if analysis is None:
            return
        for line, code, message in analysis.module_findings(module, tree):
            if code == self.code:
                yield _Loc(line), message


class RA001StaleReadGuardsWrite(AtomicRule):
    code = "RA001"
    title = "stale pre-yield read guards an unconditional shared write"
    explain = """\
A check-then-act race across a preemption point: a value is read from
shared state, an effect yield suspends the coroutine (any other PN/CM/SN
coroutine may run), and the stale value then decides an *unconditional*
write -- a `yield effects.Put/Delete(...)` or a direct assignment to a
shared object's attribute.  The pre-PR-8 FOR-UPDATE-missing-key bug had
exactly this shape.

RA001 tracks the provenance of every local through yield segments: a
local bound before the last yield is stale, and an `if`/`while` test
using a stale local arms a guard over the block it dominates (including
the fall-through of an early-exit guard).  Any unconditional shared
write under an armed guard is reported with the guard line, the read
origin, and the preemption point between them.

Fix by re-reading the value after the yield, or -- the protocol's
idiomatic answer -- by making the write conditional on the version
observed (`yield effects.PutIfVersion(...)` /
`DeleteIfVersion(...)`), which turns the check-then-act into LL/SC.
Conditional writes are never reported.
"""


class RA002CollectionTornAcrossYield(AtomicRule):
    code = "RA002"
    title = "shared collection mutated on both sides of a yield"
    explain = """\
Structurally mutating a shared dict/list (subscript store or delete) in
one yield segment and again in a later segment assumes nothing touched
the collection while the coroutine was suspended -- but every yield is a
preemption point, and another coroutine may have inserted, removed, or
replaced entries between the two mutations.

RA002 reports a pair of structural mutations of the same shared
footprint in different segments when the later segment contains no
re-read of that footprint before the mutation.  A read after the yield
(a membership test, a `.get(...)`, iterating the collection, or a
`yield from` into a helper that reads it) counts as the recheck and
silences the rule; so does funneling both mutations into the same
segment.

Fix by re-reading (or generation-checking) the collection after the
yield before mutating it again, or by restructuring so all mutations
happen on one side of the preemption point.
"""


class RA003InvariantPairTorn(AtomicRule):
    code = "RA003"
    title = "invariant pair updated on only one side of a yield"
    explain = """\
Some shared attributes only make sense together: CommitManager's
`_active_base`/`_active_pn` map pair, its `completed` watermark and
`_next_stripe` counter, SharedBufferVersionSync's `_entries` and
`_unit_members`.  Declared in
`repro.lint.flow.atomic.INVARIANT_PAIRS`, each pair must be updated
atomically -- in the same yield segment -- or an interleaved coroutine
can observe the invariant half-established.

RA003 fires on a function that writes both members of a pair but has a
yield segment updating only one of them.  All shipped writers are
synchronous methods (segment 0 throughout), which is the point: keeping
pair updates out of coroutines is the invariant this rule freezes.

Fix by moving both writes to the same side of the yield (usually by
hoisting the pair update into a synchronous helper called after the
last yield).
"""


class RA004TxnUseAfterFinish(AtomicRule):
    code = "RA004"
    title = "transaction used after commit/abort, or finished twice"
    explain = """\
`Transaction.commit()`/`.abort()` release the snapshot and write set;
the object is dead afterwards.  A read or write through a finished
transaction silently operates on released state (stale snapshot bounds,
cleared buffers), and a second finish double-releases the snapshot --
both previously only detectable by the runtime schedule explorer, and
only on schedules it happened to run.

RA004 tracks a finite-state contract (RUNNING -> FINISHED) per
transaction-typed receiver: locals bound from `pn.begin()`, annotated
parameters, `self` inside Transaction methods, and attribute chains
like `self._txn`.  Direct `.commit()`/`.abort()`/`._finish_abort()`
calls finish the receiver on that path; `read`/`read_many`/
`read_for_update`/`insert`/`update`/`delete` afterwards are reported,
as is a second finish.  Passing the transaction to a callee whose
summary (a call-graph fixpoint) finishes it downgrades the state to
MAYBE-finished -- enough to stop false "still running" assumptions but
deliberately not reported, since a flow-insensitive summary cannot
prove the finishing path was taken.  Rebinding the name resets the
contract; branch joins keep a state only when both arms agree.

Fix by restructuring so every use dominates the finish (or starts a
fresh transaction).
"""


class RA005AbortNotReported(AtomicRule):
    code = "RA005"
    title = "abort path skips ReportAborted or validator on_aborted"
    explain = """\
Aborting has two halves and both are protocol obligations.  (a) Setting
`txn.state = TxnState.ABORTED` without a following
`yield effects.ReportAborted(tid)` (or a `yield from` into a helper
that reaches one) leaves the transaction in the commit manager's active
window forever, pinning the GC horizon.  (b) A class that registers
commit intents with a validator (`.validate_and_register(...)`) must
also wire the abort path (`.on_aborted(...)` on the same receiver
somewhere in the class), or every LL/SC-failure abort leaks an
in-flight entry in the validator and SSI's dangerous-structure check
degrades into false positives against ghosts.

RA005(a) is path-local: the discharge must appear at or after the state
write in the same function (delegation counts via a ReportAborted
reachability fixpoint over `yield from` edges).  RA005(b) is class
-local over serialized call facts, so cached modules are checked too.

Fix by delivering `ReportAborted` on every abort path (the shipped
idiom is `Transaction._finish_abort`) and by calling
`validator.on_aborted(tid)` wherever registrations can be abandoned.
"""


ATOMIC_RULES: List[Rule] = [
    RA001StaleReadGuardsWrite(),
    RA002CollectionTornAcrossYield(),
    RA003InvariantPairTorn(),
    RA004TxnUseAfterFinish(),
    RA005AbortNotReported(),
]

ATOMIC_RULES_BY_CODE = {rule.code: rule for rule in ATOMIC_RULES}
