"""Baseline support: grandfather existing findings, block new ones.

A baseline is a checked-in JSON file mapping finding fingerprints
(``rule``, path, stripped source line) to an allowed count.  Findings
matching a baseline entry are filtered out of the run (reported only in
the summary), so ``repro-lint`` can be turned on red-free over a tree
with known debt while still failing on anything *new*.  Fixing a
baselined finding never breaks the build -- unmatched entries are simply
stale; ``--write-baseline`` regenerates the file from the current tree.

The intended workflow (docs/static-analysis.md): real bugs get fixed,
intentional violations get an inline ``# repro-lint: ignore[...]`` with a
justification, and the baseline holds only debt that is queued for a
later PR.  The shipped baseline is empty.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle is type-only
    from repro.lint.engine import Finding

_VERSION = 1


class Baseline:
    """In-memory view of a baseline file."""

    def __init__(self, counts: Dict[Tuple[str, str, str], int],
                 path: str = "") -> None:
        self.counts = counts
        self.path = path

    @classmethod
    def empty(cls) -> "Baseline":
        return cls({})

    @classmethod
    def load(cls, path: str) -> "Baseline":
        if not os.path.exists(path):
            return cls({}, path)
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        if data.get("version") != _VERSION:
            raise ValueError(
                f"unsupported baseline version {data.get('version')!r} "
                f"in {path}"
            )
        counts: Dict[Tuple[str, str, str], int] = {}
        for entry in data.get("findings", []):
            key = (entry["rule"], entry["path"], entry["line_text"])
            counts[key] = counts.get(key, 0) + int(entry.get("count", 1))
        return cls(counts, path)

    @classmethod
    def from_findings(cls, findings: List["Finding"],
                      path: str = "") -> "Baseline":
        counts: Dict[Tuple[str, str, str], int] = {}
        for finding in findings:
            key = finding.fingerprint()
            counts[key] = counts.get(key, 0) + 1
        return cls(counts, path)

    def filter(self, findings: List["Finding"]) -> Tuple[List["Finding"], int]:
        """Split findings into (new, baselined-count)."""
        remaining = dict(self.counts)
        kept: List["Finding"] = []
        matched = 0
        for finding in findings:
            key = finding.fingerprint()
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
                matched += 1
            else:
                kept.append(finding)
        return kept, matched

    def save(self, path: str) -> None:
        entries = [
            {"rule": rule, "path": rel_path, "line_text": line_text,
             "count": count}
            for (rule, rel_path, line_text), count in sorted(self.counts.items())
        ]
        payload = {"version": _VERSION, "findings": entries}
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
