"""On-disk pass-1/pass-2 summary cache behind ``repro-lint --changed``.

Both passes produce pure-data summaries (:class:`ModuleSummary`,
:class:`ModuleFlow`), so an incremental run can reload the unchanged
part of the project from JSON instead of re-parsing it: only the files
``git diff`` reports (plus, under ``--flow``, their reverse import
dependents -- a change to a callee can introduce findings in its
callers) are parsed and linted live; everything else joins the project
index as cached data.

Entries are keyed by path and validated by mtime+size, so a rebuilt
checkout with identical content reuses the cache and an edited file
misses it.  The cache file itself is an implementation detail
(``.repro-lint-cache.json``, gitignored); deleting it only costs one
full re-parse.
"""

from __future__ import annotations

import ast
import json
import os
import subprocess
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.lint.atomic import ATOMIC_RULES_BY_CODE
from repro.lint.flow.atomic import ANALYZER_VERSION
from repro.lint.flow.rules import FLOW_RULES_BY_CODE
from repro.lint.flow.summary import (EXTRACTION_SCHEMA, ModuleFlow,
                                     extract_module_flow)
from repro.lint.index import ModuleSummary
from repro.lint.rules import RULES_BY_CODE

DEFAULT_CACHE = ".repro-lint-cache.json"
_CACHE_VERSION = 2

#: Analyzer schema stamp.  Cached summaries are only data, but *which*
#: data the extractor records (and which rules consume it) changes
#: across repro-lint versions; a warm cache written by an older analyzer
#: must invalidate, not silently feed stale summaries to new rules.
#: The stamp folds in the cache layout version, the extraction schema,
#: the atomic analyzer version, and the set of registered rule codes.
ANALYZER_SCHEMA = "/".join((
    str(_CACHE_VERSION),
    str(EXTRACTION_SCHEMA),
    ANALYZER_VERSION,
    ",".join(sorted({**RULES_BY_CODE, **FLOW_RULES_BY_CODE,
                     **ATOMIC_RULES_BY_CODE})),
))


class SummaryCache:
    """Path-keyed store of serialized (summary, flow) pairs."""

    def __init__(self, path: str) -> None:
        self.path = path
        self.entries: Dict[str, Dict[str, object]] = {}
        self.dirty = False
        self._load()

    def _load(self) -> None:
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            return
        if data.get("version") != _CACHE_VERSION:
            return
        if data.get("schema") != ANALYZER_SCHEMA:
            # Written by a different analyzer version: summaries may
            # lack fields the current rules consume.  Start cold.
            return
        entries = data.get("files")
        if isinstance(entries, dict):
            self.entries = entries

    def save(self) -> None:
        if not self.dirty:
            return
        payload = {"version": _CACHE_VERSION, "schema": ANALYZER_SCHEMA,
                   "files": self.entries}
        tmp = self.path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, separators=(",", ":"))
        os.replace(tmp, self.path)
        self.dirty = False

    @staticmethod
    def _stat_key(filename: str) -> Optional[Tuple[float, int]]:
        try:
            stat = os.stat(filename)
        except OSError:
            return None
        return (stat.st_mtime, stat.st_size)

    def lookup(self, filename: str) -> Optional[
            Tuple[ModuleSummary, Optional[ModuleFlow]]]:
        """Cached summaries for ``filename`` if it is unchanged on disk."""
        key = os.path.abspath(filename)
        entry = self.entries.get(key)
        if entry is None:
            return None
        stat = self._stat_key(filename)
        if stat is None or [stat[0], stat[1]] != entry.get("stat"):
            return None
        try:
            summary = ModuleSummary.from_dict(entry["summary"])  # type: ignore[arg-type]
            flow_data = entry.get("flow")
            flow = ModuleFlow.from_dict(flow_data) \
                if isinstance(flow_data, dict) else None
            return summary, flow
        except (KeyError, TypeError):
            return None

    def store(self, filename: str, summary: ModuleSummary,
              flow: Optional[ModuleFlow]) -> None:
        key = os.path.abspath(filename)
        stat = self._stat_key(filename)
        if stat is None:
            return
        entry: Dict[str, object] = {
            "stat": [stat[0], stat[1]],
            "module": summary.module,
            "summary": summary.to_dict(),
        }
        if flow is not None:
            entry["flow"] = flow.to_dict()
        self.entries[key] = entry
        self.dirty = True


def git_changed_files(root: str = ".") -> Optional[Set[str]]:
    """Absolute paths of files ``git`` considers changed: modified or
    added vs HEAD, plus untracked.  None when git is unavailable."""
    changed: Set[str] = set()
    for argv in (
        ["git", "diff", "--name-only", "HEAD"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    ):
        try:
            proc = subprocess.run(
                argv, cwd=root, capture_output=True, text=True, check=False)
        except OSError:
            return None
        if proc.returncode != 0:
            return None
        top = subprocess.run(
            ["git", "rev-parse", "--show-toplevel"], cwd=root,
            capture_output=True, text=True, check=False)
        base = top.stdout.strip() if top.returncode == 0 else root
        for line in proc.stdout.splitlines():
            line = line.strip()
            if line:
                changed.add(os.path.abspath(os.path.join(base, line)))
    return changed


def load_project(filenames: Sequence[str], cache: Optional[SummaryCache],
                 module_name_for: Callable[[str], str],
                 need_flow: bool, jobs: int = 1) -> Dict[
                     str, Tuple[str, ModuleSummary, Optional[ModuleFlow]]]:
    """Summaries for every file, from cache when valid, parsed (and
    cached) otherwise.  Returns ``{abspath: (module, summary, flow)}``;
    unparseable files are skipped (the live lint reports their syntax
    errors if they are in the changed set).  ``jobs`` > 1 extracts the
    cache misses in worker processes (identical output: workers return
    the same serialized form the cache stores)."""
    project: Dict[str, Tuple[str, ModuleSummary, Optional[ModuleFlow]]] = {}
    misses: List[Tuple[str, str]] = []
    for filename in filenames:
        key = os.path.abspath(filename)
        if cache is not None:
            hit = cache.lookup(filename)
            if hit is not None and (hit[1] is not None or not need_flow):
                project[key] = (hit[0].module, hit[0], hit[1])
                continue
        misses.append((filename, key))
    if need_flow and jobs > 1 and len(misses) > 2:
        from repro.lint.parallel import extract_flows
        items = []
        texts: Dict[str, str] = {}
        for filename, key in misses:
            try:
                with open(filename, "r", encoding="utf-8") as handle:
                    texts[key] = handle.read()
            except OSError:
                continue
            items.append((key, module_name_for(filename), texts[key]))
        extracted = extract_flows(items, jobs)
        for filename, key in misses:
            summary_data, flow_data = extracted.get(key, (None, None))
            if summary_data is None or flow_data is None:
                continue
            summary = ModuleSummary.from_dict(summary_data)
            flow = ModuleFlow.from_dict(flow_data)
            if cache is not None:
                cache.store(filename, summary, flow)
            project[key] = (summary.module, summary, flow)
        return project
    for filename, key in misses:
        try:
            with open(filename, "r", encoding="utf-8") as handle:
                tree = ast.parse(handle.read())
        except (OSError, SyntaxError):
            continue
        module = module_name_for(filename)
        summary = ModuleSummary(module, tree)
        flow = extract_module_flow(summary, tree) if need_flow else None
        if cache is not None:
            cache.store(filename, summary, flow)
        project[key] = (module, summary, flow)
    return project


def module_dependencies(summary: ModuleSummary) -> Set[str]:
    """Module names this summary's import table references."""
    deps: Set[str] = set(summary.module_aliases.values())
    for symbol in summary.from_imports.values():
        deps.add(symbol[0])
        deps.add(f"{symbol[0]}.{symbol[1]}")
    return deps


def reverse_dependents(
        targets: Set[str],
        summaries: Dict[str, ModuleSummary]) -> Set[str]:
    """Transitive closure of modules importing any target module."""
    importers: Dict[str, Set[str]] = {}
    for module, summary in summaries.items():
        for dep in module_dependencies(summary):
            importers.setdefault(dep, set()).add(module)
    found = set(targets)
    queue = list(targets)
    while queue:
        current = queue.pop(0)
        for module in importers.get(current, ()):
            if module not in found:
                found.add(module)
                queue.append(module)
    return found


def resolve_changed(paths: Sequence[str],
                    iter_python_files: Callable[[Sequence[str]], List[str]],
                    root: str = ".") -> Optional[List[str]]:
    """The subset of linted files git reports as changed, or None when
    git state is unavailable (caller falls back to a full run)."""
    changed = git_changed_files(root)
    if changed is None:
        return None
    return [
        filename for filename in iter_python_files(paths)
        if os.path.abspath(filename) in changed
    ]
