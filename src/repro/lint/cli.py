"""Command-line interface for repro-lint.

Usage::

    repro-lint [PATHS...]              lint (default: src)
    repro-lint --json src              machine-readable findings
    repro-lint --explain RL003         print one rule's documentation
    repro-lint --list-rules            one line per rule
    repro-lint --write-baseline src    grandfather current findings

Exit codes: 0 clean, 1 findings, 2 usage or internal error.
"""

from __future__ import annotations

import argparse
import json
import sys
import textwrap
from typing import List, Optional

from repro.lint.baseline import Baseline
from repro.lint.engine import lint_sources, load_sources, run_rules
from repro.lint.rules import ALL_RULES, RULES_BY_CODE

DEFAULT_BASELINE = ".repro-lint-baseline.json"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="AST invariant checker for the repro codebase: "
                    "effect-coroutine hygiene, simulation determinism, "
                    "and hot-path contracts.",
    )
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit findings as JSON on stdout")
    parser.add_argument("--baseline", default=None, metavar="FILE",
                        help=f"baseline file (default: {DEFAULT_BASELINE} "
                             f"when it exists)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore any baseline file")
    parser.add_argument("--write-baseline", action="store_true",
                        help="write current findings to the baseline file "
                             "and exit 0")
    parser.add_argument("--explain", metavar="RULE", default=None,
                        help="print the documentation for one rule "
                             "(e.g. --explain RL001) and exit")
    parser.add_argument("--list-rules", action="store_true",
                        help="list all rules and exit")
    return parser


def _explain(code: str) -> int:
    rule = RULES_BY_CODE.get(code.upper())
    if rule is None:
        known = ", ".join(sorted(RULES_BY_CODE))
        print(f"repro-lint: unknown rule {code!r} (known: {known})",
              file=sys.stderr)
        return 2
    print(f"{rule.code}: {rule.title}")
    print()
    print(textwrap.dedent(rule.explain).rstrip())
    return 0


def _list_rules() -> int:
    for rule in ALL_RULES:
        print(f"{rule.code}  {rule.title}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.explain is not None:
        return _explain(args.explain)
    if args.list_rules:
        return _list_rules()

    try:
        sources = load_sources(args.paths)
    except FileNotFoundError as exc:
        print(f"repro-lint: no such file or directory: {exc}",
              file=sys.stderr)
        return 2

    baseline_path = args.baseline or DEFAULT_BASELINE

    if args.write_baseline:
        findings = run_rules(sources)
        by_path = {source.path: source for source in sources}
        kept = [f for f in findings
                if not (by_path.get(f.path) or _NEVER).is_suppressed(f)]
        Baseline.from_findings(kept).save(baseline_path)
        print(f"repro-lint: wrote {len(kept)} finding(s) to {baseline_path}")
        return 0

    baseline = None
    if not args.no_baseline:
        try:
            baseline = Baseline.load(baseline_path)
        except (ValueError, OSError) as exc:
            print(f"repro-lint: cannot read baseline {baseline_path}: {exc}",
                  file=sys.stderr)
            return 2

    result = lint_sources(sources, baseline=baseline)

    if args.as_json:
        payload = {
            "findings": [finding.to_dict() for finding in result.findings],
            "files_checked": result.files_checked,
            "baselined": result.baselined,
            "suppressed": result.suppressed,
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return result.exit_code

    for finding in result.findings:
        print(f"{finding.path}:{finding.line}:{finding.col + 1}: "
              f"{finding.rule} {finding.message}")
        if finding.line_text.strip():
            print(f"    {finding.line_text.strip()}")
    extras = []
    if result.baselined:
        extras.append(f"{result.baselined} baselined")
    if result.suppressed:
        extras.append(f"{result.suppressed} suppressed")
    suffix = f" ({', '.join(extras)})" if extras else ""
    if result.findings:
        print(f"repro-lint: {len(result.findings)} finding(s) in "
              f"{result.files_checked} file(s){suffix}")
        print("repro-lint: run `repro-lint --explain <RULE>` for the "
              "rationale and fix for any rule")
    else:
        print(f"repro-lint: clean -- {result.files_checked} file(s)"
              f"{suffix}")
    return result.exit_code


class _NeverSuppressed:
    @staticmethod
    def is_suppressed(_finding: object) -> bool:
        return False


_NEVER = _NeverSuppressed()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
