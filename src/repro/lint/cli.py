"""Command-line interface for repro-lint.

Usage::

    repro-lint [PATHS...]              lint (default: src)
    repro-lint --flow src              + interprocedural RF rules
    repro-lint --flow --atomic src     + yield-point RA rules
    repro-lint --jobs 4 --flow src     parallel flow extraction
    repro-lint --changed src           lint only files changed per git
    repro-lint --json src              machine-readable findings
    repro-lint --explain RF001         print one rule's documentation
    repro-lint --list-rules            one line per rule
    repro-lint --write-baseline src    grandfather current findings
    repro-lint --flow --dump-callgraph src   call graph as JSON

Exit codes: 0 clean, 1 findings, 2 usage or internal error.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import textwrap
from typing import List, Optional

from repro.lint.baseline import Baseline
from repro.lint.cache import (
    DEFAULT_CACHE,
    SummaryCache,
    load_project,
    resolve_changed,
    reverse_dependents,
)
from repro.lint.atomic import ATOMIC_RULES_BY_CODE
from repro.lint.engine import (
    iter_python_files,
    lint_sources,
    load_sources,
    module_name_for,
    run_rules,
)
from repro.lint.flow.analysis import FlowAnalysis
from repro.lint.flow.atomic import ANALYZER_VERSION
from repro.lint.flow.rules import FLOW_RULES_BY_CODE
from repro.lint.rules import ALL_RULES, RULES_BY_CODE

DEFAULT_BASELINE = ".repro-lint-baseline.json"

#: JSON output schema tag.  /1 had no "schema"/"analyzer"/"family"
#: fields; /2 adds them and keeps every /1 field unchanged.
JSON_SCHEMA = "repro-lint-findings/2"

_ALL_RULES_BY_CODE = {**RULES_BY_CODE, **FLOW_RULES_BY_CODE,
                      **ATOMIC_RULES_BY_CODE}


def _family(code: str) -> str:
    """Rule family of a finding code: RL, RF, or RA."""
    return code[:2] if code[:2] in ("RL", "RF", "RA") else "RL"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="AST invariant checker for the repro codebase: "
                    "effect-coroutine hygiene, simulation determinism, "
                    "and hot-path contracts.",
    )
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--flow", action="store_true",
                        help="run the interprocedural RF rules (project "
                             "call graph + taint propagation)")
    parser.add_argument("--atomic", action="store_true",
                        help="run the yield-point interleaving and "
                             "typestate RA rules (implies --flow)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for the flow-extraction "
                             "phase (default: 1, in-process)")
    parser.add_argument("--changed", action="store_true",
                        help="lint only files changed per git (plus their "
                             "reverse dependents under --flow); unchanged "
                             "files join the analysis from the summary "
                             "cache")
    parser.add_argument("--cache", default=None, metavar="FILE",
                        help=f"summary cache for --changed "
                             f"(default: {DEFAULT_CACHE})")
    parser.add_argument("--dump-callgraph", action="store_true",
                        help="with --flow: print the resolved call graph "
                             "as JSON and exit")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit findings as JSON on stdout")
    parser.add_argument("--baseline", default=None, metavar="FILE",
                        help=f"baseline file (default: {DEFAULT_BASELINE} "
                             f"when it exists)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore any baseline file")
    parser.add_argument("--write-baseline", action="store_true",
                        help="write current findings to the baseline file "
                             "and exit 0")
    parser.add_argument("--explain", metavar="RULE", default=None,
                        help="print the documentation for one rule "
                             "(e.g. --explain RF001) and exit")
    parser.add_argument("--list-rules", action="store_true",
                        help="list all rules and exit")
    return parser


def _explain(code: str) -> int:
    rule = _ALL_RULES_BY_CODE.get(code.upper())
    if rule is None:
        known = ", ".join(sorted(_ALL_RULES_BY_CODE))
        print(f"repro-lint: unknown rule {code!r} (known: {known})",
              file=sys.stderr)
        return 2
    print(f"{rule.code}: {rule.title}")
    print()
    print(textwrap.dedent(rule.explain).rstrip())
    return 0


def _list_rules() -> int:
    for rule in ALL_RULES:
        print(f"{rule.code}  {rule.title}")
    for rule in FLOW_RULES_BY_CODE.values():
        print(f"{rule.code}  {rule.title}  [--flow]")
    for rule in ATOMIC_RULES_BY_CODE.values():
        print(f"{rule.code}  {rule.title}  [--atomic]")
    return 0


def _dump_callgraph(paths: List[str]) -> int:
    from repro.lint.flow.summary import extract_module_flow
    from repro.lint.index import ModuleSummary, ProjectIndex

    sources = load_sources(paths)
    summaries = {
        s.module: ModuleSummary(s.module, s.tree)
        for s in sources if s.tree is not None and not s.skip_file
    }
    flows = {
        s.module: extract_module_flow(summaries[s.module], s.tree)
        for s in sources if s.tree is not None and not s.skip_file
    }
    analysis = FlowAnalysis(ProjectIndex(summaries), flows)
    print(json.dumps(analysis.graph.to_dict(), indent=2, sort_keys=True))
    return 0


def _changed_run(args: argparse.Namespace,
                 baseline: Optional[Baseline]) -> "object":
    """Incremental lint: parse changed files live, load the rest of the
    project from the summary cache, and report findings only for the
    changed set (plus reverse dependents under --flow)."""
    changed = resolve_changed(args.paths, iter_python_files)
    if changed is None:
        print("repro-lint: --changed requires a git checkout; "
              "running a full lint", file=sys.stderr)
        sources = load_sources(args.paths)
        return lint_sources(sources, baseline=baseline, flow=args.flow,
                            atomic=args.atomic, jobs=args.jobs)

    cache = SummaryCache(args.cache or DEFAULT_CACHE)
    every = iter_python_files(args.paths)
    project = load_project(every, cache, module_name_for,
                           need_flow=args.flow, jobs=args.jobs)
    cache.save()

    changed_keys = {os.path.abspath(p) for p in changed}
    lint_modules = {
        entry[0] for key, entry in project.items() if key in changed_keys
    }
    if args.flow and lint_modules:
        summaries = {entry[0]: entry[1] for entry in project.values()}
        lint_modules = reverse_dependents(lint_modules, summaries)

    lint_files = [
        key for key, entry in project.items()
        if key in changed_keys or entry[0] in lint_modules
    ]
    # Changed files that failed to parse still need their RL000 finding.
    lint_files.extend(
        key for key in changed_keys
        if key not in project and os.path.exists(key)
    )
    sources = load_sources(sorted(lint_files))
    live = {s.module for s in sources}
    context = {
        entry[0]: (entry[1], entry[2])
        for entry in project.values() if entry[0] not in live
    }
    return lint_sources(sources, baseline=baseline, flow=args.flow,
                        project=context, atomic=args.atomic,
                        jobs=args.jobs)


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.atomic:
        # The RA rules are built on the flow call graph.
        args.flow = True

    if args.explain is not None:
        return _explain(args.explain)
    if args.list_rules:
        return _list_rules()
    if args.dump_callgraph:
        if not args.flow:
            print("repro-lint: --dump-callgraph requires --flow",
                  file=sys.stderr)
            return 2
        try:
            return _dump_callgraph(args.paths)
        except FileNotFoundError as exc:
            print(f"repro-lint: no such file or directory: {exc}",
                  file=sys.stderr)
            return 2

    baseline_path = args.baseline or DEFAULT_BASELINE

    if args.write_baseline:
        try:
            sources = load_sources(args.paths)
        except FileNotFoundError as exc:
            print(f"repro-lint: no such file or directory: {exc}",
                  file=sys.stderr)
            return 2
        findings = run_rules(sources, flow=args.flow, atomic=args.atomic,
                             jobs=args.jobs)
        by_path = {source.path: source for source in sources}
        kept = [f for f in findings
                if not (by_path.get(f.path) or _NEVER).is_suppressed(f)]
        Baseline.from_findings(kept).save(baseline_path)
        print(f"repro-lint: wrote {len(kept)} finding(s) to {baseline_path}")
        return 0

    baseline = None
    if not args.no_baseline:
        try:
            baseline = Baseline.load(baseline_path)
        except (ValueError, OSError) as exc:
            print(f"repro-lint: cannot read baseline {baseline_path}: {exc}",
                  file=sys.stderr)
            return 2

    try:
        if args.changed:
            result = _changed_run(args, baseline)
        else:
            sources = load_sources(args.paths)
            result = lint_sources(sources, baseline=baseline, flow=args.flow,
                                  atomic=args.atomic, jobs=args.jobs)
    except FileNotFoundError as exc:
        print(f"repro-lint: no such file or directory: {exc}",
              file=sys.stderr)
        return 2

    if args.as_json:
        findings = []
        for finding in result.findings:
            entry = finding.to_dict()
            entry["family"] = _family(finding.rule)
            findings.append(entry)
        payload = {
            "schema": JSON_SCHEMA,
            "analyzer": ANALYZER_VERSION,
            "findings": findings,
            "files_checked": result.files_checked,
            "baselined": result.baselined,
            "suppressed": result.suppressed,
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return result.exit_code

    for finding in result.findings:
        print(f"{finding.path}:{finding.line}:{finding.col + 1}: "
              f"{finding.rule} {finding.message}")
        if finding.line_text.strip():
            print(f"    {finding.line_text.strip()}")
    extras = []
    if result.baselined:
        extras.append(f"{result.baselined} baselined")
    if result.suppressed:
        extras.append(f"{result.suppressed} suppressed")
    suffix = f" ({', '.join(extras)})" if extras else ""
    if result.findings:
        print(f"repro-lint: {len(result.findings)} finding(s) in "
              f"{result.files_checked} file(s){suffix}")
        print("repro-lint: run `repro-lint --explain <RULE>` for the "
              "rationale and fix for any rule")
    else:
        print(f"repro-lint: clean -- {result.files_checked} file(s)"
              f"{suffix}")
    return result.exit_code


class _NeverSuppressed:
    @staticmethod
    def is_suppressed(_finding: object) -> bool:
        return False


_NEVER = _NeverSuppressed()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
