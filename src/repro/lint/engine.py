"""repro-lint engine: discovery, suppression, baseline, reporting.

Flow: collect :class:`SourceModule` objects (from paths or in-memory
strings), summarize each into the pass-1 :class:`ProjectIndex`, run every
rule over every module, then filter findings through inline suppressions
and the checked-in baseline.

Inline suppressions::

    time.sleep(1)  # repro-lint: ignore[RL003] calibration outside the sim

    # repro-lint: ignore[RL001, RL002]
    effects.Get(space, key)

A comment applies to its own line, or -- when it is a standalone comment
line -- to the next line.  ``# repro-lint: skip-file`` anywhere skips the
whole file (generated code).  Suppressions must name rule codes
explicitly; there is no blanket ignore.
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint.atomic import ATOMIC_RULES
from repro.lint.baseline import Baseline
from repro.lint.flow.analysis import FlowAnalysis
from repro.lint.flow.rules import FLOW_RULES
from repro.lint.flow.summary import ModuleFlow, extract_module_flow
from repro.lint.index import ModuleSummary, ProjectIndex
from repro.lint.rules import ALL_RULES, Rule

#: Cached project view passed by ``repro-lint --changed``: modules that
#: are part of the analysis but whose findings are not re-reported.
ProjectContext = Dict[str, Tuple[ModuleSummary, Optional[ModuleFlow]]]

_IGNORE_RE = re.compile(r"#\s*repro-lint:\s*ignore\[([A-Z0-9,\s]+)\]")
_SKIP_FILE_RE = re.compile(r"#\s*repro-lint:\s*skip-file")


class Finding:
    """One lint finding, locatable and JSON-serializable."""

    __slots__ = ("rule", "path", "line", "col", "message", "line_text")

    def __init__(self, rule: str, path: str, line: int, col: int,
                 message: str, line_text: str) -> None:
        self.rule = rule
        self.path = path
        self.line = line
        self.col = col
        self.message = message
        self.line_text = line_text

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def fingerprint(self) -> Tuple[str, str, str]:
        """Line-number-independent identity used by the baseline: moving
        code around does not invalidate entries, editing the line does."""
        return (self.rule, self.path.replace(os.sep, "/"),
                self.line_text.strip())

    def __repr__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


class SourceModule:
    """A parsed source file plus its suppression table."""

    def __init__(self, path: str, module: str, text: str) -> None:
        self.path = path
        self.module = module
        self.text = text
        self.lines = text.splitlines()
        self.tree: Optional[ast.Module] = None
        self.syntax_error: Optional[SyntaxError] = None
        self.skip_file = False
        self.line_ignores: Dict[int, Set[str]] = {}
        try:
            self.tree = ast.parse(text)
        except SyntaxError as exc:
            self.syntax_error = exc
            return
        self._scan_comments()

    def _scan_comments(self) -> None:
        try:
            tokens = tokenize.generate_tokens(io.StringIO(self.text).readline)
            comments = [
                (tok.start[0], tok.start[1], tok.string)
                for tok in tokens if tok.type == tokenize.COMMENT
            ]
        except tokenize.TokenError:
            comments = [
                (i + 1, line.index("#"), line[line.index("#"):])
                for i, line in enumerate(self.lines) if "#" in line
            ]
        for lineno, col, comment in comments:
            if _SKIP_FILE_RE.search(comment):
                self.skip_file = True
            match = _IGNORE_RE.search(comment)
            if not match:
                continue
            codes = {c.strip() for c in match.group(1).split(",") if c.strip()}
            target = lineno
            line = self.lines[lineno - 1] if lineno <= len(self.lines) else ""
            if line[:col].strip() == "":
                # Standalone comment line: applies to the next line too.
                self.line_ignores.setdefault(lineno + 1, set()).update(codes)
            self.line_ignores.setdefault(target, set()).update(codes)

    def is_suppressed(self, finding: Finding) -> bool:
        return finding.rule in self.line_ignores.get(finding.line, ())

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""


class LintResult:
    """Outcome of one lint run."""

    def __init__(self, findings: List[Finding], baselined: int,
                 suppressed: int, files_checked: int) -> None:
        self.findings = findings
        self.baselined = baselined
        self.suppressed = suppressed
        self.files_checked = files_checked

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0


# -- discovery -------------------------------------------------------------


def iter_python_files(paths: Sequence[str]) -> List[str]:
    files: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            files.append(path)
        elif os.path.isdir(path):
            for root, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames
                    if d not in ("__pycache__", ".git") and not d.endswith(".egg-info")
                )
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        files.append(os.path.join(root, name))
        else:
            raise FileNotFoundError(path)
    return files


def module_name_for(path: str) -> str:
    """Best-effort dotted module name: anchored at the last path segment
    named ``repro`` (or after one named ``src``), else the file stem."""
    parts = os.path.normpath(os.path.abspath(path)).split(os.sep)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    anchor = None
    for i, part in enumerate(parts):
        if part == "repro":
            anchor = i
        elif part == "src" and i + 1 < len(parts):
            anchor = i + 1
    dotted = parts[anchor:] if anchor is not None else parts[-1:]
    if dotted and dotted[-1] == "__init__":
        dotted = dotted[:-1]
    return ".".join(dotted) or "unknown"


def load_sources(paths: Sequence[str],
                 relative_to: Optional[str] = None) -> List[SourceModule]:
    sources = []
    base = relative_to or os.getcwd()
    for filename in iter_python_files(paths):
        with open(filename, "r", encoding="utf-8") as handle:
            text = handle.read()
        try:
            display = os.path.relpath(filename, base)
        except ValueError:
            display = filename
        if display.startswith(".." + os.sep):
            display = filename
        sources.append(SourceModule(display, module_name_for(filename), text))
    return sources


# -- running ---------------------------------------------------------------


def run_rules(sources: Sequence[SourceModule],
              rules: Optional[Sequence[Rule]] = None,
              flow: bool = False,
              project: Optional[ProjectContext] = None,
              atomic: bool = False,
              jobs: int = 1) -> List[Finding]:
    """Raw findings (suppressions applied, no baseline).

    ``flow`` enables the interprocedural RF rules and ``atomic`` (which
    requires ``flow``) the yield-point RA rules; ``project`` supplies
    pre-built summaries of modules that should join the index (and the
    call graph) without being linted themselves -- the unchanged half of
    a ``--changed`` run, loaded from the cache.  ``jobs`` > 1 runs the
    flow-extraction phase in worker processes.
    """
    if rules is not None:
        active_rules = list(rules)
    elif flow:
        active_rules = ALL_RULES + FLOW_RULES + \
            (ATOMIC_RULES if atomic else [])
    else:
        active_rules = list(ALL_RULES)
    summaries: Dict[str, ModuleSummary] = {}
    flows: Dict[str, ModuleFlow] = {}
    if project:
        for module, (summary, module_flow) in project.items():
            summaries[module] = summary
            if module_flow is not None:
                flows[module] = module_flow
    for source in sources:
        if source.tree is not None and not source.skip_file:
            summaries[source.module] = ModuleSummary(source.module, source.tree)
    index = ProjectIndex(summaries)
    if flow:
        live = [source for source in sources
                if source.tree is not None and not source.skip_file]
        extracted: Dict[str, object] = {}
        if jobs > 1 and len(live) > 2:
            from repro.lint.parallel import extract_flows
            for path, (_summary, flow_data) in extract_flows(
                    [(s.path, s.module, s.text) for s in live],
                    jobs).items():
                if flow_data is not None:
                    extracted[path] = flow_data
        for source in live:
            flow_data = extracted.get(source.path)
            if flow_data is not None:
                flows[source.module] = ModuleFlow.from_dict(flow_data)  # type: ignore[arg-type]
            else:
                flows[source.module] = extract_module_flow(
                    summaries[source.module], source.tree)
        index.flow = FlowAnalysis(index, flows, atomic=atomic)

    findings: List[Finding] = []
    for source in sources:
        if source.skip_file:
            continue
        if source.syntax_error is not None:
            exc = source.syntax_error
            findings.append(Finding(
                "RL000", source.path, exc.lineno or 1, (exc.offset or 1) - 1,
                f"syntax error: {exc.msg}", source.line_text(exc.lineno or 1),
            ))
            continue
        summary = summaries[source.module]
        for rule in active_rules:
            for node, message in rule.check(summary, source.tree, index):
                lineno = getattr(node, "lineno", 1)
                findings.append(Finding(
                    rule.code, source.path, lineno,
                    getattr(node, "col_offset", 0), message,
                    source.line_text(lineno),
                ))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def lint_sources(sources: Sequence[SourceModule],
                 rules: Optional[Sequence[Rule]] = None,
                 baseline: Optional["Baseline"] = None,
                 flow: bool = False,
                 project: Optional[ProjectContext] = None,
                 atomic: bool = False,
                 jobs: int = 1) -> LintResult:
    raw = run_rules(sources, rules, flow=flow, project=project,
                    atomic=atomic, jobs=jobs)
    by_path = {source.path: source for source in sources}
    kept: List[Finding] = []
    suppressed = 0
    for finding in raw:
        source = by_path.get(finding.path)
        if source is not None and source.is_suppressed(finding):
            suppressed += 1
            continue
        kept.append(finding)
    if baseline is not None:
        kept, baselined = baseline.filter(kept)
    else:
        baselined = 0
    checked = sum(1 for s in sources if not s.skip_file)
    return LintResult(kept, baselined, suppressed, checked)


def lint_paths(paths: Sequence[str],
               rules: Optional[Sequence[Rule]] = None,
               baseline: Optional["Baseline"] = None,
               relative_to: Optional[str] = None,
               flow: bool = False,
               project: Optional[ProjectContext] = None,
               atomic: bool = False,
               jobs: int = 1) -> LintResult:
    return lint_sources(load_sources(paths, relative_to), rules, baseline,
                        flow=flow, project=project, atomic=atomic,
                        jobs=jobs)


def lint_source(text: str, module: str = "repro.example",
                path: str = "<memory>",
                rules: Optional[Sequence[Rule]] = None,
                extra_sources: Iterable[SourceModule] = (),
                flow: bool = False,
                atomic: bool = False) -> List[Finding]:
    """Lint one in-memory snippet (test/fixture entry point).

    ``module`` controls package-scoped rules (RL003 fires only under the
    simulated-time packages); ``extra_sources`` joins additional modules
    into the same project index (cross-module resolution tests).
    """
    sources = [SourceModule(path, module, text)] + list(extra_sources)
    return lint_sources(sources, rules=rules, flow=flow,
                        atomic=atomic).findings
