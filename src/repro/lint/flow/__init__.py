"""repro-flow: interprocedural call-graph and taint analysis.

This package is the substrate behind ``repro-lint --flow``: it extracts a
serializable per-module summary of every function (calls, receiver
bindings, yields, determinism facts), links the summaries into a
project-wide call graph, runs fixpoint taint propagation, and evaluates
the RF rule family on the result.  See docs/static-analysis.md for the
design and the rule catalog.
"""

from repro.lint.flow.analysis import FlowAnalysis
from repro.lint.flow.atomic import ANALYZER_VERSION, AtomicAnalysis
from repro.lint.flow.callgraph import CallGraph, Node
from repro.lint.flow.rules import FLOW_RULES, FLOW_RULES_BY_CODE
from repro.lint.flow.summary import ModuleFlow, extract_module_flow

__all__ = [
    "ANALYZER_VERSION",
    "AtomicAnalysis",
    "CallGraph",
    "FLOW_RULES",
    "FLOW_RULES_BY_CODE",
    "FlowAnalysis",
    "ModuleFlow",
    "Node",
    "extract_module_flow",
]
