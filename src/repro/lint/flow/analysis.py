"""Fixpoint taint propagation over the linked call graph.

Four classifications drive the RF rules:

* **sim-time-reachable** -- forward closure from the simulation entry
  points: every function in the simulated-time packages plus every
  generator resolved as a ``spawn(...)``/``run_direct(...)`` argument.
  RF001 reports wall-clock / unseeded-RNG facts inside this set.
* **hot-path-reachable** -- forward closure from the entry points
  ``tools/perf_guard.py`` drives (the TPC-C deployment and the scale
  suite).  RF005 reports per-call allocation facts inside this set.
* **protocol-mutation tainted** -- reverse closure from every function
  with a recorded protocol-mutation fact; **obs tainted** -- reverse
  closure from the repro.obs modules.  RF004 reports sanitizer observer
  edges into either set.
* **routable** -- effect classes a dispatcher can classify, read out of
  the dispatch package itself: exact classes registered in class-keyed
  kind tables plus the subclass closure of the ``isinstance`` ladder
  bases.  RF002/RF003 report yields and class definitions outside it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.lint.flow.atomic import AtomicAnalysis

from repro.lint.flow.callgraph import CallGraph, Node
from repro.lint.flow.summary import ModuleFlow, PROTOCOL_MUTATORS
from repro.lint.index import ProjectIndex, Symbol, in_prefixes
from repro.lint.rules import SIMULATED_TIME_PACKAGES

#: Where dispatcher registrations (kind tables, classify ladders) live.
DISPATCH_PACKAGES: Tuple[str, ...] = ("repro.dispatch",)

#: Entry points guarded by tools/perf_guard.py: the end-to-end TPC-C
#: deployment and the scale suite both run through these.
HOT_PATH_ROOTS: Tuple[Node, ...] = (
    ("repro.bench.simcluster", "SimulatedTell.run"),
    ("repro.bench.simcluster", "SimulatedTell.load"),
    ("repro.bench.scale", "run_scale_point"),
)

#: repro.san driver modules (own their deployments; exempt from the
#: observer isolation contract).  Mirrors RL009.
SAN_DRIVER_MODULES: Tuple[str, ...] = (
    "repro.san.scenarios",
    "repro.san.explorer",
    "repro.san.__main__",
)

SAN_PACKAGE = "repro.san"
OBS_PACKAGE = "repro.obs"


def format_node(node: Node) -> str:
    return f"{node[0]}.{node[1]}"


class FlowAnalysis:
    """Project-wide flow facts, computed once per ``--flow`` run."""

    def __init__(self, index: ProjectIndex, flows: Dict[str, ModuleFlow],
                 atomic: bool = False) -> None:
        self.index = index
        self.flows = flows
        self.graph = CallGraph(index, flows)
        #: Set under ``--atomic``: the yield-point interleaving and
        #: typestate analysis the RA rules consume (imported lazily to
        #: keep plain ``--flow`` runs free of the extra fixpoints).
        self.atomic: Optional["AtomicAnalysis"] = None
        if atomic:
            from repro.lint.flow.atomic import AtomicAnalysis
            self.atomic = AtomicAnalysis(self.graph)
        self.sim_parents = self._compute_sim_reach()
        self.hot_parents = self.graph.reachable_from(set(HOT_PATH_ROOTS))
        self.routable_exact, self.ladder_bases = \
            self._collect_registrations()
        self.mutation_tainted = self.graph.reverse_reachable(
            self._mutation_sources())
        self.obs_tainted = self.graph.reverse_reachable(
            self._obs_sources())
        self._routable_cache: Dict[Symbol, bool] = {}

    # -- reachability ------------------------------------------------------

    def _compute_sim_reach(self) -> Dict[Node, Optional[Node]]:
        roots: Set[Node] = set(self.graph.spawned)
        for node in self.graph.nodes:
            if in_prefixes(node[0], SIMULATED_TIME_PACKAGES):
                roots.add(node)
        return self.graph.reachable_from(roots)

    def chain_text(self, parents: Dict[Node, Optional[Node]],
                   node: Node) -> str:
        path = self.graph.chain(parents, node)
        return " -> ".join(format_node(step) for step in path)

    # -- dispatcher registrations (RF002/RF003) ----------------------------

    def _collect_registrations(self) -> Tuple[Set[Symbol], Set[Symbol]]:
        exact: Set[Symbol] = set()
        bases: Set[Symbol] = set()
        for module, flow in self.flows.items():
            if not in_prefixes(module, DISPATCH_PACKAGES):
                continue
            summary = self.index.summaries.get(module)
            if summary is None:
                continue
            for table in flow.tables.values():
                for key in table.get("keys", []):
                    symbol = summary.resolve_ref(
                        tuple(key)) if key else None
                    if symbol in self.index.effect_classes:
                        exact.add(symbol)
            for info in flow.functions.values():
                for ref in info.get("isinstance", []):
                    symbol = summary.resolve_ref(tuple(ref))
                    if symbol in self.index.effect_classes:
                        bases.add(symbol)
        return exact, bases

    @property
    def has_dispatch_info(self) -> bool:
        """False when no dispatcher was linted (single-file fixtures):
        RF002/RF003 stay silent rather than calling everything
        unroutable."""
        return bool(self.routable_exact or self.ladder_bases)

    def is_routable(self, symbol: Symbol) -> bool:
        """Can :func:`repro.dispatch.core.kind_of` classify this class?"""
        cached = self._routable_cache.get(symbol)
        if cached is not None:
            return cached
        result = symbol in self.routable_exact or any(
            self.graph.is_subclass(symbol, base)
            for base in self.ladder_bases
        )
        self._routable_cache[symbol] = result
        return result

    def effect_leaves(self) -> Set[Symbol]:
        """Concrete effect classes: members of the Request closure that
        no linted class subclasses (abstract bases are wired through
        their subclasses, not directly)."""
        subclassed: Set[Symbol] = set()
        for bases in self.graph.bases_of.values():
            subclassed.update(bases)
        return {
            symbol for symbol in self.index.effect_classes
            if symbol not in subclassed
        }

    # -- sanitizer isolation (RF004) ---------------------------------------

    @staticmethod
    def is_san_observer_module(module: str) -> bool:
        return (in_prefixes(module, (SAN_PACKAGE,))
                and module not in SAN_DRIVER_MODULES)

    def _mutation_sources(self) -> Set[Node]:
        sources: Set[Node] = set()
        for module, flow in self.flows.items():
            protocol_module = in_prefixes(module, SIMULATED_TIME_PACKAGES)
            for qualname, info in flow.functions.items():
                if info.get("facts", {}).get("mutates"):
                    sources.add((module, qualname))
                    continue
                # Protocol mutator methods are sources themselves:
                # `CommitManager.start` mutates through `self`, which the
                # call-site fact heuristic cannot see.
                if (protocol_module and "." in qualname
                        and info.get("cls") is not None
                        and qualname.rsplit(".", 1)[1] in PROTOCOL_MUTATORS):
                    sources.add((module, qualname))
        return sources

    def _obs_sources(self) -> Set[Node]:
        sources: Set[Node] = set()
        for node in self.graph.nodes:
            if in_prefixes(node[0], (OBS_PACKAGE,)):
                sources.add(node)
        for module, flow in self.flows.items():
            for qualname, info in flow.functions.items():
                if info.get("facts", {}).get("obs"):
                    sources.add((module, qualname))
        for node, externals in self.graph.external.items():
            for symbol, _line in externals:
                if in_prefixes(symbol[0], (OBS_PACKAGE,)):
                    sources.add(node)
        return sources

    def taint_witness(self, start: Node, tainted: Set[Node],
                      fact_kind: str) -> List[Node]:
        """Forward path from ``start`` to the nearest function carrying
        the taint's defining fact (the call chain shown in RF004)."""
        parents: Dict[Node, Optional[Node]] = {start: None}
        queue = [start]
        while queue:
            current = queue.pop(0)
            info = self.graph.function_info(current)
            facts = (info or {}).get("facts", {})
            is_sink = bool(facts.get(fact_kind)) or (
                fact_kind == "obs"
                and in_prefixes(current[0], (OBS_PACKAGE,))
            )
            if is_sink:
                return self.graph.chain(parents, current)
            for target in sorted(self.graph.edges.get(current, ())):
                if target in tainted and target not in parents:
                    parents[target] = current
                    queue.append(target)
        return [start]
