"""Yield-point interleaving and typestate analysis (``--atomic``).

Every ``yield`` of an effect in protocol code is a preemption point:
the kernel may run any other PN/CM/SN coroutine before the result comes
back.  This module turns that scheduling model into static checks:

* **Yield-point summaries** -- the extraction pass tags every shared
  -state touch (reads and writes through attribute chains) with the
  lexical yield segment it happens in; :class:`AtomicAnalysis` resolves
  those chains against the call graph's type evidence and exposes, per
  function and per preemption point, which shared footprints are read
  before and written after it, propagated through ``yield from`` chains.
* **A path-sensitive walker** (:class:`_FunctionWalker`) re-analyzes
  live function ASTs: it tracks which locals were derived from data read
  before the current segment (staleness), which guards tests use them,
  which shared collections are structurally mutated on both sides of a
  yield, and the commit/abort typestate of every transaction-typed
  receiver.  Its findings feed the RA rule family in
  :mod:`repro.lint.atomic`.

The analysis follows the repo's lint policy -- no finding over
speculation.  Receivers that do not resolve through explicit type
evidence produce no footprint; conditional LL/SC writes
(``PutIfVersion`` / ``DeleteIfVersion``) are the *sanctioned* way to
act on stale data and are never reported as guarded acts.
"""

from __future__ import annotations

import ast
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.lint.flow.callgraph import CallGraph, Node, _TypeEntry
from repro.lint.flow.summary import ATOMIC_MUTATORS
from repro.lint.index import ModuleSummary, Symbol, in_prefixes, name_ref_of

#: Analyzer version, part of the cache schema stamp and the ``--json``
#: payload.  Bump on any semantic change to the RA rules.
ANALYZER_VERSION = "repro-atomic/1"

#: Classes whose instances are shared between coroutines: attributes of
#: these (and their subclasses) are shared-state footprints.  Per-txn
#: objects (Transaction's private cache) and monotonic stats holders are
#: deliberately absent.
SHARED_CLASSES: Tuple[Symbol, ...] = (
    ("repro.core.processing_node", "ProcessingNode"),
    ("repro.core.commit_manager", "CommitManager"),
    ("repro.core.buffers", "BufferingStrategy"),
    ("repro.core.txlog", "TransactionLog"),
    ("repro.core.isolation.validation", "CommitValidator"),
    ("repro.store.cluster", "StorageCluster"),
    ("repro.store.node", "StorageNode"),
    ("repro.store.node", "PartitionStore"),
    ("repro.store.management", "ManagementNode"),
    ("repro.index.btree", "DistributedBTree"),
    ("repro.index.btree", "IndexCache"),
    ("repro.elastic.topology", "Topology"),
)

#: Transaction lifecycle typestate (RA004/RA005).
TXN_CLASSES: Tuple[Symbol, ...] = (
    ("repro.core.transaction", "Transaction"),
)
#: Callables whose return value is a live (RUNNING) transaction.
TXN_FACTORIES: Tuple[Node, ...] = (
    ("repro.core.processing_node", "ProcessingNode.begin"),
)
FINISHING_METHODS = frozenset({"commit", "abort", "_finish_abort"})
#: Finishers that never return normally (always raise TransactionAborted):
#: statements after them are dead on that path.
NORETURN_FINISHERS = frozenset({"_finish_abort"})
USING_METHODS = frozenset({
    "read", "read_many", "read_for_update",
    "insert", "update", "delete",
})

#: Unconditional store-write effects (RA001 guarded acts).  The LL/SC
#: conditional forms (PutIfVersion/DeleteIfVersion) are the protocol's
#: correct answer to staleness and never count.
WRITE_EFFECTS: Tuple[Symbol, ...] = (
    ("repro.effects", "Put"),
    ("repro.effects", "Delete"),
)
REPORT_ABORTED: Symbol = ("repro.effects", "ReportAborted")
TXN_STATE: Symbol = ("repro.core.transaction", "TxnState")

#: Packages where the interleaving rules RA001-RA003 apply (protocol
#: code).  The typestate rules RA004/RA005 run everywhere.
ATOMIC_PACKAGES: Tuple[str, ...] = (
    "repro.core", "repro.store", "repro.index", "repro.sql",
)

#: Invariant pairs (RA003): two attributes of one shared class that
#: must never be observed half-updated -- all writes to both members in
#: one function must land in the same yield segment.
INVARIANT_PAIRS: Tuple[Tuple[Symbol, str, str], ...] = (
    (("repro.core.commit_manager", "CommitManager"),
     "_active_base", "_active_pn"),
    (("repro.core.commit_manager", "CommitManager"),
     "completed", "_next_stripe"),
    (("repro.core.buffers", "SharedBufferVersionSync"),
     "_entries", "_unit_members"),
)

_WRITE_KINDS = ("set", "aug", "sub", "del", "call")
#: Structural collection mutations (RA002): subscript stores/deletes.
_STRUCTURAL_KINDS = ("sub", "del")

#: One raw finding: (line, rule code, message).
RawFinding = Tuple[int, str, str]


class _Taint:
    """Provenance of a local's value: the yield segment it was read in,
    the source line, and a human-readable origin for witnesses."""

    __slots__ = ("seg", "line", "origin")

    def __init__(self, seg: int, line: int, origin: str) -> None:
        self.seg = seg
        self.line = line
        self.origin = origin


class _Guard:
    """An active stale-guard: an ``if``/``while`` test at ``line`` that
    used locals whose taints predate the current segment."""

    __slots__ = ("line", "stale")

    def __init__(self, line: int,
                 stale: List[Tuple[str, _Taint]]) -> None:
        self.line = line
        self.stale = stale


def _has_yield(node: ast.AST) -> bool:
    """True if the subtree contains a preemption point (own body only --
    nested defs run on their own schedule)."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if isinstance(child, (ast.Yield, ast.YieldFrom)):
            return True
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                              ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(child))
    return False


def _flatten(node: ast.expr) -> Optional[Tuple[str, List[str]]]:
    """``self.commit_managers[i]`` -> ``("self", ["commit_managers",
    "[]"])``; None for receivers rooted anywhere but a bare name."""
    steps: List[str] = []
    while True:
        if isinstance(node, ast.Attribute):
            steps.insert(0, node.attr)
            node = node.value
        elif isinstance(node, ast.Subscript):
            steps.insert(0, "[]")
            node = node.value
        elif isinstance(node, ast.Name):
            return node.id, steps
        else:
            return None


def _oldest(*taints: Optional[_Taint]) -> Optional[_Taint]:
    """The stalest (lowest-segment) taint of the inputs, if any."""
    best: Optional[_Taint] = None
    for taint in taints:
        if taint is not None and (best is None or taint.seg < best.seg):
            best = taint
    return best


class AtomicAnalysis:
    """Project-wide atomic facts: shared-footprint resolution, yield
    -point summaries, ReportAborted reachability, transaction-parameter
    typestate summaries, and the per-module walker cache."""

    def __init__(self, graph: CallGraph) -> None:
        self.graph = graph
        self._shared: Dict[Symbol, bool] = {}
        self._txn: Dict[Symbol, bool] = {}
        self._touch_cache: Dict[Node, Tuple[Set[str], Set[str]]] = {}
        self._yf_cache: Dict[Node, Tuple[Set[str], Set[str]]] = {}
        self.report_aborted: Set[Node] = self._compute_report_aborted()
        self.txn_summaries: Dict[Node, Dict[str, Set[str]]] = \
            self._compute_txn_summaries()
        self._module_cache: Dict[str, List[RawFinding]] = {}

    # -- classification ----------------------------------------------------

    def is_shared(self, symbol: Optional[Symbol]) -> bool:
        if symbol is None:
            return False
        cached = self._shared.get(symbol)
        if cached is None:
            cached = any(self.graph.is_subclass(symbol, base)
                         for base in SHARED_CLASSES)
            self._shared[symbol] = cached
        return cached

    def is_txn_class(self, symbol: Optional[Symbol]) -> bool:
        if symbol is None:
            return False
        cached = self._txn.get(symbol)
        if cached is None:
            cached = any(self.graph.is_subclass(symbol, base)
                         for base in TXN_CLASSES)
            self._txn[symbol] = cached
        return cached

    def footprint_of(self, module: str, info: Dict[str, Any],
                     chain: Sequence[str],
                     attr: str) -> Optional[Tuple[Symbol, str]]:
        """Resolve an owner chain + attribute to a shared footprint
        ``(owning class, attr)``, or None without shared evidence."""
        if not chain:
            return None
        entry = self.graph.eval_chain(module, info, chain[0],
                                      list(chain[1:]))
        if entry is None or entry.cls is None:
            return None
        if not self.is_shared(entry.cls):
            return None
        return entry.cls, attr

    @staticmethod
    def footprint_name(footprint: Tuple[Symbol, str]) -> str:
        return f"{footprint[0][1]}.{footprint[1]}"

    def pair_index(self, footprint: Tuple[Symbol, str]) -> Optional[int]:
        """Index into INVARIANT_PAIRS if this footprint is a member."""
        cls, attr = footprint
        for i, (pair_cls, a1, a2) in enumerate(INVARIANT_PAIRS):
            if attr in (a1, a2) and self.graph.is_subclass(cls, pair_cls):
                return i
        return None

    # -- yield-point summaries ---------------------------------------------

    def node_touches(self, node: Node) -> Tuple[Set[str], Set[str]]:
        """Resolved (reads, writes) shared-footprint names of one
        function, from its serialized touch records."""
        cached = self._touch_cache.get(node)
        if cached is not None:
            return cached
        reads: Set[str] = set()
        writes: Set[str] = set()
        info = self.graph.function_info(node)
        if info is not None:
            for rec in info.get("touch", []):
                chain = list(rec.get("c", []))
                footprint = self.footprint_of(node[0], info, chain,
                                              rec.get("a", ""))
                if footprint is None:
                    continue
                name = self.footprint_name(footprint)
                if rec.get("k") == "r":
                    reads.add(name)
                else:
                    writes.add(name)
        self._touch_cache[node] = (reads, writes)
        return reads, writes

    def yf_touches(self, node: Node) -> Tuple[Set[str], Set[str]]:
        """(reads, writes) including everything delegated-to through
        ``yield from`` chains -- the footprints a single preemption point
        may observe or disturb."""
        cached = self._yf_cache.get(node)
        if cached is not None:
            return cached
        reads: Set[str] = set()
        writes: Set[str] = set()
        seen: Set[Node] = set()
        stack: List[Node] = [node]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            direct = self.node_touches(current)
            reads.update(direct[0])
            writes.update(direct[1])
            stack.extend(self.graph.yf_edges.get(current, ()))
        self._yf_cache[node] = (reads, writes)
        return reads, writes

    def yield_summary(self, node: Node) -> List[Dict[str, Any]]:
        """Per-preemption-point summary of one generator: for yield
        point ``k`` (between segments ``k-1`` and ``k``), the shared
        footprints read at or before it and written at or after it --
        the window an interleaved coroutine could tear."""
        info = self.graph.function_info(node)
        if info is None:
            return []
        ylines = info.get("ylines", {})
        touches = info.get("touch", [])
        points: List[Dict[str, Any]] = []
        for seg_text, line in sorted(ylines.items(),
                                     key=lambda kv: int(kv[0])):
            seg = int(seg_text)
            read_before: Set[str] = set()
            written_after: Set[str] = set()
            for rec in touches:
                footprint = self.footprint_of(
                    node[0], info, list(rec.get("c", [])),
                    rec.get("a", ""))
                if footprint is None:
                    continue
                name = self.footprint_name(footprint)
                if rec.get("k") == "r" and rec.get("s", 0) < seg:
                    read_before.add(name)
                elif rec.get("k") != "r" and rec.get("s", 0) >= seg:
                    written_after.add(name)
            points.append({
                "yield": seg, "line": line,
                "reads_before": sorted(read_before),
                "writes_after": sorted(written_after),
            })
        return points

    # -- ReportAborted reachability (RA005) --------------------------------

    def _compute_report_aborted(self) -> Set[Node]:
        """Generators from which a ``yield effects.ReportAborted(...)``
        is reachable through ``yield from`` delegation."""
        direct: Set[Node] = set()
        for node, yields in self.graph.yielded_classes.items():
            if any(symbol == REPORT_ABORTED for _line, symbol in yields):
                direct.add(node)
        changed = True
        while changed:
            changed = False
            for src, dsts in self.graph.yf_edges.items():
                if src not in direct and any(d in direct for d in dsts):
                    direct.add(src)
                    changed = True
        return direct

    # -- transaction parameter summaries (RA004) ---------------------------

    def _txn_params(self, node: Node,
                    info: Dict[str, Any]) -> Set[str]:
        """Parameter names of ``node`` that are transaction-typed by
        annotation (plus ``self`` inside Transaction subclasses)."""
        names: Set[str] = set()
        for pname, pinfo in info.get("params", {}).items():
            entry = self.graph.entry_from_info(node[0], pinfo)
            if self.is_txn_class(entry.cls):
                names.add(pname)
        cls_name = info.get("cls")
        if cls_name is not None and \
                self.is_txn_class((node[0], cls_name)):
            names.add("self")
        return names

    def _compute_txn_summaries(self) -> Dict[Node, Dict[str, Set[str]]]:
        """Fixpoint: per function, which transaction-typed parameters it
        (transitively) finishes or uses.  Used by the walker to extend
        the typestate contract across the call graph."""
        summaries: Dict[Node, Dict[str, Set[str]]] = {}
        infos: Dict[Node, Dict[str, Any]] = {}
        params: Dict[Node, Set[str]] = {}
        for module, flow in self.graph.flows.items():
            for qualname, info in flow.functions.items():
                node = (module, qualname)
                infos[node] = info
                candidates = self._txn_params(node, info)
                params[node] = candidates
                summaries[node] = {"fin": set(), "use": set()}
        changed = True
        while changed:
            changed = False
            for node, info in infos.items():
                candidates = params[node]
                if not candidates:
                    continue
                summary = summaries[node]
                for call in info.get("calls", []):
                    changed |= self._apply_call(node, info, call,
                                                candidates, summary,
                                                summaries)
        return summaries

    def _apply_call(self, node: Node, info: Dict[str, Any],
                    call: Dict[str, Any], candidates: Set[str],
                    summary: Dict[str, Set[str]],
                    summaries: Dict[Node, Dict[str, Set[str]]]) -> bool:
        changed = False
        if (call.get("k") == "attr" and not call.get("steps")
                and call.get("root") in candidates):
            root = call["root"]
            if call.get("attr") in FINISHING_METHODS and \
                    root not in summary["fin"]:
                summary["fin"].add(root)
                changed = True
            if call.get("attr") in USING_METHODS and \
                    root not in summary["use"]:
                summary["use"].add(root)
                changed = True
        args = call.get("args")
        if not args:
            return changed
        for target in self.graph.resolve_call_quiet(
                node[0], node[1], info, call):
            tinfo = self.graph.function_info(target)
            tsummary = summaries.get(target)
            if tinfo is None or tsummary is None:
                continue
            pnames = list(tinfo.get("pnames", []))
            if "." in target[1] and pnames and \
                    pnames[0] in ("self", "cls"):
                pnames = pnames[1:]
            for arg_name, pname in zip(args, pnames):
                if arg_name is None or arg_name not in candidates:
                    continue
                if pname in tsummary["fin"] and \
                        arg_name not in summary["fin"]:
                    summary["fin"].add(arg_name)
                    changed = True
                if pname in tsummary["use"] and \
                        arg_name not in summary["use"]:
                    summary["use"].add(arg_name)
                    changed = True
        return changed

    # -- per-module analysis (live trees) ----------------------------------

    def module_findings(self, summary: ModuleSummary,
                        tree: ast.Module) -> List[RawFinding]:
        """All RA findings for one live module, walker-cached."""
        cached = self._module_cache.get(summary.module)
        if cached is not None:
            return cached
        flow = self.graph.flows.get(summary.module)
        findings: List[RawFinding] = []
        if flow is not None:
            interleaving = in_prefixes(summary.module, ATOMIC_PACKAGES)

            def visit(node: ast.AST, class_name: Optional[str],
                      prefix: str) -> None:
                for child in ast.iter_child_nodes(node):
                    if isinstance(child, (ast.FunctionDef,
                                          ast.AsyncFunctionDef)):
                        qualname = prefix + child.name
                        info = flow.functions.get(qualname)
                        if info is not None:
                            walker = _FunctionWalker(
                                self, summary, qualname, info, child)
                            walker.run(interleaving)
                            findings.extend(walker.findings)
                        visit(child, class_name, qualname + ".")
                    elif isinstance(child, ast.ClassDef):
                        visit(child, child.name, child.name + ".")
                    else:
                        visit(child, class_name, prefix)

            visit(tree, None, "")
            findings.extend(self._validator_findings(summary.module, flow))
        findings.sort()
        self._module_cache[summary.module] = findings
        return findings

    def _validator_findings(self, module: str,
                            flow: Any) -> List[RawFinding]:
        """RA005(b): a class that registers commit intents with a
        validator must also wire the abort path (``on_aborted``), or
        the validator's in-flight window leaks aborted writers."""
        findings: List[RawFinding] = []
        by_class: Dict[str, List[Tuple[str, Dict[str, Any]]]] = {}
        for qualname, info in flow.functions.items():
            cls = info.get("cls")
            if cls is not None and qualname.startswith(cls + "."):
                by_class.setdefault(cls, []).append((qualname, info))
        for cls, methods in sorted(by_class.items()):
            registers: List[Tuple[int, Tuple[str, ...]]] = []
            releases: Set[Tuple[str, ...]] = set()
            for _qualname, info in methods:
                for call in info.get("calls", []):
                    if call.get("k") != "attr":
                        continue
                    chain = (call.get("root", ""),
                             *call.get("steps", []))
                    if call.get("attr") == "validate_and_register":
                        registers.append((call.get("line", 0), chain))
                    elif call.get("attr") == "on_aborted":
                        releases.add(chain)
            for line, chain in registers:
                if chain not in releases:
                    receiver = ".".join(chain)
                    findings.append((line, "RA005", (
                        f"`{cls}` registers commit intents via "
                        f"`{receiver}.validate_and_register(...)` but no "
                        f"method of the class ever calls "
                        f"`{receiver}.on_aborted(...)`; aborted "
                        f"transactions would stay in the validator's "
                        f"in-flight window forever"
                    )))
        return findings


class _FunctionWalker:
    """Path-sensitive walk of one live function body.

    Tracks the lexical yield-segment counter, per-local taints, active
    stale guards (including early-exit residual guards), shared-footprint
    read/write events, invariant-pair writes, and transaction typestate.
    Loops containing a preemption point are traversed twice so
    iteration-order staleness (element bound before the yield, tested
    after it) is observed.  Branch joins are optimistic -- the freshest
    binding wins -- matching the repo's no-finding-over-speculation bar.
    """

    _LOOP_PASSES = 2

    def __init__(self, analysis: AtomicAnalysis, summary: ModuleSummary,
                 qualname: str, info: Dict[str, Any],
                 func: ast.AST) -> None:
        self.an = analysis
        self.summary = summary
        self.module = summary.module
        self.qualname = qualname
        self.info = info
        self.func = func
        self.findings: List[RawFinding] = []
        self._keys: Set[Tuple[str, int, str]] = set()
        self.seg = 0
        self.order = 0
        self.yield_lines: Dict[int, int] = {}
        self.names: Dict[str, _Taint] = {}
        #: Typestate per receiver key (local name or dotted self-chain):
        #: [state, finish_line, finisher]; state in run/fin/maybe.
        self.txn: Dict[str, List[Any]] = {}
        self.interleaving = True
        #: fp name -> [(order, seg, line)] structural mutations (RA002).
        self.mutations: Dict[str, List[Tuple[int, int, int]]] = {}
        #: fp name -> [(order, seg)] reads (RA002 recheck evidence).
        self.reads: Dict[str, List[Tuple[int, int]]] = {}
        #: pair index -> attr -> [(seg, line)] (RA003).
        self.pairs: Dict[int, Dict[str, List[Tuple[int, int]]]] = {}
        #: RA005(a): (order, line, receiver) obligations / discharge orders.
        self.obligations: List[Tuple[int, int, str]] = []
        self.discharges: List[int] = []
        self._guards: List[_Guard] = []
        self._globals: Set[str] = set()
        self._noreturn = False
        for pname, pinfo in info.get("params", {}).items():
            entry = analysis.graph.entry_from_info(self.module, pinfo)
            if analysis.is_txn_class(entry.cls):
                self.txn[pname] = ["run", 0, ""]
        cls_name = info.get("cls")
        if cls_name is not None and \
                analysis.is_txn_class((self.module, cls_name)):
            self.txn["self"] = ["run", 0, ""]

    # -- driver ------------------------------------------------------------

    def run(self, interleaving: bool) -> None:
        self.interleaving = interleaving
        body = list(getattr(self.func, "body", []))
        self._exec_block(body, [])
        if interleaving:
            self._finish_mutations()
            self._finish_pairs()
        self._finish_obligations()

    def _emit(self, line: int, code: str, message: str) -> None:
        key = (code, line, message[:60])
        if key in self._keys:
            return
        self._keys.add(key)
        self.findings.append((line, code, message))

    # -- finish passes -----------------------------------------------------

    def _finish_mutations(self) -> None:
        """RA002: structural mutations of one shared collection in two
        different segments with no re-read in the later segment."""
        for fp, events in sorted(self.mutations.items()):
            events.sort()
            reads = self.reads.get(fp, [])
            for (o1, s1, l1), (o2, s2, l2) in zip(events, events[1:]):
                if s2 <= s1:
                    continue
                rechecked = any(rs == s2 and ro < o2 for ro, rs in reads)
                if rechecked:
                    continue
                yline = self.yield_lines.get(s1 + 1, l1)
                self._emit(l2, "RA002", (
                    f"shared collection `{fp}` is structurally mutated "
                    f"at line {l1} (segment {s1}) and again at line "
                    f"{l2} (segment {s2}) across the preemption point "
                    f"at line {yline}, with no re-read of `{fp}` after "
                    f"the yield; an interleaved coroutine may have "
                    f"changed it -- re-read (or generation-check) the "
                    f"collection after the yield"
                ))
                break

    def _finish_pairs(self) -> None:
        """RA003: both members of a declared invariant pair written, but
        some segment updates only one of them."""
        for pid, members in sorted(self.pairs.items()):
            _cls, a1, a2 = INVARIANT_PAIRS[pid]
            first = members.get(a1)
            second = members.get(a2)
            if not first or not second:
                continue
            segs1 = {seg for seg, _line in first}
            segs2 = {seg for seg, _line in second}
            for seg in sorted(segs1 ^ segs2):
                events = first if seg in segs1 else second
                lone = a1 if seg in segs1 else a2
                other = a2 if seg in segs1 else a1
                line = min(ln for s, ln in events if s == seg)
                yline = self.yield_lines.get(seg, line) if seg else \
                    self.yield_lines.get(1, line)
                self._emit(line, "RA003", (
                    f"invariant pair (`{a1}`, `{a2}`) of "
                    f"`{_cls[1]}` is torn across a yield: `{lone}` is "
                    f"updated in segment {seg} but `{other}` is not "
                    f"(preemption point at line {yline}); an "
                    f"interleaved coroutine can observe the pair "
                    f"half-updated -- move both writes to the same "
                    f"side of the yield"
                ))
                break

    def _finish_obligations(self) -> None:
        """RA005(a): every ``.state = TxnState.ABORTED`` must be
        followed by a ReportAborted delivery on the same path."""
        for order, line, receiver in self.obligations:
            if any(d > order for d in self.discharges):
                continue
            self._emit(line, "RA005", (
                f"`{receiver}.state` is set to TxnState.ABORTED at line "
                f"{line} but no `yield effects.ReportAborted(...)` (or "
                f"delegation that reaches one) follows in "
                f"`{self.qualname}`; the commit manager would keep the "
                f"transaction in its active window forever"
            ))

    # -- statement execution -----------------------------------------------

    def _exec_block(self, stmts: Sequence[ast.stmt],
                    guards: List[_Guard]) -> Optional[str]:
        active = list(guards)
        for stmt in stmts:
            result = self._exec_stmt(stmt, active)
            if result is not None:
                return result
        return None

    def _exec_stmt(self, stmt: ast.stmt,
                   guards: List[_Guard]) -> Optional[str]:
        self._noreturn = False
        if isinstance(stmt, ast.Expr):
            self._eval(stmt.value, guards, None)
            return "return" if self._noreturn else None
        if isinstance(stmt, ast.Assign):
            taint = self._eval(stmt.value, guards, None)
            for target in stmt.targets:
                self._assign_target(target, stmt.value, taint, guards)
            return None
        if isinstance(stmt, ast.AnnAssign):
            taint = self._eval(stmt.value, guards, None) \
                if stmt.value is not None else None
            self._assign_target(stmt.target, stmt.value, taint, guards,
                                annotation=stmt.annotation)
            return None
        if isinstance(stmt, ast.AugAssign):
            taint = self._eval(stmt.value, guards, None)
            if isinstance(stmt.target, ast.Name):
                name = stmt.target.id
                combined = _oldest(self.names.get(name), taint)
                if combined is not None:
                    self.names[name] = combined
                if name in self._globals:
                    self._shared_write(
                        f"{self.module}.{name}", None, "aug",
                        stmt.lineno, guards)
            else:
                self._write_target(stmt.target, None, guards,
                                   stmt.lineno, kind="aug")
            return None
        if isinstance(stmt, ast.If):
            return self._exec_if(stmt, guards)
        if isinstance(stmt, (ast.For, ast.While)):
            return self._exec_loop(stmt, guards)
        if isinstance(stmt, ast.Try):
            return self._exec_try(stmt, guards)
        if isinstance(stmt, ast.With):
            for item in stmt.items:
                taint = self._eval(item.context_expr, guards, None)
                if isinstance(item.optional_vars, ast.Name):
                    self._bind(item.optional_vars.id, None, taint)
            return self._exec_block(stmt.body, guards)
        if isinstance(stmt, ast.Return):
            self._eval(stmt.value, guards, None)
            return "return"
        if isinstance(stmt, ast.Raise):
            self._eval(stmt.exc, guards, None)
            return "return"
        if isinstance(stmt, ast.Break):
            return "break"
        if isinstance(stmt, ast.Continue):
            return "continue"
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    self._write_target(target, None, guards,
                                       stmt.lineno, kind="del")
            return None
        if isinstance(stmt, ast.Global):
            self._globals.update(stmt.names)
            return None
        if isinstance(stmt, ast.Assert):
            self._eval(stmt.test, guards, None)
            return None
        return None

    def _exec_if(self, stmt: ast.If,
                 guards: List[_Guard]) -> Optional[str]:
        used: List[Tuple[str, _Taint]] = []
        self._eval(stmt.test, guards, used)
        guard = self._make_guard(stmt.test.lineno
                                 if hasattr(stmt.test, "lineno")
                                 else stmt.lineno, used)
        inner = guards + [guard] if guard is not None else list(guards)
        snap_names = dict(self.names)
        snap_txn = {k: list(v) for k, v in self.txn.items()}
        r_body = self._exec_block(stmt.body, inner)
        body_names, body_txn = self.names, self.txn
        self.names = dict(snap_names)
        self.txn = {k: list(v) for k, v in snap_txn.items()}
        r_else: Optional[str] = None
        if stmt.orelse:
            r_else = self._exec_block(stmt.orelse, inner)
        else_names, else_txn = self.names, self.txn
        self._join(body_names, body_txn, r_body,
                   else_names, else_txn, r_else)
        if guard is not None and r_body is not None and not stmt.orelse:
            # Early-exit guard: the test's staleness keeps guarding the
            # fall-through path until the stale local is rebound.
            guards.append(guard)
        return None

    def _join(self, a_names: Dict[str, _Taint], a_txn: Dict[str, List[Any]],
              r_a: Optional[str],
              b_names: Dict[str, _Taint], b_txn: Dict[str, List[Any]],
              r_b: Optional[str]) -> None:
        if r_a is not None and r_b is None:
            self.names, self.txn = b_names, b_txn
            return
        if r_b is not None and r_a is None:
            self.names, self.txn = a_names, a_txn
            return
        names: Dict[str, _Taint] = {}
        for name in set(a_names) & set(b_names):
            ta, tb = a_names[name], b_names[name]
            names[name] = ta if ta.seg >= tb.seg else tb
        txn: Dict[str, List[Any]] = {}
        for key in set(a_txn) & set(b_txn):
            if a_txn[key][0] == b_txn[key][0]:
                txn[key] = list(a_txn[key])
        self.names, self.txn = names, txn

    def _exec_loop(self, stmt: ast.stmt,
                   guards: List[_Guard]) -> Optional[str]:
        passes = self._LOOP_PASSES if _has_yield(stmt) else 1
        for _ in range(passes):
            inner: List[_Guard] = list(guards)
            if isinstance(stmt, ast.While):
                used: List[Tuple[str, _Taint]] = []
                self._eval(stmt.test, guards, used)
                guard = self._make_guard(stmt.lineno, used)
                if guard is not None:
                    inner.append(guard)
            else:
                assert isinstance(stmt, ast.For)
                taint = self._eval(stmt.iter, guards, None)
                self._bind_loop_target(stmt.target, taint)
            self._exec_block(stmt.body, inner)
        orelse = getattr(stmt, "orelse", [])
        if orelse:
            self._exec_block(orelse, guards)
        return None

    def _bind_loop_target(self, target: ast.expr,
                          taint: Optional[_Taint]) -> None:
        if isinstance(target, ast.Name):
            self._bind(target.id, None, taint)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind_loop_target(elt, taint)

    def _exec_try(self, stmt: ast.Try,
                  guards: List[_Guard]) -> Optional[str]:
        snap_txn = {k: list(v) for k, v in self.txn.items()}
        r_body = self._exec_block(stmt.body, guards)
        if r_body is None and stmt.orelse:
            r_body = self._exec_block(stmt.orelse, guards)
        body_txn = {k: list(v) for k, v in self.txn.items()}
        survivors: List[Dict[str, List[Any]]] = []
        if r_body is None:
            survivors.append(body_txn)
        for handler in stmt.handlers:
            # The handler may run after any prefix of the body: only
            # typestates the body did not change are trustworthy.
            self.txn = {
                k: list(v) for k, v in snap_txn.items()
                if k in body_txn and body_txn[k][0] == v[0]
            }
            if handler.name is not None:
                self.names.pop(handler.name, None)
            r_handler = self._exec_block(handler.body, guards)
            if r_handler is None:
                survivors.append({k: list(v)
                                  for k, v in self.txn.items()})
        if survivors:
            joined = survivors[0]
            for other in survivors[1:]:
                joined = {
                    k: v for k, v in joined.items()
                    if k in other and other[k][0] == v[0]
                }
            self.txn = joined
        else:
            self.txn = {}
        if stmt.finalbody:
            r_final = self._exec_block(stmt.finalbody, guards)
            if r_final is not None:
                return r_final
        if not survivors and not stmt.finalbody:
            return "return"
        return None

    # -- binding and writes ------------------------------------------------

    def _make_guard(self, line: int,
                    used: List[Tuple[str, _Taint]]) -> Optional[_Guard]:
        stale: List[Tuple[str, _Taint]] = []
        seen: Set[str] = set()
        for name, taint in used:
            if taint.seg < self.seg and name not in seen:
                seen.add(name)
                stale.append((name, taint))
        if not stale:
            return None
        guard = _Guard(line, stale)
        self._guards.append(guard)
        return guard

    def _assign_target(self, target: ast.expr, value: Optional[ast.expr],
                       taint: Optional[_Taint], guards: List[_Guard],
                       annotation: Optional[ast.expr] = None) -> None:
        if isinstance(target, ast.Name):
            if target.id in self._globals:
                self._shared_write(f"{self.module}.{target.id}", None,
                                   "set", target.lineno, guards)
            self._bind(target.id, value, taint, annotation)
        elif isinstance(target, (ast.Tuple, ast.List)):
            if isinstance(value, (ast.Tuple, ast.List)) and \
                    len(value.elts) == len(target.elts):
                for sub_t, sub_v in zip(target.elts, value.elts):
                    self._assign_target(sub_t, sub_v, taint, guards)
            else:
                for sub_t in target.elts:
                    self._assign_target(sub_t, None, taint, guards)
        elif isinstance(target, ast.Starred):
            self._assign_target(target.value, None, taint, guards)
        elif isinstance(target, (ast.Attribute, ast.Subscript)):
            self._write_target(target, value, guards,
                               getattr(target, "lineno", 0))

    def _bind(self, name: str, value: Optional[ast.expr],
              taint: Optional[_Taint],
              annotation: Optional[ast.expr] = None) -> None:
        # Rebinding dissolves any guard conditioned on the old value.
        for guard in self._guards:
            if guard.stale:
                guard.stale = [(n, t) for n, t in guard.stale
                               if n != name]
        if taint is not None:
            self.names[name] = taint
        else:
            self.names.pop(name, None)
        self._bind_txn(name, value, annotation)

    def _bind_txn(self, name: str, value: Optional[ast.expr],
                  annotation: Optional[ast.expr]) -> None:
        if annotation is not None:
            ref = name_ref_of(annotation) or (
                ("name", annotation.value)
                if isinstance(annotation, ast.Constant)
                and isinstance(annotation.value, str)
                and annotation.value.isidentifier() else None)
            if self.an.is_txn_class(self.summary.resolve_ref(ref)):
                self.txn[name] = ["run", 0, ""]
                return
        if isinstance(value, (ast.Yield, ast.YieldFrom, ast.Await)):
            value = value.value
        if isinstance(value, ast.Name):
            if value.id in self.txn:
                self.txn[name] = list(self.txn[value.id])
                return
        elif isinstance(value, ast.Attribute):
            flattened = _flatten(value)
            if flattened is not None:
                root, steps = flattened
                chain_key = ".".join([root] + steps + [value.attr])
                if chain_key in self.txn:
                    self.txn[name] = list(self.txn[chain_key])
                    return
                entry = self.an.graph.eval_chain(
                    self.module, self.info, root, steps + [value.attr])
                if entry is not None and \
                        self.an.is_txn_class(entry.cls):
                    self.txn[name] = ["run", 0, ""]
                    return
        elif isinstance(value, ast.Call):
            desc = self._desc_of(value)
            if desc is not None:
                targets = self.an.graph.resolve_call_quiet(
                    self.module, self.qualname, self.info, desc)
                if any(t in TXN_FACTORIES for t in targets):
                    self.txn[name] = ["run", 0, ""]
                    return
        self.txn.pop(name, None)

    def _write_target(self, target: ast.expr, value: Optional[ast.expr],
                      guards: List[_Guard], line: int,
                      kind: str = "set") -> None:
        node: ast.expr = target
        while isinstance(node, ast.Subscript):
            self._eval(node.slice, guards, None)
            node = node.value
            if kind == "set":
                kind = "sub"
        if isinstance(node, ast.Name):
            if kind in _STRUCTURAL_KINDS and node.id in self._globals:
                self._shared_write(f"{self.module}.{node.id}", None,
                                   kind, line, guards)
            return
        if not isinstance(node, ast.Attribute):
            return
        flattened = _flatten(node.value)
        if flattened is None:
            return
        root, steps = flattened
        attr = node.attr
        self._check_abort_obligation(root, steps, attr, value, line)
        footprint = self.an.footprint_of(self.module, self.info,
                                         [root] + steps, attr)
        if footprint is None:
            return
        self._shared_write(self.an.footprint_name(footprint),
                           footprint, kind, line, guards)

    def _shared_write(self, fp_name: str,
                      footprint: Optional[Tuple[Symbol, str]],
                      kind: str, line: int,
                      guards: List[_Guard]) -> None:
        if not self.interleaving:
            return
        self.order += 1
        if kind in _STRUCTURAL_KINDS:
            self.mutations.setdefault(fp_name, []).append(
                (self.order, self.seg, line))
        if footprint is not None:
            pid = self.an.pair_index(footprint)
            if pid is not None:
                self.pairs.setdefault(pid, {}).setdefault(
                    footprint[1], []).append((self.seg, line))
        if kind != "call":
            self._act(line, f"write to shared `{fp_name}`", guards)

    def _act(self, line: int, desc: str, guards: List[_Guard]) -> None:
        """RA001: an unconditional shared write under a stale guard."""
        if not self.interleaving:
            return
        for guard in guards:
            if not guard.stale:
                continue
            name, taint = guard.stale[0]
            yline = self.yield_lines.get(taint.seg + 1, taint.line)
            self._emit(line, "RA001", (
                f"{desc} at line {line} is guarded by the test at line "
                f"{guard.line} on `{name}`, whose value was read "
                f"{taint.origin} (segment {taint.seg}) -- before the "
                f"preemption point at line {yline} -- and never "
                f"re-read; an interleaved coroutine can invalidate the "
                f"check between the yield and the write.  Re-read "
                f"after the yield or use a conditional "
                f"PutIfVersion/DeleteIfVersion write"
            ))
            return

    def _check_abort_obligation(self, root: str, steps: List[str],
                                attr: str, value: Optional[ast.expr],
                                line: int) -> None:
        """RA004/RA005(a): `<txn>.state = TxnState.ABORTED/COMMITTED`
        is the transaction's finish event -- it releases the snapshot
        (typestate) and, for ABORTED, obliges a ReportAborted."""
        if attr != "state" or not isinstance(value, ast.Attribute) or \
                value.attr not in ("ABORTED", "COMMITTED"):
            return
        base_ref = name_ref_of(value.value)
        if self.summary.resolve_ref(base_ref) != TXN_STATE:
            return
        receiver = ".".join([root] + steps)
        is_txn = receiver in self.txn or (
            root == "self" and not steps and "self" in self.txn)
        if not is_txn:
            entry = self.an.graph.eval_chain(self.module, self.info,
                                             root, steps)
            is_txn = entry is not None and \
                self.an.is_txn_class(entry.cls)
        if not is_txn:
            return
        self._txn_finish(receiver, f"state = TxnState.{value.attr}",
                         line)
        if value.attr == "ABORTED":
            self.order += 1
            self.obligations.append((self.order, line, receiver))

    # -- expression evaluation ---------------------------------------------

    def _bump(self, line: int) -> None:
        self.seg += 1
        self.yield_lines[self.seg] = line

    def _effect_symbol(self,
                       value: Optional[ast.expr]) -> Optional[Symbol]:
        if isinstance(value, ast.Call):
            return self.summary.resolve_ref(name_ref_of(value.func))
        return None

    def _desc_of(self, call: ast.Call) -> Optional[Dict[str, Any]]:
        func = call.func
        if isinstance(func, ast.Name):
            return {"k": "name", "fn": func.id, "line": call.lineno}
        if isinstance(func, ast.Attribute):
            flattened = _flatten(func.value)
            if flattened is None:
                return None
            root, steps = flattened
            return {"k": "attr", "root": root, "steps": steps,
                    "attr": func.attr, "line": call.lineno}
        if isinstance(func, ast.Subscript):
            table = name_ref_of(func.value)
            if table is not None:
                return {"k": "table", "table": list(table),
                        "line": call.lineno}
        return None

    def _read_event(self, fp_name: str) -> _Taint:
        self.order += 1
        self.reads.setdefault(fp_name, []).append((self.order, self.seg))
        return _Taint(self.seg, 0, f"from shared `{fp_name}`")

    def _eval(self, expr: Optional[ast.expr], guards: List[_Guard],
              used: Optional[List[Tuple[str, _Taint]]]
              ) -> Optional[_Taint]:
        if expr is None:
            return None
        if isinstance(expr, ast.Yield):
            inner = expr.value
            self._eval(inner, guards, used)  # args evaluate pre-yield
            effect = self._effect_symbol(inner)
            if effect in WRITE_EFFECTS:
                self._act(expr.lineno,
                          f"unconditional `yield effects."
                          f"{effect[1] if effect else '?'}(...)`",
                          guards)
            if effect == REPORT_ABORTED:
                self.order += 1
                self.discharges.append(self.order)
            self._bump(expr.lineno)
            what = f"effects.{effect[1]}" if effect is not None \
                else "a yield"
            return _Taint(self.seg, expr.lineno,
                          f"from `yield {what}(...)` at line "
                          f"{expr.lineno}")
        if isinstance(expr, ast.YieldFrom):
            targets: List[Node] = []
            if isinstance(expr.value, ast.Call):
                targets = self._call(expr.value, guards, used)
            else:
                self._eval(expr.value, guards, used)
            if any(t in self.an.report_aborted for t in targets):
                self.order += 1
                self.discharges.append(self.order)
            self._bump(expr.lineno)
            # A delegated generator's own reads count as re-reads at
            # this preemption point.
            for target in targets:
                for fp_name in sorted(self.an.yf_touches(target)[0]):
                    self._read_event(fp_name)
            return _Taint(self.seg, expr.lineno,
                          f"from `yield from ...` at line {expr.lineno}")
        if isinstance(expr, ast.Await):
            return self._eval(expr.value, guards, used)
        if isinstance(expr, ast.Call):
            taints = [self._call_taint(expr, guards, used)]
            return _oldest(*taints)
        if isinstance(expr, ast.Name):
            taint = self.names.get(expr.id)
            if taint is not None and used is not None:
                used.append((expr.id, taint))
            return taint
        if isinstance(expr, ast.Attribute):
            flattened = _flatten(expr.value)
            if flattened is not None:
                root, steps = flattened
                footprint = self.an.footprint_of(
                    self.module, self.info, [root] + steps, expr.attr)
                if footprint is not None and self.interleaving:
                    name = self.an.footprint_name(footprint)
                    taint = self._read_event(name)
                    taint.line = expr.lineno
                    taint.origin = (f"from shared `{name}` at line "
                                    f"{expr.lineno}")
                    return taint
                root_taint = self.names.get(root)
                if root_taint is not None and used is not None:
                    used.append((root, root_taint))
                return root_taint
            return self._eval(expr.value, guards, used)
        if isinstance(expr, ast.Subscript):
            base = self._eval(expr.value, guards, used)
            self._eval(expr.slice, guards, used)
            return base
        if isinstance(expr, ast.BoolOp):
            return _oldest(*[self._eval(v, guards, used)
                             for v in expr.values])
        if isinstance(expr, ast.BinOp):
            return _oldest(self._eval(expr.left, guards, used),
                           self._eval(expr.right, guards, used))
        if isinstance(expr, ast.UnaryOp):
            return self._eval(expr.operand, guards, used)
        if isinstance(expr, ast.Compare):
            return _oldest(self._eval(expr.left, guards, used),
                           *[self._eval(c, guards, used)
                             for c in expr.comparators])
        if isinstance(expr, ast.IfExp):
            return _oldest(self._eval(expr.test, guards, used),
                           self._eval(expr.body, guards, used),
                           self._eval(expr.orelse, guards, used))
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            return _oldest(*[self._eval(e, guards, used)
                             for e in expr.elts])
        if isinstance(expr, ast.Dict):
            parts = [self._eval(k, guards, used)
                     for k in expr.keys if k is not None]
            parts.extend(self._eval(v, guards, used)
                         for v in expr.values)
            return _oldest(*parts)
        if isinstance(expr, ast.Starred):
            return self._eval(expr.value, guards, used)
        if isinstance(expr, ast.JoinedStr):
            for value in expr.values:
                if isinstance(value, ast.FormattedValue):
                    self._eval(value.value, guards, used)
            return None
        if isinstance(expr, (ast.ListComp, ast.SetComp, ast.DictComp,
                             ast.GeneratorExp)):
            parts = [self._eval(gen.iter, guards, used)
                     for gen in expr.generators]
            return _oldest(*parts)
        if isinstance(expr, ast.NamedExpr):
            taint = self._eval(expr.value, guards, used)
            if isinstance(expr.target, ast.Name):
                self._bind(expr.target.id, expr.value, taint)
            return taint
        return None

    # -- calls -------------------------------------------------------------

    def _call_taint(self, call: ast.Call, guards: List[_Guard],
                    used: Optional[List[Tuple[str, _Taint]]]
                    ) -> Optional[_Taint]:
        targets = self._call(call, guards, used)
        del targets
        return self._last_call_taint

    def _call(self, call: ast.Call, guards: List[_Guard],
              used: Optional[List[Tuple[str, _Taint]]]) -> List[Node]:
        func = call.func
        taints: List[Optional[_Taint]] = []
        if isinstance(func, ast.Attribute):
            taints.append(self._eval(func.value, guards, used))
        elif not isinstance(func, ast.Name):
            taints.append(self._eval(func, guards, used))
        for arg in call.args:
            taints.append(self._eval(arg, guards, used))
        for keyword in call.keywords:
            taints.append(self._eval(keyword.value, guards, used))
        self._last_call_taint = _oldest(*taints)

        targets: List[Node] = []
        desc = self._desc_of(call)
        if desc is not None:
            targets = self.an.graph.resolve_call_quiet(
                self.module, self.qualname, self.info, desc)

        if isinstance(func, ast.Attribute):
            self._method_effects(func, call, guards, targets)
        self._propagate_txn(call, targets)
        return targets

    _last_call_taint: Optional[_Taint] = None

    def _method_effects(self, func: ast.Attribute, call: ast.Call,
                        guards: List[_Guard],
                        targets: List[Node]) -> None:
        attr = func.attr
        # Structural mutator call on a shared attribute.
        flattened = _flatten(func.value)
        if flattened is not None and attr in ATOMIC_MUTATORS:
            root, steps = flattened
            if steps and steps[-1] != "[]":
                footprint = self.an.footprint_of(
                    self.module, self.info, [root] + steps[:-1],
                    steps[-1])
                if footprint is not None:
                    self._shared_write(
                        self.an.footprint_name(footprint), footprint,
                        "call", call.lineno, guards)
        # Transaction typestate events.
        if attr in FINISHING_METHODS or attr in USING_METHODS:
            key = self._txn_key(func.value)
            if key is not None:
                if attr in FINISHING_METHODS:
                    self._txn_finish(key, f".{attr}(...)", call.lineno)
                    if attr in NORETURN_FINISHERS:
                        self._noreturn = True
                else:
                    self._txn_use(
                        key, f"`.{attr}(...)`", call.lineno)

    def _txn_key(self, receiver: ast.expr) -> Optional[str]:
        if isinstance(receiver, ast.Name):
            if receiver.id in self.txn:
                return receiver.id
            entry = self.an.graph.eval_name(self.module, self.info,
                                            receiver.id)
            if entry is not None and self.an.is_txn_class(entry.cls):
                self.txn[receiver.id] = ["run", 0, ""]
                return receiver.id
            return None
        flattened = _flatten(receiver)
        if flattened is None:
            return None
        root, steps = flattened
        key = ".".join([root] + steps)
        if key in self.txn:
            return key
        entry = self.an.graph.eval_chain(self.module, self.info,
                                         root, steps)
        if entry is not None and self.an.is_txn_class(entry.cls):
            self.txn[key] = ["run", 0, ""]
            return key
        return None

    def _txn_finish(self, key: str, how: str, line: int) -> None:
        """``how`` is a display phrase like ``.abort(...)`` or
        ``state = TxnState.ABORTED``."""
        state = self.txn.get(key)
        if state is None:
            return
        if state[0] == "fin":
            self._emit(line, "RA004", (
                f"transaction `{key}` is finished again by "
                f"`{how}` at line {line}: it was already finished by "
                f"`{state[2]}` at line {state[1]} on this path "
                f"(its snapshot must be released exactly once)"
            ))
        self.txn[key] = ["fin", line, how]

    def _txn_use(self, key: str, what: str, line: int) -> None:
        state = self.txn.get(key)
        if state is None or state[0] != "fin":
            return
        self._emit(line, "RA004", (
            f"transaction `{key}` is used by {what} at line {line} "
            f"after being finished by `{state[2]}` at line "
            f"{state[1]}; its snapshot and write set are released at "
            f"commit/abort, so no reads or writes may follow"
        ))

    def _propagate_txn(self, call: ast.Call,
                       targets: List[Node]) -> None:
        """Interprocedural typestate: passing a finished transaction to
        a callee that uses it (per the fixpoint summaries) is a use;
        a callee that finishes it downgrades certainty to `maybe`."""
        arg_names = [arg.id if isinstance(arg, ast.Name) else None
                     for arg in call.args]
        if not any(arg_names):
            return
        for target in targets:
            tinfo = self.an.graph.function_info(target)
            tsummary = self.an.txn_summaries.get(target)
            if tinfo is None or tsummary is None:
                continue
            pnames = list(tinfo.get("pnames", []))
            if "." in target[1] and pnames and \
                    pnames[0] in ("self", "cls"):
                pnames = pnames[1:]
            for arg_name, pname in zip(arg_names, pnames):
                if arg_name is None or arg_name not in self.txn:
                    continue
                if pname in tsummary["use"]:
                    self._txn_use(
                        arg_name,
                        f"`{target[0]}.{target[1]}` (which reads or "
                        f"writes through it)", call.lineno)
                if pname in tsummary["fin"]:
                    state = self.txn[arg_name]
                    if state[0] == "run":
                        self.txn[arg_name] = \
                            ["maybe", call.lineno, target[1]]
