"""Link per-module flow summaries into a project-wide call graph.

Nodes are ``(module, qualname)`` pairs, one per function or method.
Edges are added only on explicit evidence, mirroring the pass-1 policy
("no finding over speculation" -- here: no *edge* over speculation):

* bare-name calls resolve through local bindings, module-level
  functions, and the import table;
* method calls resolve when the receiver's class is known -- ``self`` /
  ``cls``, an annotated parameter or local, a local ``ClassName(...)``
  construction, or an attribute chain whose types were recorded by
  :mod:`repro.lint.flow.summary` (``self.commit_managers[i]`` resolves
  through the ``List[CommitManager]`` annotation on ``__init__``);
* ``yield from f(...)`` is a call edge flagged as *delegation*, so
  effect-yield taint flows through coroutine chains;
* ``TABLE[key](...)`` fans out to every callable registered in a
  module-level dispatch table (``TRANSACTIONS`` in the TPC-C driver,
  ``_KIND_BY_CLASS`` in the dispatch core).

Method lookup walks the class's bases across modules (name-based MRO
approximation, same scheme the pass-1 index uses within one module).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.lint.index import ModuleSummary, ProjectIndex, Symbol
from repro.lint.flow.summary import ModuleFlow

Node = Tuple[str, str]  # (dotted module, function qualname)

_MAX_EVAL_DEPTH = 8


class _TypeEntry:
    """Evaluated type evidence: the value's class and/or its element
    class (for containers), and -- for bound methods -- a call target."""

    __slots__ = ("cls", "elem", "func")

    def __init__(self, cls: Optional[Symbol] = None,
                 elem: Optional[Symbol] = None,
                 func: Optional[Node] = None) -> None:
        self.cls = cls
        self.elem = elem
        self.func = func


class CallGraph:
    """The linked project call graph plus per-node resolution caches."""

    def __init__(self, index: ProjectIndex, flows: Dict[str, ModuleFlow]) -> None:
        self.index = index
        self.flows = flows
        self.nodes: Set[Node] = set()
        self.edges: Dict[Node, Set[Node]] = {}
        #: Delegation (``yield from``) subset of ``edges``.
        self.yf_edges: Dict[Node, Set[Node]] = {}
        #: First call-site line per edge, for messages and anchors.
        self.edge_sites: Dict[Node, List[Tuple[Node, int]]] = {}
        #: Resolved calls into modules with no flow summary (stdlib,
        #: unparsed packages): ``node -> [(symbol, line)]``.
        self.external: Dict[Node, List[Tuple[Symbol, int]]] = {}
        #: Resolved generator arguments of ``spawn(...)``/``run_direct``.
        self.spawned: Set[Node] = set()
        #: Resolved yielded constructions: ``node -> [(line, symbol)]``.
        self.yielded_classes: Dict[Node, List[Tuple[int, Symbol]]] = {}
        #: Resolved class base edges, project-wide.
        self.bases_of: Dict[Symbol, List[Symbol]] = {}
        self._method_cache: Dict[Tuple[Symbol, str], Optional[Node]] = {}
        self._link()

    # -- class helpers -----------------------------------------------------

    def _collect_bases(self) -> None:
        for module, summary in self.index.summaries.items():
            for cls in summary.classes.values():
                symbol = (module, cls.name)
                self.bases_of[symbol] = \
                    self.index.resolve_base_symbols(summary, cls)

    def is_subclass(self, symbol: Symbol, base: Symbol) -> bool:
        """True if ``symbol`` is ``base`` or inherits from it."""
        seen: Set[Symbol] = set()
        stack = [symbol]
        while stack:
            current = stack.pop()
            if current == base:
                return True
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self.bases_of.get(current, ()))
        return False

    def method_node(self, cls: Symbol, name: str) -> Optional[Node]:
        """Resolve ``cls.name`` to the defining function node (MRO walk)."""
        key = (cls, name)
        if key in self._method_cache:
            return self._method_cache[key]
        result: Optional[Node] = None
        seen: Set[Symbol] = set()
        stack = [cls]
        while stack:
            current = stack.pop(0)
            if current in seen:
                continue
            seen.add(current)
            flow = self.flows.get(current[0])
            if flow is not None:
                qualname = f"{current[1]}.{name}"
                if qualname in flow.functions:
                    result = (current[0], qualname)
                    break
            stack.extend(self.bases_of.get(current, ()))
        self._method_cache[key] = result
        return result

    def attr_entry(self, cls: Symbol, attr: str) -> Optional[Dict[str, Any]]:
        """The recorded type info of instance attribute ``cls.attr``,
        searched through the base classes; refs stay module-relative to
        the defining class, so the defining module is returned with it."""
        seen: Set[Symbol] = set()
        stack = [cls]
        while stack:
            current = stack.pop(0)
            if current in seen:
                continue
            seen.add(current)
            flow = self.flows.get(current[0])
            if flow is not None:
                entry = flow.attr_types.get(current[1], {}).get(attr)
                if entry is not None:
                    return {"module": current[0], **entry}
            stack.extend(self.bases_of.get(current, ()))
        return None

    # -- type evaluation ---------------------------------------------------

    def _resolve_ref(self, module: str,
                     ref: Optional[List[str]]) -> Optional[Symbol]:
        if ref is None:
            return None
        summary = self.index.summaries.get(module)
        if summary is None:
            return None
        return summary.resolve_ref(tuple(ref))

    def _entry_from_info(self, module: str,
                         info: Dict[str, Any]) -> _TypeEntry:
        """Entry from an annotation/attr-type record (``ref``/``elem`` /
        ``construct``/``construct_elem`` keys, module-relative)."""
        entry = _TypeEntry()
        entry.cls = self._resolve_ref(module, info.get("ref")) \
            or self._resolve_ref(module, info.get("construct"))
        entry.elem = self._resolve_ref(module, info.get("elem")) \
            or self._resolve_ref(module, info.get("construct_elem"))
        # A "construct"/"ref" only types the value if it names a class.
        if entry.cls is not None and not self._is_class(entry.cls):
            entry.cls = None
        if entry.elem is not None and not self._is_class(entry.elem):
            entry.elem = None
        return entry

    def _is_class(self, symbol: Symbol) -> bool:
        summary = self.index.summaries.get(symbol[0])
        return summary is not None and symbol[1] in summary.classes

    def _eval_desc(self, module: str, info: Dict[str, Any],
                   desc: Dict[str, Any], depth: int) -> Optional[_TypeEntry]:
        """Evaluate a recorded binding descriptor to a type entry."""
        if depth > _MAX_EVAL_DEPTH:
            return None
        kind = desc.get("k")
        if kind == "ann":
            return self._entry_from_info(module, desc)
        if kind == "call":
            symbol = self._resolve_ref(module, desc.get("ref"))
            if symbol is not None and self._is_class(symbol):
                return _TypeEntry(cls=symbol)
            return None
        if kind == "alias":
            return self._eval_name(module, info, desc["name"], depth + 1)
        if kind == "listof":
            symbol = self._resolve_ref(module, desc.get("ref"))
            if symbol is not None and self._is_class(symbol):
                return _TypeEntry(elem=symbol)
            return None
        if kind == "iter":
            src = self._eval_desc(module, info, desc["src"], depth + 1)
            if src is not None and src.elem is not None:
                return _TypeEntry(cls=src.elem)
            return None
        if kind == "chain":
            return self._eval_chain(module, info, desc["root"],
                                    desc["steps"], depth + 1)
        return None

    def _eval_name(self, module: str, info: Dict[str, Any], name: str,
                   depth: int) -> Optional[_TypeEntry]:
        """Type/callable bound to a bare name inside a function."""
        if depth > _MAX_EVAL_DEPTH:
            return None
        if name in ("self", "cls"):
            cls_name = info.get("cls")
            if cls_name is not None:
                return _TypeEntry(cls=(module, cls_name))
            return None
        binding = info.get("bindings", {}).get(name)
        if binding is not None:
            return self._eval_desc(module, info, binding, depth + 1)
        param = info.get("params", {}).get(name)
        if param is not None:
            return self._entry_from_info(module, param)
        symbol = self._resolve_ref(module, ["name", name])
        if symbol is not None and self._is_class(symbol):
            return _TypeEntry(cls=symbol)
        return None

    def _eval_chain(self, module: str, info: Dict[str, Any], root: str,
                    steps: List[str], depth: int) -> Optional[_TypeEntry]:
        """Walk ``root.step1.step2[...]`` through recorded attr types."""
        entry = self._eval_name(module, info, root, depth)
        for step in steps:
            if entry is None:
                return None
            if step == "[]":
                if entry.elem is None:
                    return None
                entry = _TypeEntry(cls=entry.elem)
                continue
            if entry.cls is None:
                return None
            attr = self.attr_entry(entry.cls, step)
            if attr is not None:
                entry = self._entry_from_info(attr["module"], attr)
                continue
            method = self.method_node(entry.cls, step)
            if method is not None:
                entry = _TypeEntry(func=method)
                continue
            return None
        return entry

    # -- call resolution ---------------------------------------------------

    def _resolve_symbol_target(self, symbol: Symbol) -> Optional[Node]:
        """Node for a resolved symbol: a function, or a class's
        ``__init__`` (constructing is calling the initializer)."""
        flow = self.flows.get(symbol[0])
        if flow is not None and symbol[1] in flow.functions:
            return symbol
        if self._is_class(symbol):
            return self.method_node(symbol, "__init__")
        return None

    def _resolve_call(self, module: str, qualname: str,
                      info: Dict[str, Any],
                      desc: Dict[str, Any],
                      record_external: bool = True) -> List[Node]:
        """Targets of one recorded call; external symbols are logged to
        ``self.external`` as a side effect (unless ``record_external``
        is off -- re-resolution by later analyses must not duplicate
        the external log)."""
        node = (module, qualname)
        line = desc.get("line", 0)
        kind = desc.get("k")
        if kind == "name":
            name = desc["fn"]
            if name in info.get("locals", []):
                return []  # implicit parent->nested edge already exists
            entry = None
            binding = info.get("bindings", {}).get(name)
            if binding is not None:
                entry = self._eval_desc(module, info, binding, 0)
            if entry is not None and entry.func is not None:
                return [entry.func]
            flow = self.flows.get(module)
            if flow is not None and name in flow.functions:
                return [(module, name)]
            symbol = self._resolve_ref(module, ["name", name])
            if symbol is None:
                return []
            target = self._resolve_symbol_target(symbol)
            if target is not None:
                return [target]
            if record_external:
                self.external.setdefault(node, []).append((symbol, line))
            return []
        if kind == "attr":
            root, steps, attr = desc["root"], desc["steps"], desc["attr"]
            receiver = self._eval_chain(module, info, root, steps, 0)
            if receiver is not None and receiver.cls is not None:
                method = self.method_node(receiver.cls, attr)
                return [method] if method is not None else []
            if not steps:
                summary = self.index.summaries.get(module)
                qualifier = summary.resolve_qualifier(root) \
                    if summary is not None else None
                if qualifier is not None:
                    symbol = (qualifier, attr)
                    target = self._resolve_symbol_target(symbol)
                    if target is not None:
                        return [target]
                    if record_external:
                        self.external.setdefault(node, []).append(
                            (symbol, line))
            return []
        if kind == "table":
            table_sym = self._resolve_ref(module, desc.get("table"))
            if table_sym is None:
                return []
            flow = self.flows.get(table_sym[0])
            if flow is None:
                return []
            table = flow.tables.get(table_sym[1])
            if table is None:
                return []
            targets: List[Node] = []
            for value in table.get("values", []):
                symbol = self._resolve_ref(table_sym[0], value)
                if symbol is None:
                    continue
                target = self._resolve_symbol_target(symbol)
                if target is not None:
                    targets.append(target)
            return targets
        return []

    # -- linking -----------------------------------------------------------

    def _add_edge(self, src: Node, dst: Node, line: int,
                  delegation: bool) -> None:
        self.edges.setdefault(src, set()).add(dst)
        self.edge_sites.setdefault(src, []).append((dst, line))
        if delegation:
            self.yf_edges.setdefault(src, set()).add(dst)

    def _link(self) -> None:
        self._collect_bases()
        for module, flow in self.flows.items():
            for qualname in flow.functions:
                self.nodes.add((module, qualname))
        for module, flow in self.flows.items():
            for qualname, info in flow.functions.items():
                node = (module, qualname)
                for name in info.get("locals", []):
                    nested = (module, f"{qualname}.{name}")
                    if nested in self.nodes:
                        self._add_edge(node, nested, info.get("line", 0),
                                       delegation=False)
                for call in info.get("calls", []):
                    for target in self._resolve_call(
                            module, qualname, info, call):
                        self._add_edge(node, target, call.get("line", 0),
                                       delegation=bool(call.get("yf")))
                for spawn in info.get("spawns", []):
                    for target in self._resolve_call(
                            module, qualname, info, spawn):
                        self.spawned.add(target)
                        self._add_edge(node, target, spawn.get("line", 0),
                                       delegation=False)
                for entry in info.get("yields", []):
                    symbol = self._resolve_ref(module, entry.get("ref"))
                    if symbol is not None:
                        self.yielded_classes.setdefault(node, []).append(
                            (entry.get("line", 0), symbol))

    # -- queries -----------------------------------------------------------

    def eval_chain(self, module: str, info: Dict[str, Any], root: str,
                   steps: Sequence[str]) -> Optional[_TypeEntry]:
        """Public type evaluation of ``root.step1.step2...`` inside one
        function (same evidence rules as call linking)."""
        return self._eval_chain(module, info, root, list(steps), 0)

    def eval_name(self, module: str, info: Dict[str, Any],
                  name: str) -> Optional[_TypeEntry]:
        """Public type evaluation of a bare name inside one function."""
        return self._eval_name(module, info, name, 0)

    def entry_from_info(self, module: str,
                        info: Dict[str, Any]) -> _TypeEntry:
        """Public annotation/attr-type record evaluation."""
        return self._entry_from_info(module, info)

    def resolve_call_quiet(self, module: str, qualname: str,
                           info: Dict[str, Any],
                           desc: Dict[str, Any]) -> List[Node]:
        """Re-resolve one call descriptor without logging externals
        (the atomic analysis re-walks calls the linker already saw)."""
        return self._resolve_call(module, qualname, info, desc,
                                  record_external=False)

    def function_info(self, node: Node) -> Optional[Dict[str, Any]]:
        flow = self.flows.get(node[0])
        if flow is None:
            return None
        return flow.functions.get(node[1])

    def reachable_from(self, roots: Set[Node]) -> Dict[Node, Optional[Node]]:
        """Forward closure; maps each reached node to its BFS parent
        (roots map to None), for reconstructing witness chains."""
        parents: Dict[Node, Optional[Node]] = {
            root: None for root in roots if root in self.nodes
        }
        queue = list(parents)
        while queue:
            current = queue.pop(0)
            for target in sorted(self.edges.get(current, ())):
                if target not in parents:
                    parents[target] = current
                    queue.append(target)
        return parents

    def reverse_reachable(self, seeds: Set[Node]) -> Set[Node]:
        """All nodes that can reach a seed (seeds included)."""
        reverse: Dict[Node, Set[Node]] = {}
        for src, dsts in self.edges.items():
            for dst in dsts:
                reverse.setdefault(dst, set()).add(src)
        found = {seed for seed in seeds if seed in self.nodes}
        queue = list(found)
        while queue:
            current = queue.pop(0)
            for src in reverse.get(current, ()):
                if src not in found:
                    found.add(src)
                    queue.append(src)
        return found

    @staticmethod
    def chain(parents: Dict[Node, Optional[Node]], node: Node) -> List[Node]:
        """Witness path from a root to ``node`` using BFS parents."""
        path = [node]
        seen = {node}
        current: Optional[Node] = node
        while current is not None:
            current = parents.get(current)
            if current is None or current in seen:
                break
            seen.add(current)
            path.append(current)
        path.reverse()
        return path

    def to_dict(self) -> Dict[str, Any]:
        """JSON view for ``repro-lint --dump-callgraph``."""
        def label(node: Node) -> str:
            return f"{node[0]}:{node[1]}"

        return {
            "nodes": sorted(label(n) for n in self.nodes),
            "edges": {
                label(src): sorted(label(dst) for dst in dsts)
                for src, dsts in sorted(self.edges.items())
            },
            "delegations": {
                label(src): sorted(label(dst) for dst in dsts)
                for src, dsts in sorted(self.yf_edges.items())
            },
            "spawned": sorted(label(n) for n in self.spawned),
        }
