"""The RF rule family: flow rules evaluated on the project call graph.

RF rules are the transitive closures of the module-local RL rules: where
RL003 flags a ``time.time()`` *written in* a simulated-time package,
RF001 flags one *reachable from* a simulation entry point through any
call chain, and prints the chain.  They only run under
``repro-lint --flow`` and require the :class:`FlowAnalysis` the engine
attaches to the project index.
"""

from __future__ import annotations

import ast
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.lint.flow.analysis import FlowAnalysis, format_node
from repro.lint.flow.callgraph import Node
from repro.lint.index import ModuleSummary, ProjectIndex, in_prefixes
from repro.lint.rules import Rule


class _Loc:
    """Line/column anchor for findings that have no AST node (flow facts
    are reported from serialized summaries, not a live tree)."""

    __slots__ = ("lineno", "col_offset")

    def __init__(self, lineno: int, col_offset: int = 0) -> None:
        self.lineno = lineno
        self.col_offset = col_offset


class FlowRule(Rule):
    """Base: fetch the analysis off the index, delegate to _check_flow."""

    def check(self, module: ModuleSummary, tree: ast.Module,
              index: ProjectIndex) -> Iterator[Tuple[Any, str]]:
        analysis = getattr(index, "flow", None)
        if analysis is None:
            return
        for loc, message in self._check_flow(module, analysis):
            yield loc, message

    def _check_flow(self, module: ModuleSummary,
                    analysis: FlowAnalysis) -> Iterator[Tuple[_Loc, str]]:
        raise NotImplementedError
        yield  # pragma: no cover


def _module_nodes(module: ModuleSummary,
                  analysis: FlowAnalysis) -> List[Tuple[Node, Dict[str, Any]]]:
    """(node, function info) pairs of the module under check, sorted."""
    flow = analysis.flows.get(module.module)
    if flow is None:
        return []
    return [
        ((module.module, qualname), info)
        for qualname, info in sorted(flow.functions.items())
    ]


def _via(analysis: FlowAnalysis,
         parents: Dict[Node, Optional[Node]], node: Node) -> str:
    chain = analysis.graph.chain(parents, node)
    if len(chain) <= 1:
        return ""
    return " (via " + " -> ".join(format_node(s) for s in chain) + ")"


class RF001WallClockReachableFromSim(FlowRule):
    code = "RF001"
    title = "wall-clock or unseeded RNG reachable from a sim entry point"
    explain = """\
The simulator's determinism contract (RL003/RL004) is transitive: a
`time.time()` or unseeded `random.*` call is just as fatal three calls
deep in a helper module as it is inline in repro.core.  RF001 computes
the forward closure of every simulation entry point -- all functions in
the simulated-time packages plus every generator handed to `spawn(...)`
or `run_direct(...)` -- and reports any wall-clock/RNG fact inside it,
with the call chain that reaches it.

Fix by taking time from the kernel (`yield Now()` / context clock) and
randomness from a `random.Random(seed)` threaded through the deployment.
"""

    def _check_flow(self, module: ModuleSummary, analysis: FlowAnalysis
                    ) -> Iterator[Tuple[_Loc, str]]:
        for node, info in _module_nodes(module, analysis):
            if node not in analysis.sim_parents:
                continue
            via = _via(analysis, analysis.sim_parents, node)
            facts = info.get("facts", {})
            for fact in facts.get("wall_clock", []):
                yield _Loc(fact["line"]), (
                    f"`{fact.get('what', 'wall clock')}` in "
                    f"`{format_node(node)}` is reachable from simulated "
                    f"time{via}; take time from the simulator, not the "
                    f"host clock"
                )
            for fact in facts.get("rng", []):
                yield _Loc(fact["line"]), (
                    f"unseeded RNG `{fact.get('what', 'random')}` in "
                    f"`{format_node(node)}` is reachable from simulated "
                    f"time{via}; thread a seeded random.Random through "
                    f"the deployment"
                )


class RF002UnroutableYield(FlowRule):
    code = "RF002"
    title = "yielded effect cannot reach any dispatcher"
    explain = """\
An effect coroutine communicates only through the `Request` objects it
yields; a request class no dispatcher can classify is silently dropped
by drivers that skip unknown kinds -- or raises `TypeError: unroutable
request` at runtime, far from the yield that produced it.  RF002
resolves every `yield SomeRequest(...)` construction against the
dispatch registrations (the exact-class kind table plus the subclass
closure of the `isinstance` ladder) and reports yields of classes
outside both.

Fix by registering the class in `_KIND_BY_CLASS` or deriving it from a
ladder base (`StoreRequest`, `Scan`, `Batch`, ...).
"""

    def _check_flow(self, module: ModuleSummary, analysis: FlowAnalysis
                    ) -> Iterator[Tuple[_Loc, str]]:
        if not analysis.has_dispatch_info:
            return
        for node, _info in _module_nodes(module, analysis):
            for line, symbol in analysis.graph.yielded_classes.get(node, []):
                if symbol not in analysis.index.effect_classes:
                    continue
                if analysis.is_routable(symbol):
                    continue
                yield _Loc(line), (
                    f"`{format_node(node)}` yields "
                    f"`{symbol[0]}.{symbol[1]}`, which no dispatcher can "
                    f"route (not in the kind table nor the isinstance "
                    f"ladder); the effect would fail at dispatch, not at "
                    f"the yield"
                )


class RF003UnregisteredRequestClass(FlowRule):
    code = "RF003"
    title = "concrete Request subclass not wired into dispatch"
    explain = """\
Dispatcher exhaustiveness as a lint error instead of a runtime one:
every concrete (leaf) subclass of `repro.effects.Request` must classify
to a kind -- either an exact entry in the dispatch kind table or an
`isinstance` ladder base in its MRO.  Adding a request class without
wiring it previously surfaced as `TypeError: unroutable request` the
first time a workload yielded it; RF003 reports it at the class
definition.
"""

    def _check_flow(self, module: ModuleSummary, analysis: FlowAnalysis
                    ) -> Iterator[Tuple[_Loc, str]]:
        if not analysis.has_dispatch_info:
            return
        leaves = analysis.effect_leaves()
        for name, cls in sorted(module.classes.items()):
            symbol = (module.module, name)
            if symbol not in leaves:
                continue
            if analysis.is_routable(symbol):
                continue
            yield _Loc(cls.lineno, cls.col_offset), (
                f"request class `{name}` is not registered in any "
                f"dispatch kind table and matches no isinstance ladder "
                f"base; yielding it raises `TypeError: unroutable "
                f"request` at runtime"
            )


class RF004SanitizerIsolationLeak(FlowRule):
    code = "RF004"
    title = "sanitizer shadow code reaches mutating or obs code"
    explain = """\
`repro.san` observers must stay pure shadows of the protocol (RL009)
and independent of the metrics layer they cross-check (RL010) -- and
both contracts are transitive: an observer that calls a helper that
calls `store.put(...)` perturbs the run exactly as a direct call would.
RF004 computes the reverse closure of every protocol-mutation fact and
of the `repro.obs` modules, and reports any call edge from a sanitizer
observer module into either set, with the chain to the offending call.

San driver modules (`repro.san.scenarios`, `.explorer`, `.__main__`)
own their deployments and are exempt, as in RL009.
"""

    def _check_flow(self, module: ModuleSummary, analysis: FlowAnalysis
                    ) -> Iterator[Tuple[_Loc, str]]:
        if not analysis.is_san_observer_module(module.module):
            return
        for node, _info in _module_nodes(module, analysis):
            seen = set()
            for target, line in analysis.graph.edge_sites.get(node, []):
                if (target, line) in seen:
                    continue
                seen.add((target, line))
                if analysis.is_san_observer_module(target[0]):
                    continue
                if target in analysis.mutation_tainted:
                    witness = analysis.taint_witness(
                        target, analysis.mutation_tainted, "mutates")
                    path = " -> ".join(format_node(s) for s in witness)
                    yield _Loc(line), (
                        f"sanitizer `{format_node(node)}` calls "
                        f"`{format_node(target)}`, which reaches "
                        f"protocol-mutating code ({path}); observers "
                        f"must stay pure shadows"
                    )
                elif (target in analysis.obs_tainted
                      or in_prefixes(target[0], ("repro.obs",))):
                    witness = analysis.taint_witness(
                        target, analysis.obs_tainted, "obs")
                    path = " -> ".join(format_node(s) for s in witness)
                    yield _Loc(line), (
                        f"sanitizer `{format_node(node)}` calls "
                        f"`{format_node(target)}`, which reaches the "
                        f"repro.obs layer ({path}); sanitizers must "
                        f"cross-check metrics, not depend on them"
                    )
            for symbol, line in analysis.graph.external.get(node, []):
                if in_prefixes(symbol[0], ("repro.obs",)):
                    yield _Loc(line), (
                        f"sanitizer `{format_node(node)}` uses "
                        f"`{symbol[0]}.{symbol[1]}` from the repro.obs "
                        f"layer; sanitizers must cross-check metrics, "
                        f"not depend on them"
                    )


class RF005HotPathAllocation(FlowRule):
    code = "RF005"
    title = "per-call allocation on a perf-guarded hot path"
    explain = """\
`tools/perf_guard.py` pins the throughput of the TPC-C deployment and
the scale suite; allocations that happen once per simulated request add
up to real regressions there.  RF005 computes the forward closure of
the guarded entry points (`SimulatedTell.run`/`.load`,
`run_scale_point`) and reports constant-argument `yield Delay(...)`
constructions and all-constant list/dict literals rebuilt inside loops,
with the chain from the guarded entry point.

Fix by hoisting the constant to module level (kernel `Delay` objects
are immutable and reusable).
"""

    def _check_flow(self, module: ModuleSummary, analysis: FlowAnalysis
                    ) -> Iterator[Tuple[_Loc, str]]:
        for node, info in _module_nodes(module, analysis):
            if node not in analysis.hot_parents:
                continue
            via = _via(analysis, analysis.hot_parents, node)
            facts = info.get("facts", {})
            for fact in facts.get("const_delay", []):
                yield _Loc(fact["line"]), (
                    f"`{format_node(node)}` yields a constant "
                    f"`{fact.get('what', 'Delay(...)')}` allocated per "
                    f"call on a perf-guarded hot path{via}; hoist it to "
                    f"a module-level constant"
                )
            for fact in facts.get("const_literal", []):
                yield _Loc(fact["line"]), (
                    f"{fact.get('what', 'constant literal')} in "
                    f"`{format_node(node)}` on a perf-guarded hot "
                    f"path{via}; hoist it out of the loop"
                )


FLOW_RULES: List[Rule] = [
    RF001WallClockReachableFromSim(),
    RF002UnroutableYield(),
    RF003UnregisteredRequestClass(),
    RF004SanitizerIsolationLeak(),
    RF005HotPathAllocation(),
]

FLOW_RULES_BY_CODE = {rule.code: rule for rule in FLOW_RULES}
