"""Pass-2 extraction: one serializable flow summary per module.

The pass-1 :class:`~repro.lint.index.ModuleSummary` answers "what does
this name import to"; this pass records what every *function* does --
which callables it invokes (and through which receiver chains), what it
yields, what it spawns into a simulator, and which determinism /
allocation / isolation facts its body exhibits.  Everything is plain
JSON-serializable data so ``repro-lint --changed`` can reload summaries
of unchanged files from the on-disk cache without re-parsing them.

Resolution is deliberately deferred: a call is recorded as a *shape*
(bare name, receiver chain rooted at ``self``/a local/a parameter, a
dispatch-table subscript) and only turned into a call-graph edge by
:mod:`repro.lint.flow.callgraph`, which has the whole project in view.
Receivers resolve through explicit evidence only -- a parameter or local
annotation, a local ``ClassName(...)`` construction, or an attribute
assigned from one of those in a method body.  An unresolvable receiver
produces no edge, never a guessed one.
"""

from __future__ import annotations

import ast
from typing import Any, Dict, List, Optional, Tuple

from repro.lint.index import (
    ModuleSummary,
    NameRef,
    function_is_generator,
    name_ref_of,
)
from repro.lint.rules import WALL_CLOCK_ATTRS

#: Version stamp of the extraction format.  Bumped whenever the shape of
#: the serialized per-function info changes (new keys, changed meaning),
#: so ``repro-lint --changed`` invalidates warm caches instead of
#: feeding old summaries to a newer analyzer (see repro.lint.cache).
EXTRACTION_SCHEMA = 3

#: Kernel Delay symbols (RF005 per-call allocation facts).
_DELAY_SYMBOLS = frozenset({
    ("repro.sim.kernel", "Delay"),
    ("repro.sim", "Delay"),
})

#: Callables that *drive* a freshly created generator: their call-shaped
#: arguments become simulation entry points for RF001.
_SPAWN_ATTRS = frozenset({"spawn"})
_SPAWN_NAMES = frozenset({"run_direct"})

#: Receiver names that bind protocol objects (RF004 mutation facts);
#: mirrors RL009's heuristic so the transitive rule agrees with the
#: module-local one.
_PROTOCOL_RECEIVERS = frozenset({
    "record", "version", "cell", "snapshot", "descriptor",
    "txn", "transaction",
    "cluster", "storage_cluster", "storage_node", "store",
    "manager", "commit_manager", "processing_node",
    "btree", "tree",
})

PROTOCOL_MUTATORS = frozenset({
    "start", "set_committed", "set_aborted", "execute", "execute_scan",
    "apply", "insert", "delete", "update", "put", "commit", "abort",
    "append", "set_status", "recover", "invalidate", "note_applied",
})
_PROTOCOL_MUTATORS = PROTOCOL_MUTATORS

#: Method names that structurally mutate their receiver.  Superset of
#: PROTOCOL_MUTATORS: the atomic analysis also cares about plain
#: container mutators on shared attributes (``self.completed.pop(...)``).
ATOMIC_MUTATORS = PROTOCOL_MUTATORS | frozenset({
    "mark_completed", "pop", "popitem", "add", "discard", "remove",
    "clear", "extend", "setdefault", "move_to_end", "appendleft",
    "popleft",
})

#: Receiver names that bind repro.obs instrumentation (RF004).
_OBS_RECEIVERS = frozenset({"obs", "tracer", "registry"})


def _ann_info(node: Optional[ast.expr]) -> Dict[str, Any]:
    """Parse an annotation into ``{"ref": NameRef?, "elem": NameRef?}``.

    ``ref`` is the annotated type itself, ``elem`` the element type of a
    recognized container (``List[X]``, ``Sequence[X]``, ``Dict[K, V]``
    values, ...).  ``Optional[X]`` unwraps to ``X``.
    """
    info: Dict[str, Any] = {}
    if node is None:
        return info
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        text = node.value.strip().strip("'\"")
        if text.isidentifier():
            info["ref"] = ["name", text]
        return info
    ref = name_ref_of(node)
    if ref is not None:
        info["ref"] = list(ref)
        return info
    if isinstance(node, ast.Subscript):
        base = node.value
        base_name = base.id if isinstance(base, ast.Name) else (
            base.attr if isinstance(base, ast.Attribute) else None
        )
        inner: ast.expr = node.slice
        if isinstance(inner, ast.Index):  # pragma: no cover -- py3.8 AST
            inner = inner.value  # type: ignore[attr-defined]
        if base_name == "Optional":
            return _ann_info(inner)
        if base_name in ("List", "Sequence", "Iterable", "Iterator",
                         "Set", "FrozenSet", "Tuple", "list", "set",
                         "tuple", "Deque", "deque"):
            first = inner.elts[0] if isinstance(inner, ast.Tuple) and \
                inner.elts else inner
            elem = _ann_info(first).get("ref")
            if elem is not None:
                info["elem"] = elem
        elif base_name in ("Dict", "Mapping", "MutableMapping", "dict"):
            if isinstance(inner, ast.Tuple) and len(inner.elts) == 2:
                elem = _ann_info(inner.elts[1]).get("ref")
                if elem is not None:
                    info["elem"] = elem
    return info


def _receiver_steps(node: ast.expr) -> Optional[Tuple[str, List[str]]]:
    """Flatten a receiver expression into ``(root_name, steps)``.

    ``self.commit_managers[i]`` becomes ``("self", ["commit_managers",
    "[]"])``; a step of ``"[]"`` means "element of the previous step".
    Returns None for receivers rooted anywhere but a bare name.
    """
    steps: List[str] = []
    while True:
        if isinstance(node, ast.Attribute):
            steps.insert(0, node.attr)
            node = node.value
        elif isinstance(node, ast.Subscript):
            steps.insert(0, "[]")
            node = node.value
        elif isinstance(node, ast.Name):
            return node.id, steps
        else:
            return None


def _value_desc(node: ast.expr) -> Optional[Dict[str, Any]]:
    """Describe the value of an assignment RHS, if evidence exists."""
    if isinstance(node, ast.Call):
        ref = name_ref_of(node.func)
        if ref is not None:
            return {"k": "call", "ref": list(ref)}
        return None
    if isinstance(node, ast.Name):
        return {"k": "alias", "name": node.id}
    if isinstance(node, (ast.Attribute, ast.Subscript)):
        flattened = _receiver_steps(node)
        if flattened is not None:
            root, steps = flattened
            return {"k": "chain", "root": root, "steps": steps}
        return None
    if isinstance(node, (ast.ListComp, ast.GeneratorExp)):
        if isinstance(node.elt, ast.Call):
            ref = name_ref_of(node.elt.func)
            if ref is not None:
                return {"k": "listof", "ref": list(ref)}
    if isinstance(node, (ast.List, ast.Tuple)) and node.elts:
        refs = set()
        for elt in node.elts:
            if not isinstance(elt, ast.Call):
                return None
            ref = name_ref_of(elt.func)
            if ref is None:
                return None
            refs.add(tuple(ref))
        if len(refs) == 1:
            return {"k": "listof", "ref": list(refs.pop())}
    return None


def _all_constant(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant):
        return True
    if isinstance(node, (ast.Tuple, ast.List)):
        return all(_all_constant(e) for e in node.elts)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        return _all_constant(node.operand)
    return False


class _FunctionExtractor(ast.NodeVisitor):
    """Collect the flow summary of one function body.

    Nested defs are skipped here (they get their own summary; the parent
    records an implicit edge to them) and lambdas are folded into the
    enclosing function.
    """

    def __init__(self, summary: ModuleSummary, node: ast.AST,
                 qualname: str, class_name: Optional[str]) -> None:
        self.summary = summary
        self.qualname = qualname
        self.info: Dict[str, Any] = {
            "line": getattr(node, "lineno", 0),
            "gen": function_is_generator(node),
            "cls": class_name,
            "params": {},
            "bindings": {},
            "locals": [],
            "calls": [],
            "yields": [],
            "spawns": [],
            "facts": {},
            "pnames": [],
            "touch": [],
            "ylines": {},
        }
        self._loop_depth = 0
        self._yf_calls: set = set()
        #: Lexical yield-segment counter: 0 before the first preemption
        #: point, +1 after every ``yield``/``yield from``.  Serialized
        #: touch records carry the segment they happened in so the
        #: atomic analysis can build yield-point summaries from cache.
        self._seg = 0
        self._touch_seen: set = set()
        args = getattr(node, "args", None)
        if args is not None:
            every = list(getattr(args, "posonlyargs", [])) + \
                list(args.args) + list(args.kwonlyargs)
            self.info["pnames"] = [arg.arg for arg in every]
            for arg in every:
                info = _ann_info(arg.annotation)
                if info:
                    self.info["params"][arg.arg] = info
        for child in getattr(node, "body", []):
            self.visit(child)

    _TOUCH_CAP = 160

    def _touch(self, root: str, steps: List[str], attr: str, kind: str,
               line: int) -> None:
        """Record one shared-state touch: a read (``r``) or write
        (``set``/``aug``/``sub``/``del``/``call``) through an attribute
        chain, tagged with the yield segment it happens in."""
        key = (root, tuple(steps), attr, kind, self._seg)
        if key in self._touch_seen or \
                len(self.info["touch"]) >= self._TOUCH_CAP:
            return
        self._touch_seen.add(key)
        self.info["touch"].append({
            "c": [root] + list(steps), "a": attr, "k": kind,
            "s": self._seg, "ln": line,
        })

    def _touch_target(self, target: ast.expr, line: int,
                      kind: str = "set") -> None:
        while isinstance(target, ast.Subscript):
            target = target.value
            if kind == "set":
                kind = "sub"
        if not isinstance(target, ast.Attribute):
            return
        flattened = _receiver_steps(target.value)
        if flattened is not None:
            root, steps = flattened
            self._touch(root, steps, target.attr, kind, line)

    # -- bookkeeping -------------------------------------------------------

    def _fact(self, kind: str, line: int, detail: str = "") -> None:
        entry: Dict[str, Any] = {"line": line}
        if detail:
            entry["what"] = detail
        self.info["facts"].setdefault(kind, []).append(entry)

    def _bind(self, name: str, desc: Optional[Dict[str, Any]]) -> None:
        if desc is not None:
            self.info["bindings"][name] = desc

    # -- defs / loops ------------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.info["locals"].append(node.name)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self.info["locals"].append(node.name)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self.visit(node.body)

    def visit_For(self, node: ast.For) -> None:
        if isinstance(node.target, ast.Name):
            src = _value_desc(node.iter)
            if src is not None:
                self._bind(node.target.id, {"k": "iter", "src": src})
        self.visit(node.iter)
        self._loop_depth += 1
        for child in node.body:
            self.visit(child)
        self._loop_depth -= 1
        for child in node.orelse:
            self.visit(child)

    def visit_While(self, node: ast.While) -> None:
        self.visit(node.test)
        self._loop_depth += 1
        for child in node.body:
            self.visit(child)
        self._loop_depth -= 1
        for child in node.orelse:
            self.visit(child)

    # -- bindings ----------------------------------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
            self._bind(node.targets[0].id, _value_desc(node.value))
        self._check_mutation_target(node, node.targets)
        self.visit(node.value)  # value first: yields bump the segment
        for target in node.targets:
            self._touch_target(target, node.lineno)
            self.visit(target)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Name):
            info = _ann_info(node.annotation)
            if info:
                self._bind(node.target.id, {"k": "ann", **info})
            elif node.value is not None:
                self._bind(node.target.id, _value_desc(node.value))
        self._check_mutation_target(node, [node.target])
        if node.value is not None:
            self.visit(node.value)
        self._touch_target(node.target, node.lineno)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_mutation_target(node, [node.target])
        self.visit(node.value)
        self._touch_target(node.target, node.lineno, kind="aug")

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._touch_target(target, node.lineno, kind="del")
        self.generic_visit(node)

    def _check_mutation_target(self, node: ast.stmt,
                               targets: List[ast.expr]) -> None:
        """RL009-style protocol-mutation fact: attribute assignment whose
        receiver chain ends in a protocol name and is not self-rooted."""
        for target in targets:
            while isinstance(target, ast.Subscript):
                target = target.value
            if not isinstance(target, ast.Attribute):
                continue
            flattened = _receiver_steps(target.value)
            if flattened is None:
                continue
            root, steps = flattened
            if root in ("self", "cls"):
                continue
            final = steps[-1] if steps and steps[-1] != "[]" else root
            if final in _PROTOCOL_RECEIVERS:
                self._fact("mutates", node.lineno,
                           f"assigns `.{target.attr}` on protocol object "
                           f"`{final}`")

    # -- yields ------------------------------------------------------------

    def visit_Yield(self, node: ast.Yield) -> None:
        value = node.value
        if isinstance(value, ast.Call):
            ref = name_ref_of(value.func)
            if ref is not None:
                self.info["yields"].append(
                    {"line": node.lineno, "ref": list(ref)}
                )
                symbol = self.summary.resolve_ref(ref)
                if (symbol in _DELAY_SYMBOLS and len(value.args) == 1
                        and not value.keywords
                        and isinstance(value.args[0], ast.Constant)
                        and isinstance(value.args[0].value, (int, float))
                        and not isinstance(value.args[0].value, bool)):
                    self._fact("const_delay", node.lineno,
                               f"Delay({value.args[0].value!r})")
        if value is not None:
            self.visit(value)  # arguments are evaluated pre-yield
        self._seg += 1
        self.info["ylines"][str(self._seg)] = node.lineno

    def visit_YieldFrom(self, node: ast.YieldFrom) -> None:
        if isinstance(node.value, ast.Call):
            self._yf_calls.add(id(node.value))
        self.visit(node.value)
        self._seg += 1
        self.info["ylines"][str(self._seg)] = node.lineno

    # -- calls and facts ---------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        desc = self._call_desc(node)
        if desc is not None:
            if id(node) in self._yf_calls:
                desc["yf"] = True
            self.info["calls"].append(desc)
        self._check_spawn(node)
        self._check_rng(node)
        self._check_isinstance(node)
        self.generic_visit(node)

    @staticmethod
    def _arg_names(node: ast.Call) -> Optional[List[Optional[str]]]:
        """Bare names of the positional arguments (None placeholders for
        expressions), recorded so typestate summaries can map caller
        locals onto callee parameters.  None when no argument is a name."""
        names: List[Optional[str]] = [
            arg.id if isinstance(arg, ast.Name) else None
            for arg in node.args
        ]
        return names if any(n is not None for n in names) else None

    def _call_desc(self, node: ast.Call) -> Optional[Dict[str, Any]]:
        func = node.func
        if isinstance(func, ast.Name):
            # from-time import calls are wall-clock facts, not edges
            symbol = self.summary.resolve_name(func.id)
            if (symbol is not None and symbol[0] == "time"
                    and symbol[1] in WALL_CLOCK_ATTRS):
                self._fact("wall_clock", node.lineno, f"time.{symbol[1]}")
                return None
            desc: Dict[str, Any] = {"k": "name", "fn": func.id,
                                    "line": node.lineno}
            args = self._arg_names(node)
            if args is not None:
                desc["args"] = args
            return desc
        if isinstance(func, ast.Attribute):
            flattened = _receiver_steps(func.value)
            if flattened is None:
                return None
            root, steps = flattened
            final = steps[-1] if steps and steps[-1] != "[]" else root
            if final in _OBS_RECEIVERS and root not in ("self", "cls"):
                self._fact("obs", node.lineno,
                           f"`{final}.{func.attr}(...)`")
            if (final in _PROTOCOL_RECEIVERS and root not in ("self", "cls")
                    and func.attr in _PROTOCOL_MUTATORS):
                self._fact("mutates", node.lineno,
                           f"calls `{final}.{func.attr}(...)`")
            if func.attr in ATOMIC_MUTATORS and steps and steps[-1] != "[]":
                # `self.completed.mark_completed(tid)` structurally
                # mutates the `completed` attribute of `self`.
                self._touch(root, steps[:-1], steps[-1], "call",
                            node.lineno)
            desc = {"k": "attr", "root": root, "steps": steps,
                    "attr": func.attr, "line": node.lineno}
            args = self._arg_names(node)
            if args is not None:
                desc["args"] = args
            return desc
        if isinstance(func, ast.Subscript):
            table = name_ref_of(func.value)
            if table is not None:
                return {"k": "table", "table": list(table),
                        "line": node.lineno}
        return None

    def _check_spawn(self, node: ast.Call) -> None:
        func = node.func
        is_spawn = (
            (isinstance(func, ast.Attribute) and func.attr in _SPAWN_ATTRS)
            or (isinstance(func, ast.Name) and func.id in _SPAWN_NAMES)
        )
        if not is_spawn:
            return
        for arg in node.args:
            if isinstance(arg, ast.Call):
                desc = self._call_desc(arg)
                if desc is not None:
                    self.info["spawns"].append(desc)

    def _check_rng(self, node: ast.Call) -> None:
        func = node.func
        if (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and self.summary.resolve_qualifier(func.value.id) == "random"):
            if func.attr not in ("Random", "SystemRandom"):
                self._fact("rng", node.lineno, f"random.{func.attr}")
            elif func.attr == "Random" and not node.args:
                self._fact("rng", node.lineno, "random.Random()")
        elif isinstance(func, ast.Name):
            symbol = self.summary.resolve_name(func.id)
            if symbol == ("random", "Random") and not node.args:
                self._fact("rng", node.lineno, "Random()")

    def _check_isinstance(self, node: ast.Call) -> None:
        if not (isinstance(node.func, ast.Name)
                and node.func.id == "isinstance" and len(node.args) == 2):
            return
        second = node.args[1]
        checks = second.elts if isinstance(second, ast.Tuple) else [second]
        for check in checks:
            ref = name_ref_of(check)
            if ref is not None:
                self.info.setdefault("isinstance", []).append(list(ref))

    # -- remaining facts ---------------------------------------------------

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (node.attr in WALL_CLOCK_ATTRS
                and isinstance(node.value, ast.Name)
                and self.summary.resolve_qualifier(node.value.id) == "time"):
            self._fact("wall_clock", node.lineno, f"time.{node.attr}")
        if isinstance(node.ctx, ast.Load):
            flattened = _receiver_steps(node.value)
            if flattened is not None:
                root, steps = flattened
                self._touch(root, steps, node.attr, "r", node.lineno)
        self.generic_visit(node)

    def visit_List(self, node: ast.List) -> None:
        self._check_const_literal(node, "list")
        self.generic_visit(node)

    def visit_Dict(self, node: ast.Dict) -> None:
        self._check_const_literal(node, "dict")
        self.generic_visit(node)

    def _check_const_literal(self, node: ast.expr, kind: str) -> None:
        if self._loop_depth == 0:
            return
        if isinstance(node, ast.List):
            parts: List[Optional[ast.expr]] = list(node.elts)
        else:
            parts = list(getattr(node, "keys", [])) + \
                list(getattr(node, "values", []))
        if not parts or any(p is None for p in parts):
            return
        if all(_all_constant(p) for p in parts if p is not None):
            self._fact("const_literal", node.lineno,
                       f"all-constant {kind} literal rebuilt every "
                       f"iteration")


class ModuleFlow:
    """The flow summary of one module: functions, attribute types of its
    classes, and module-level dispatch tables.  Pure data."""

    __slots__ = ("module", "functions", "attr_types", "tables")

    def __init__(self, module: str,
                 functions: Optional[Dict[str, Dict[str, Any]]] = None,
                 attr_types: Optional[Dict[str, Dict[str, Any]]] = None,
                 tables: Optional[Dict[str, Dict[str, Any]]] = None) -> None:
        self.module = module
        self.functions: Dict[str, Dict[str, Any]] = functions or {}
        self.attr_types: Dict[str, Dict[str, Any]] = attr_types or {}
        self.tables: Dict[str, Dict[str, Any]] = tables or {}

    def to_dict(self) -> Dict[str, Any]:
        return {
            "module": self.module,
            "functions": self.functions,
            "attr_types": self.attr_types,
            "tables": self.tables,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ModuleFlow":
        return cls(data["module"], data.get("functions", {}),
                   data.get("attr_types", {}), data.get("tables", {}))


def _collect_attr_types(cls_node: ast.ClassDef,
                        flow: ModuleFlow) -> Dict[str, Any]:
    """Instance-attribute types of one class, from class-body annotations
    and ``self.x = ...`` assignments in method bodies."""
    attrs: Dict[str, Any] = {}
    for item in cls_node.body:
        if (isinstance(item, ast.AnnAssign)
                and isinstance(item.target, ast.Name)
                and item.target.id != "__slots__"):
            info = _ann_info(item.annotation)
            if info:
                attrs[item.target.id] = info
    for item in cls_node.body:
        if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        params: Dict[str, Any] = {}
        args = list(getattr(item.args, "posonlyargs", [])) + \
            list(item.args.args) + list(item.args.kwonlyargs)
        for arg in args:
            info = _ann_info(arg.annotation)
            if info:
                params[arg.arg] = info
        for stmt in ast.walk(item):
            target: Optional[ast.expr] = None
            value: Optional[ast.expr] = None
            annotation: Optional[ast.expr] = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, value = stmt.targets[0], stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                target, value, annotation = stmt.target, stmt.value, \
                    stmt.annotation
            if not (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"):
                continue
            name = target.attr
            if annotation is not None:
                info = _ann_info(annotation)
                if info:
                    attrs[name] = info
                continue
            if name in attrs:  # annotations win over inference
                continue
            if isinstance(value, ast.Call):
                ref = name_ref_of(value.func)
                if ref is not None:
                    attrs[name] = {"construct": list(ref)}
            elif isinstance(value, ast.Name) and value.id in params:
                attrs[name] = dict(params[value.id])
            elif value is not None:
                desc = _value_desc(value)
                if desc is not None and desc["k"] == "listof":
                    attrs[name] = {"construct_elem": desc["ref"]}
    return attrs


def _collect_tables(tree: ast.Module) -> Dict[str, Dict[str, Any]]:
    """Module-level dispatch tables: dict literals (and ``TABLE[k] = v``
    registrations) mapping keys to callables."""
    tables: Dict[str, Dict[str, Any]] = {}
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target: ast.expr = stmt.targets[0]
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            target = stmt.target
        else:
            continue
        if isinstance(target, ast.Name) and isinstance(stmt.value, ast.Dict):
            entry = tables.setdefault(
                target.id, {"keys": [], "values": []})
            for key, value in zip(stmt.value.keys, stmt.value.values):
                key_ref = name_ref_of(key) if key is not None else None
                entry["keys"].append(
                    list(key_ref) if key_ref is not None else None)
                value_ref = name_ref_of(value)
                entry["values"].append(
                    list(value_ref) if value_ref is not None else None)
        elif (isinstance(target, ast.Subscript)
                and isinstance(target.value, ast.Name)):
            entry = tables.setdefault(
                target.value.id, {"keys": [], "values": []})
            key_ref = name_ref_of(target.slice) \
                if isinstance(target.slice, ast.expr) else None
            entry["keys"].append(
                list(key_ref) if key_ref is not None else None)
            value_ref = name_ref_of(stmt.value)
            entry["values"].append(
                list(value_ref) if value_ref is not None else None)
    return tables


def extract_module_flow(summary: ModuleSummary,
                        tree: ast.Module) -> ModuleFlow:
    """Extract the full flow summary of one parsed module."""
    flow = ModuleFlow(summary.module)
    flow.tables = _collect_tables(tree)

    def visit(node: ast.AST, class_name: Optional[str],
              prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = prefix + child.name
                extractor = _FunctionExtractor(
                    summary, child, qualname, class_name)
                flow.functions[qualname] = extractor.info
                visit(child, class_name, qualname + ".")
            elif isinstance(child, ast.ClassDef):
                flow.attr_types[child.name] = _collect_attr_types(
                    child, flow)
                visit(child, child.name, child.name + ".")
            else:
                visit(child, class_name, prefix)

    visit(tree, None, "")
    return flow
