"""Pass-1 symbol index for repro-lint.

The interesting rules (RL001/RL002/RL006) need to know, for an arbitrary
call or class definition, whether a name refers to an *effect class* (a
subclass of :class:`repro.effects.Request`), a *generator coroutine*
(a function whose body contains ``yield``), or one of the simulation
kernel's hot classes (``Delay``/``Event``).  A single file rarely contains
enough information to decide, so the engine first summarizes every module
(imports, generator functions, classes and their bases) and then resolves
names through those summaries.

Resolution is deliberately name-based, not type-inferring: a symbol
resolves to ``(module, name)`` through the file's import table, and class
bases are chased to a fixpoint across all indexed modules.  Method calls
are resolved only through ``self``/a locally defined class, never through
arbitrary receiver expressions -- an unresolvable receiver produces *no*
finding rather than a speculative one.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

Symbol = Tuple[str, str]  # (dotted module, name)

#: Effect classes every repro tree is assumed to have, so single-file
#: fixtures (and partial lint runs) resolve them without parsing
#: repro/effects.py itself.  Discovery extends this set transitively.
EFFECT_CLASS_SEEDS: Set[Symbol] = {
    ("repro.effects", name)
    for name in (
        "Request",
        "StoreRequest",
        "Get",
        "Put",
        "PutIfVersion",
        "Delete",
        "DeleteIfVersion",
        "Increment",
        "Scan",
        "Batch",
        "CommitManagerRequest",
        "StartTransaction",
        "ReportCommitted",
        "ReportAborted",
        "Compute",
        "Sleep",
    )
}

#: The simulation kernel's hot classes: subclasses share the Request
#: __slots__ contract (docs/performance.md) and are covered by RL006.
KERNEL_CLASS_SEEDS: Set[Symbol] = {
    (module, name)
    for module in ("repro.sim.kernel", "repro.sim")
    for name in ("Delay", "Event")
}

#: Functions that *return* an effect/kernel object; calling one and
#: dropping the result is the same bug as dropping a constructor call.
EFFECT_FACTORY_SEEDS: Set[Symbol] = {
    ("repro.effects", "multi_get"),
    ("repro.sim.kernel", "delay_of"),
    ("repro.sim", "delay_of"),
}


def function_is_generator(fn: ast.AST) -> bool:
    """True if ``fn``'s own body contains ``yield`` / ``yield from``
    (yields inside nested defs/lambdas do not count)."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return True
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))
    return False


class ClassSummary:
    """What RL002/RL006 need to know about one class definition."""

    __slots__ = ("name", "lineno", "col_offset", "bases", "generator_methods",
                 "has_slots", "local_base_names")

    def __init__(self, node: ast.ClassDef):
        self.name = node.name
        self.lineno = node.lineno
        self.col_offset = node.col_offset
        self.bases: List[ast.expr] = list(node.bases)
        self.generator_methods: Set[str] = set()
        self.has_slots = False
        self.local_base_names: List[str] = [
            base.id for base in node.bases if isinstance(base, ast.Name)
        ]
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if function_is_generator(item):
                    self.generator_methods.add(item.name)
            elif isinstance(item, ast.Assign):
                for target in item.targets:
                    if isinstance(target, ast.Name) and target.id == "__slots__":
                        self.has_slots = True
            elif isinstance(item, ast.AnnAssign):
                if (isinstance(item.target, ast.Name)
                        and item.target.id == "__slots__"):
                    self.has_slots = True


class ModuleSummary:
    """Imports and definitions of one module, for name resolution."""

    def __init__(self, module: str, tree: ast.Module):
        self.module = module
        # local alias -> dotted module ("import repro.effects as fx")
        self.module_aliases: Dict[str, str] = {}
        # local alias -> (defining module, original name)
        self.from_imports: Dict[str, Symbol] = {}
        self.generator_functions: Set[str] = set()
        self.classes: Dict[str, ClassSummary] = {}
        self._collect(tree)

    def _collect(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    # "import a.b" binds "a"; "import a.b as c" binds c->a.b
                    self.module_aliases[local] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom):
                source = node.module or ""
                if node.level:  # relative import: anchor at this package
                    parts = self.module.split(".")
                    anchor = parts[: max(len(parts) - node.level, 0)]
                    source = ".".join(anchor + ([source] if source else []))
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.from_imports[local] = (source, alias.name)
            elif isinstance(node, ast.ClassDef):
                self.classes[node.name] = ClassSummary(node)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if function_is_generator(node):
                    self.generator_functions.add(node.name)

    # -- name resolution -------------------------------------------------

    def resolve_name(self, name: str) -> Optional[Symbol]:
        """Resolve a bare name used in this module to ``(module, symbol)``."""
        if name in self.from_imports:
            return self.from_imports[name]
        if name in self.classes or name in self.generator_functions:
            return (self.module, name)
        return None

    def resolve_qualifier(self, name: str) -> Optional[str]:
        """Resolve a name used as an attribute base to a dotted module."""
        if name in self.module_aliases:
            return self.module_aliases[name]
        if name in self.from_imports:
            # "from repro import effects" -> effects is repro.effects
            module, symbol = self.from_imports[name]
            return f"{module}.{symbol}" if module else symbol
        return None

    def resolve_callable(self, func: ast.expr) -> Optional[Symbol]:
        """Resolve the callee of a Call to a symbol, or None.

        Handles ``name(...)`` and ``mod.name(...)``; receiver expressions
        other than an imported module are left unresolved on purpose.
        """
        if isinstance(func, ast.Name):
            return self.resolve_name(func.id)
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            qualifier = self.resolve_qualifier(func.value.id)
            if qualifier is not None:
                return (qualifier, func.attr)
        return None


class ProjectIndex:
    """Cross-module view: effect-class closure + generator registry."""

    def __init__(self, summaries: Dict[str, ModuleSummary]):
        self.summaries = summaries
        self.effect_classes: Set[Symbol] = set(EFFECT_CLASS_SEEDS)
        self.kernel_classes: Set[Symbol] = set(KERNEL_CLASS_SEEDS)
        self.effect_factories: Set[Symbol] = set(EFFECT_FACTORY_SEEDS)
        self._close_subclasses(self.effect_classes)
        self._close_subclasses(self.kernel_classes)

    def _close_subclasses(self, closure: Set[Symbol]) -> None:
        changed = True
        while changed:
            changed = False
            for summary in self.summaries.values():
                for cls in summary.classes.values():
                    symbol = (summary.module, cls.name)
                    if symbol in closure:
                        continue
                    for base in cls.bases:
                        resolved = self._resolve_base(summary, base)
                        if resolved is not None and resolved in closure:
                            closure.add(symbol)
                            changed = True
                            break

    @staticmethod
    def _resolve_base(summary: ModuleSummary, base: ast.expr) -> Optional[Symbol]:
        if isinstance(base, ast.Name):
            resolved = summary.resolve_name(base.id)
            if resolved is not None:
                return resolved
            return (summary.module, base.id)  # forward/local reference
        if isinstance(base, ast.Attribute) and isinstance(base.value, ast.Name):
            qualifier = summary.resolve_qualifier(base.value.id)
            if qualifier is not None:
                return (qualifier, base.attr)
        return None

    # -- queries used by the rules ---------------------------------------

    def is_effect_symbol(self, symbol: Optional[Symbol]) -> bool:
        return symbol is not None and (
            symbol in self.effect_classes or symbol in self.effect_factories
        )

    def is_slots_contract_symbol(self, symbol: Optional[Symbol]) -> bool:
        return symbol is not None and (
            symbol in self.effect_classes or symbol in self.kernel_classes
        )

    def is_generator_symbol(self, symbol: Optional[Symbol]) -> bool:
        if symbol is None:
            return False
        module, name = symbol
        summary = self.summaries.get(module)
        return summary is not None and name in summary.generator_functions

    def generator_methods_of(self, summary: ModuleSummary,
                             class_name: str) -> Set[str]:
        """Generator methods of ``class_name`` including locally defined
        base classes (single module, name-based MRO approximation)."""
        methods: Set[str] = set()
        seen: Set[str] = set()
        stack = [class_name]
        while stack:
            name = stack.pop()
            if name in seen:
                continue
            seen.add(name)
            cls = summary.classes.get(name)
            if cls is None:
                continue
            methods.update(cls.generator_methods)
            stack.extend(cls.local_base_names)
        return methods
