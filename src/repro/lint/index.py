"""Pass-1 symbol index for repro-lint.

The interesting rules (RL001/RL002/RL006) need to know, for an arbitrary
call or class definition, whether a name refers to an *effect class* (a
subclass of :class:`repro.effects.Request`), a *generator coroutine*
(a function whose body contains ``yield``), or one of the simulation
kernel's hot classes (``Delay``/``Event``).  A single file rarely contains
enough information to decide, so the engine first summarizes every module
(imports, generator functions, classes and their bases) and then resolves
names through those summaries.

Resolution is deliberately name-based, not type-inferring: a symbol
resolves to ``(module, name)`` through the file's import table, and class
bases are chased to a fixpoint across all indexed modules.  Method calls
are resolved only through ``self``/a locally defined class, never through
arbitrary receiver expressions -- an unresolvable receiver produces *no*
finding rather than a speculative one.  (The interprocedural layer in
:mod:`repro.lint.flow` builds a richer resolver on top of this index.)

Summaries are plain data: every field survives a ``to_dict`` /
``from_dict`` round trip, which is what lets ``repro-lint --changed``
rebuild the project index from the on-disk cache without re-parsing
unchanged files.
"""

from __future__ import annotations

import ast
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

Symbol = Tuple[str, str]  # (dotted module, name)

#: A serializable reference to a not-yet-resolved name:
#: ``("name", id)`` for a bare name, ``("qual", base, attr)`` for
#: ``base.attr``.  Resolved against a module's import table.
NameRef = Tuple[str, ...]

#: Effect classes every repro tree is assumed to have, so single-file
#: fixtures (and partial lint runs) resolve them without parsing
#: repro/effects.py itself.  Discovery extends this set transitively.
EFFECT_CLASS_SEEDS: Set[Symbol] = {
    ("repro.effects", name)
    for name in (
        "Request",
        "StoreRequest",
        "Get",
        "Put",
        "PutIfVersion",
        "Delete",
        "DeleteIfVersion",
        "Increment",
        "Scan",
        "Batch",
        "CommitManagerRequest",
        "StartTransaction",
        "ReportCommitted",
        "ReportAborted",
        "Compute",
        "Sleep",
    )
}

#: The simulation kernel's hot classes: subclasses share the Request
#: __slots__ contract (docs/performance.md) and are covered by RL006.
KERNEL_CLASS_SEEDS: Set[Symbol] = {
    (module, name)
    for module in ("repro.sim.kernel", "repro.sim")
    for name in ("Delay", "Event")
}

#: Functions that *return* an effect/kernel object; calling one and
#: dropping the result is the same bug as dropping a constructor call.
EFFECT_FACTORY_SEEDS: Set[Symbol] = {
    ("repro.effects", "multi_get"),
    ("repro.sim.kernel", "delay_of"),
    ("repro.sim", "delay_of"),
}


def function_is_generator(fn: ast.AST) -> bool:
    """True if ``fn``'s own body contains ``yield`` / ``yield from``
    (yields inside nested defs/lambdas do not count)."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return True
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))
    return False


def name_ref_of(node: ast.expr) -> Optional[NameRef]:
    """Serializable reference for ``Name`` / ``Name.attr`` expressions."""
    if isinstance(node, ast.Name):
        return ("name", node.id)
    if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
        return ("qual", node.value.id, node.attr)
    return None


class ClassSummary:
    """What RL002/RL006 (and the flow layer) need to know about one
    class definition.  Pure data; serializable."""

    __slots__ = ("name", "lineno", "col_offset", "base_refs",
                 "generator_methods", "methods", "has_slots",
                 "local_base_names")

    def __init__(self, name: str, lineno: int = 0, col_offset: int = 0,
                 base_refs: Optional[List[NameRef]] = None,
                 generator_methods: Optional[Set[str]] = None,
                 methods: Optional[Set[str]] = None,
                 has_slots: bool = False) -> None:
        self.name = name
        self.lineno = lineno
        self.col_offset = col_offset
        self.base_refs: List[NameRef] = list(base_refs or [])
        self.generator_methods: Set[str] = set(generator_methods or ())
        self.methods: Set[str] = set(methods or ())
        self.has_slots = has_slots
        self.local_base_names: List[str] = [
            ref[1] for ref in self.base_refs if ref[0] == "name"
        ]

    @classmethod
    def from_ast(cls, node: ast.ClassDef) -> "ClassSummary":
        base_refs = [
            ref for ref in (name_ref_of(base) for base in node.bases)
            if ref is not None
        ]
        summary = cls(node.name, node.lineno, node.col_offset, base_refs)
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                summary.methods.add(item.name)
                if function_is_generator(item):
                    summary.generator_methods.add(item.name)
            elif isinstance(item, ast.Assign):
                for target in item.targets:
                    if isinstance(target, ast.Name) and target.id == "__slots__":
                        summary.has_slots = True
            elif isinstance(item, ast.AnnAssign):
                if (isinstance(item.target, ast.Name)
                        and item.target.id == "__slots__"):
                    summary.has_slots = True
        return summary

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "lineno": self.lineno,
            "col_offset": self.col_offset,
            "base_refs": [list(ref) for ref in self.base_refs],
            "generator_methods": sorted(self.generator_methods),
            "methods": sorted(self.methods),
            "has_slots": self.has_slots,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ClassSummary":
        return cls(
            data["name"], data.get("lineno", 0), data.get("col_offset", 0),
            [tuple(ref) for ref in data.get("base_refs", [])],
            set(data.get("generator_methods", [])),
            set(data.get("methods", [])),
            data.get("has_slots", False),
        )


class ModuleSummary:
    """Imports and definitions of one module, for name resolution."""

    def __init__(self, module: str, tree: Optional[ast.Module] = None) -> None:
        self.module = module
        # local alias -> dotted module ("import repro.effects as fx")
        self.module_aliases: Dict[str, str] = {}
        # local alias -> (defining module, original name)
        self.from_imports: Dict[str, Symbol] = {}
        self.generator_functions: Set[str] = set()
        self.classes: Dict[str, ClassSummary] = {}
        if tree is not None:
            self._collect(tree)

    def _collect(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    # "import a.b" binds "a"; "import a.b as c" binds c->a.b
                    self.module_aliases[local] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom):
                source = node.module or ""
                if node.level:  # relative import: anchor at this package
                    parts = self.module.split(".")
                    anchor = parts[: max(len(parts) - node.level, 0)]
                    source = ".".join(anchor + ([source] if source else []))
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.from_imports[local] = (source, alias.name)
            elif isinstance(node, ast.ClassDef):
                self.classes[node.name] = ClassSummary.from_ast(node)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if function_is_generator(node):
                    self.generator_functions.add(node.name)

    # -- serialization (repro-lint --changed / index cache) ----------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "module": self.module,
            "module_aliases": dict(self.module_aliases),
            "from_imports": {k: list(v) for k, v in self.from_imports.items()},
            "generator_functions": sorted(self.generator_functions),
            "classes": {name: cls.to_dict()
                        for name, cls in self.classes.items()},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ModuleSummary":
        summary = cls(data["module"])
        summary.module_aliases = dict(data.get("module_aliases", {}))
        summary.from_imports = {
            k: (v[0], v[1]) for k, v in data.get("from_imports", {}).items()
        }
        summary.generator_functions = set(data.get("generator_functions", []))
        summary.classes = {
            name: ClassSummary.from_dict(entry)
            for name, entry in data.get("classes", {}).items()
        }
        return summary

    # -- name resolution -------------------------------------------------

    def resolve_name(self, name: str) -> Optional[Symbol]:
        """Resolve a bare name used in this module to ``(module, symbol)``."""
        if name in self.from_imports:
            return self.from_imports[name]
        if name in self.classes or name in self.generator_functions:
            return (self.module, name)
        return None

    def resolve_qualifier(self, name: str) -> Optional[str]:
        """Resolve a name used as an attribute base to a dotted module."""
        if name in self.module_aliases:
            return self.module_aliases[name]
        if name in self.from_imports:
            # "from repro import effects" -> effects is repro.effects
            module, symbol = self.from_imports[name]
            return f"{module}.{symbol}" if module else symbol
        return None

    def resolve_ref(self, ref: Optional[NameRef]) -> Optional[Symbol]:
        """Resolve a serialized :data:`NameRef` to a symbol, or None."""
        if ref is None:
            return None
        if ref[0] == "name":
            return self.resolve_name(ref[1])
        if ref[0] == "qual":
            qualifier = self.resolve_qualifier(ref[1])
            if qualifier is not None:
                return (qualifier, ref[2])
        return None

    def resolve_callable(self, func: ast.expr) -> Optional[Symbol]:
        """Resolve the callee of a Call to a symbol, or None.

        Handles ``name(...)`` and ``mod.name(...)``; receiver expressions
        other than an imported module are left unresolved on purpose.
        """
        return self.resolve_ref(name_ref_of(func))


class ProjectIndex:
    """Cross-module view: effect-class closure + generator registry."""

    def __init__(self, summaries: Dict[str, ModuleSummary]) -> None:
        self.summaries = summaries
        self.effect_classes: Set[Symbol] = set(EFFECT_CLASS_SEEDS)
        self.kernel_classes: Set[Symbol] = set(KERNEL_CLASS_SEEDS)
        self.effect_factories: Set[Symbol] = set(EFFECT_FACTORY_SEEDS)
        #: Attached by the engine when ``--flow`` is on; the RF rules
        #: read it.  Typed loosely to avoid an import cycle with
        #: repro.lint.flow.
        self.flow: Optional[Any] = None
        self._close_subclasses(self.effect_classes)
        self._close_subclasses(self.kernel_classes)

    def _close_subclasses(self, closure: Set[Symbol]) -> None:
        changed = True
        while changed:
            changed = False
            for summary in self.summaries.values():
                for cls in summary.classes.values():
                    symbol = (summary.module, cls.name)
                    if symbol in closure:
                        continue
                    for base in cls.base_refs:
                        resolved = self._resolve_base(summary, base)
                        if resolved is not None and resolved in closure:
                            closure.add(symbol)
                            changed = True
                            break

    @staticmethod
    def _resolve_base(summary: ModuleSummary,
                      base: NameRef) -> Optional[Symbol]:
        resolved = summary.resolve_ref(base)
        if resolved is not None:
            return resolved
        if base[0] == "name":
            return (summary.module, base[1])  # forward/local reference
        return None

    def resolve_base_symbols(self, summary: ModuleSummary,
                             cls: ClassSummary) -> List[Symbol]:
        """Resolved base-class symbols of ``cls`` (flow-layer helper)."""
        symbols: List[Symbol] = []
        for base in cls.base_refs:
            resolved = self._resolve_base(summary, base)
            if resolved is not None:
                symbols.append(resolved)
        return symbols

    # -- queries used by the rules ---------------------------------------

    def is_effect_symbol(self, symbol: Optional[Symbol]) -> bool:
        return symbol is not None and (
            symbol in self.effect_classes or symbol in self.effect_factories
        )

    def is_slots_contract_symbol(self, symbol: Optional[Symbol]) -> bool:
        return symbol is not None and (
            symbol in self.effect_classes or symbol in self.kernel_classes
        )

    def is_generator_symbol(self, symbol: Optional[Symbol]) -> bool:
        if symbol is None:
            return False
        module, name = symbol
        summary = self.summaries.get(module)
        return summary is not None and name in summary.generator_functions

    def generator_methods_of(self, summary: ModuleSummary,
                             class_name: str) -> Set[str]:
        """Generator methods of ``class_name`` including locally defined
        base classes (single module, name-based MRO approximation)."""
        methods: Set[str] = set()
        seen: Set[str] = set()
        stack = [class_name]
        while stack:
            name = stack.pop()
            if name in seen:
                continue
            seen.add(name)
            cls = summary.classes.get(name)
            if cls is None:
                continue
            methods.update(cls.generator_methods)
            stack.extend(cls.local_base_names)
        return methods


def find_class(summaries: Dict[str, ModuleSummary],
               symbol: Symbol) -> Optional[Tuple[ModuleSummary, ClassSummary]]:
    """Locate a class summary by symbol across indexed modules."""
    summary = summaries.get(symbol[0])
    if summary is None:
        return None
    cls = summary.classes.get(symbol[1])
    if cls is None:
        return None
    return summary, cls


def in_prefixes(module: str, prefixes: Sequence[str]) -> bool:
    """True if ``module`` is one of ``prefixes`` or nested under one."""
    return any(module == p or module.startswith(p + ".") for p in prefixes)
