"""Multiprocess flow extraction (``repro-lint --jobs N``).

Phase 1 of a ``--flow`` run -- parsing every module and extracting its
:class:`~repro.lint.flow.summary.ModuleFlow` -- is embarrassingly
parallel and dominates wall clock on the grown tree.  Workers receive
``(path, module, text)`` triples, parse and extract independently, and
return the *serialized* summary/flow dicts; the parent rebuilds them via
the same ``from_dict`` round-trip the on-disk cache uses, so a parallel
run and a warm-cache run produce byte-identical analysis inputs.

Phases 2+ (the call-graph fixpoints and rule evaluation) stay in the
parent: they are cheap relative to extraction and need the whole
project index at once.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Any, Dict, List, Tuple

#: (display path, dotted module, source text) -> worker input.
ExtractItem = Tuple[str, str, str]
#: (display path, serialized summary, serialized flow); summary/flow are
#: None when the source does not parse (the parent re-reports RL000).
ExtractResult = Tuple[str, Any, Any]


def _extract_one(item: ExtractItem) -> ExtractResult:
    """Worker: parse + summarize + extract one module, return dicts."""
    import ast

    from repro.lint.flow.summary import extract_module_flow
    from repro.lint.index import ModuleSummary

    path, module, text = item
    try:
        tree = ast.parse(text)
    except SyntaxError:
        return path, None, None
    summary = ModuleSummary(module, tree)
    flow = extract_module_flow(summary, tree)
    return path, summary.to_dict(), flow.to_dict()


def extract_flows(items: List[ExtractItem],
                  jobs: int) -> Dict[str, Tuple[Any, Any]]:
    """Extract flows for ``items`` with ``jobs`` worker processes.

    Returns ``{path: (summary_dict, flow_dict)}``; failed parses map to
    ``(None, None)``.  Falls back to in-process extraction when ``jobs``
    <= 1, the item list is tiny, the host has a single core (pool
    overhead is pure loss there), or the platform cannot fork workers --
    output is identical either way.
    """
    results: Dict[str, Tuple[Any, Any]] = {}
    jobs = min(jobs, os.cpu_count() or 1)
    if jobs > 1 and len(items) > 2:
        try:
            with multiprocessing.Pool(processes=jobs) as pool:
                for path, summary, flow in pool.map(
                        _extract_one, items,
                        chunksize=max(1, len(items) // (jobs * 4))):
                    results[path] = (summary, flow)
            return results
        except (OSError, ValueError):
            results.clear()
    for item in items:
        path, summary, flow = _extract_one(item)
        results[path] = (summary, flow)
    return results
