"""The repro-lint rule catalog.

Every rule is a :class:`Rule` subclass with a stable code (``RL001``..),
a one-line title, and an ``explain`` docstring shown by
``repro-lint --explain RL00N``.  Rules receive the parsed module plus the
cross-module :class:`~repro.lint.index.ProjectIndex` and emit
:class:`~repro.lint.engine.Finding` objects.

The catalog is documented for humans in ``docs/static-analysis.md``; keep
the two in sync when adding rules.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.lint.index import ModuleSummary, ProjectIndex

# Packages whose code runs on *simulated* time.  Wall-clock reads here
# bypass the event kernel and (worse) vary run to run, breaking the
# determinism contract of repro/sim/kernel.py.  repro.bench is excluded:
# measuring real elapsed time is its job.
SIMULATED_TIME_PACKAGES: Tuple[str, ...] = (
    "repro.sim",
    "repro.core",
    "repro.store",
    "repro.index",
    "repro.net",
    "repro.baselines",
)

WALL_CLOCK_ATTRS = frozenset({
    "time", "time_ns", "monotonic", "monotonic_ns", "sleep",
    "perf_counter", "perf_counter_ns", "process_time", "process_time_ns",
})

MUTABLE_DEFAULT_CALLS = frozenset({
    "list", "dict", "set", "bytearray",
    "defaultdict", "deque", "Counter", "OrderedDict",
})


def in_packages(module: str, prefixes: Sequence[str]) -> bool:
    return any(module == p or module.startswith(p + ".") for p in prefixes)


class Rule:
    """Base class: subclasses set ``code``/``title``/``explain`` and
    implement :meth:`check`."""

    code = "RL000"
    title = "internal"
    explain = ""

    def check(self, module: ModuleSummary, tree: ast.Module,
              index: ProjectIndex) -> Iterator[Tuple[ast.AST, str]]:
        """Yield ``(node, message)`` pairs; the engine adds location."""
        raise NotImplementedError
        yield  # pragma: no cover


class _FunctionContext:
    __slots__ = ("node", "is_generator", "class_name")

    def __init__(self, node: ast.AST, is_generator: bool,
                 class_name: Optional[str]) -> None:
        self.node = node
        self.is_generator = is_generator
        self.class_name = class_name


def _walk_functions(tree: ast.Module) -> Iterator[_FunctionContext]:
    """Every function/method in the module with its enclosing class."""
    from repro.lint.index import function_is_generator

    def visit(node: ast.AST, class_name: Optional[str]) -> Iterator[_FunctionContext]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield _FunctionContext(
                    child, function_is_generator(child), class_name
                )
                yield from visit(child, class_name)
            elif isinstance(child, ast.ClassDef):
                yield from visit(child, child.name)
            else:
                yield from visit(child, class_name)

    return visit(tree, None)


def _effect_call_name(node: ast.expr, module: ModuleSummary,
                      index: ProjectIndex) -> Optional[str]:
    """If ``node`` is a call constructing an effect (or calling an effect
    factory like ``multi_get``), return the effect's display name."""
    if not isinstance(node, ast.Call):
        return None
    symbol = module.resolve_callable(node.func)
    if index.is_effect_symbol(symbol):
        return symbol[1]
    return None


def _resolve_generator_call(node: ast.expr, module: ModuleSummary,
                            index: ProjectIndex,
                            class_name: Optional[str]) -> Optional[str]:
    """If ``node`` calls a *resolvable* generator coroutine, return its
    display name.  Resolvable means: a local/imported module-level
    generator function, ``self.method`` / ``cls.method`` of the enclosing
    class, or ``LocalClass.method``.  Arbitrary receivers stay unresolved
    (no speculative findings)."""
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if isinstance(func, ast.Name):
        symbol = module.resolve_name(func.id)
        if index.is_generator_symbol(symbol):
            return func.id
        return None
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        receiver = func.value.id
        if receiver in ("self", "cls") and class_name is not None:
            if func.attr in index.generator_methods_of(module, class_name):
                return f"{receiver}.{func.attr}"
            return None
        cls = module.classes.get(receiver)
        if cls is not None:
            if func.attr in index.generator_methods_of(module, receiver):
                return f"{receiver}.{func.attr}"
            return None
        symbol = module.resolve_callable(func)
        if index.is_generator_symbol(symbol):
            return f"{receiver}.{func.attr}"
    return None


class RL001DroppedEffect(Rule):
    code = "RL001"
    title = "effect constructed but never yielded"
    explain = """\
Protocol code communicates with its driver exclusively by *yielding*
repro.effects.Request objects: `ok, _ = yield effects.PutIfVersion(...)`.
An effect that is constructed but never yielded is silently dropped -- the
driver never executes it.  The classic instance is a deleted `yield` in
front of a store-conditional write, which skips the LL/SC write-write
conflict check that snapshot isolation depends on and corrupts the run
without any error.

RL001 fires when an effect construction (or a call to an effect factory
such as `multi_get` / `delay_of`) appears as

  * a bare expression statement:   `effects.PutIfVersion(space, k, v, ver)`
  * a tuple-unpacking assignment:  `ok, _ = effects.PutIfVersion(...)`
    (unpacking the request object itself -- a deleted `yield`)
  * the operand of `yield from`:   `yield from effects.Get(space, k)`
    (requests are not iterable; use a plain `yield`)

Building an effect and *binding or passing* it is fine -- that is how
batches are assembled:  `puts.append(effects.PutIfVersion(...))`.

Fix: reinstate the `yield` (or pass the effect into the batch that yields
it).  If the construction is intentional, add
`# repro-lint: ignore[RL001]` with a justification.
"""

    def check(self, module: ModuleSummary, tree: ast.Module,
              index: ProjectIndex) -> Iterator[Tuple[ast.AST, str]]:
        for stmt in ast.walk(tree):
            if isinstance(stmt, ast.Expr):
                name = _effect_call_name(stmt.value, module, index)
                if name is not None:
                    yield stmt, (
                        f"effect {name!r} is constructed but never yielded; "
                        f"a dropped `yield` skips the request entirely"
                    )
            elif isinstance(stmt, ast.Assign):
                if any(isinstance(t, (ast.Tuple, ast.List))
                       for t in stmt.targets):
                    name = _effect_call_name(stmt.value, module, index)
                    if name is not None:
                        yield stmt, (
                            f"unpacking effect {name!r} directly -- this "
                            f"looks like a deleted `yield` before the "
                            f"request"
                        )
            elif isinstance(stmt, ast.YieldFrom):
                name = _effect_call_name(stmt.value, module, index)
                if name is not None:
                    yield stmt, (
                        f"`yield from` on effect {name!r}; requests are "
                        f"not iterable -- use a plain `yield`"
                    )


class RL002GeneratorNotDelegated(Rule):
    code = "RL002"
    title = "generator coroutine called without `yield from`"
    explain = """\
Every protocol operation in this repository (Transaction.read,
BTree.insert, TxLog.append, ...) is a generator coroutine.  Calling one
like a plain function only *creates* the generator -- none of its code
runs.  This is the repo's equivalent of an un-awaited coroutine.

RL002 fires when a call to a resolvable generator coroutine appears as

  * a bare expression statement:    `self.abort()`     (nothing runs)
  * `yield` instead of `yield from`: `yield self.read(key)`  (yields the
    generator object to the driver as if it were an effect)
  * `return` inside another generator: `return self.read(key)` (returns
    the raw generator as the coroutine's StopIteration value)

"Resolvable" means the callee is a module-level generator function
(local or imported), `self.<method>` / `cls.<method>` of the enclosing
class, or `LocalClass.<method>`.  Calls through arbitrary receivers are
not flagged -- repro-lint prefers silence over speculation.

Passing a freshly created generator *into* something that drives it
(`sim.spawn(worker())`, `run_direct(txn(), router)`) is fine: the call is
an argument, not a dropped statement.

Fix: delegate with `yield from`, or drive the generator explicitly.
"""

    def check(self, module: ModuleSummary, tree: ast.Module,
              index: ProjectIndex) -> Iterator[Tuple[ast.AST, str]]:
        for ctx in _walk_functions(tree):
            cls = ctx.class_name
            for child in ast.iter_child_nodes(ctx.node):
                yield from self._check_body(child, module, index, ctx, cls)

    def _check_body(self, node: ast.AST, module: ModuleSummary,
                    index: ProjectIndex, ctx: _FunctionContext,
                    cls: Optional[str]) -> Iterator[Tuple[ast.AST, str]]:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            return  # nested defs get their own _FunctionContext
        if isinstance(node, ast.Expr) and not isinstance(
                node.value, (ast.Yield, ast.YieldFrom)):
            name = _resolve_generator_call(node.value, module, index, cls)
            if name is not None:
                yield node, (
                    f"generator coroutine {name}(...) called as a plain "
                    f"statement; none of its code runs -- use `yield from`"
                )
        elif isinstance(node, ast.Yield):
            inner = node.value
            name = _resolve_generator_call(inner, module, index, cls) \
                if inner is not None else None
            if name is not None:
                yield node, (
                    f"`yield {name}(...)` hands the raw generator to the "
                    f"driver -- use `yield from {name}(...)`"
                )
        elif isinstance(node, ast.Return) and ctx.is_generator:
            name = _resolve_generator_call(node.value, module, index, cls) \
                if node.value is not None else None
            if name is not None:
                yield node, (
                    f"returning un-driven generator {name}(...) from a "
                    f"generator coroutine -- use `return (yield from "
                    f"{name}(...))`"
                )
        for child in ast.iter_child_nodes(node):
            yield from self._check_body(child, module, index, ctx, cls)


class RL003WallClock(Rule):
    code = "RL003"
    title = "wall-clock time in simulated-time code"
    explain = """\
Code under repro.sim / core / store / index / net / baselines runs on
*simulated* time: the event kernel's clock, advanced deterministically by
the scheduler.  Reading the wall clock there (time.time, time.monotonic,
time.perf_counter, time.sleep, ...) has two failure modes: the value has
nothing to do with simulated time, and -- worse -- it differs between
runs, so the "fixed seed reproduces the exact same run" contract of
repro/sim/kernel.py is broken in a way the digest-invariance harness can
only detect after the fact.

Use `sim.now` / `SimClock.now` (or take a clock as a dependency) instead.
repro.bench is exempt: measuring real elapsed time is its job.

RL003 fires on any use of a wall-clock attribute of the `time` module and
on `from time import ...` of those names, inside the simulated-time
packages.
"""

    def check(self, module: ModuleSummary, tree: ast.Module,
              index: ProjectIndex) -> Iterator[Tuple[ast.AST, str]]:
        if not in_packages(module.module, SIMULATED_TIME_PACKAGES):
            return
        for node in ast.walk(tree):
            if isinstance(node, ast.Attribute):
                if (node.attr in WALL_CLOCK_ATTRS
                        and isinstance(node.value, ast.Name)
                        and module.resolve_qualifier(node.value.id) == "time"):
                    yield node, (
                        f"wall-clock `time.{node.attr}` in simulated-time "
                        f"module {module.module}; use the simulator clock"
                    )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "time" and not node.level:
                    for alias in node.names:
                        if alias.name in WALL_CLOCK_ATTRS:
                            yield node, (
                                f"importing wall-clock `time.{alias.name}` "
                                f"in simulated-time module {module.module}"
                            )


class RL004GlobalRandom(Rule):
    code = "RL004"
    title = "module-level random or unseeded Random()"
    explain = """\
Library code must draw randomness only from an explicitly seeded
`random.Random(seed)` instance that is threaded through from the caller.
The module-level functions (`random.random()`, `random.choice()`, ...)
share one process-global, unseeded generator: any call sneaks
nondeterminism past the simulation's determinism digest, and state leaks
between otherwise independent runs.  An argument-less `random.Random()`
seeds from the OS and is just as bad.

RL004 fires on any use of a module-level `random.<fn>` (everything except
the `Random` / `SystemRandom` classes) and on `random.Random()` calls
without a seed argument.

Fix: accept an `rng: random.Random` (or a seed) as a parameter, the way
repro.workloads and repro.bench.simcluster already do.
"""

    _CLASS_NAMES = frozenset({"Random", "SystemRandom"})

    def check(self, module: ModuleSummary, tree: ast.Module,
              index: ProjectIndex) -> Iterator[Tuple[ast.AST, str]]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            # random.<fn>(...) through the imported module
            if (isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and module.resolve_qualifier(func.value.id) == "random"):
                if func.attr not in self._CLASS_NAMES:
                    yield node, (
                        f"module-level `random.{func.attr}` uses the "
                        f"shared unseeded generator; thread a seeded "
                        f"random.Random through instead"
                    )
                elif func.attr == "Random" and not node.args:
                    yield node, (
                        "`random.Random()` without a seed is "
                        "nondeterministic; pass an explicit seed"
                    )
            # from random import Random; Random(...)
            elif isinstance(func, ast.Name):
                symbol = module.resolve_name(func.id)
                if symbol == ("random", "Random") and not node.args:
                    yield node, (
                        "`Random()` without a seed is nondeterministic; "
                        "pass an explicit seed"
                    )


class RL005SetIteration(Rule):
    code = "RL005"
    title = "iteration over a set"
    explain = """\
Set iteration order in CPython depends on insertion history and hash
randomization of the element types.  In this codebase, iteration order
routinely feeds the scheduler (which request is issued first), result
assembly, and the determinism digest -- so looping over a set literal,
set comprehension, or `set(...)` / `frozenset(...)` call is a latent
nondeterminism bug even when it happens to pass today.

RL005 fires when the iterable of a `for` statement or a comprehension is
a set display, a set comprehension, or a direct `set(...)` /
`frozenset(...)` call.

Fix: iterate a list/tuple, or wrap the set in `sorted(...)` to pin an
order.  Membership *tests* against sets are of course fine.
"""

    @staticmethod
    def _is_set_expr(node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
                and node.func.id in ("set", "frozenset")):
            return True
        return False

    def check(self, module: ModuleSummary, tree: ast.Module,
              index: ProjectIndex) -> Iterator[Tuple[ast.AST, str]]:
        for node in ast.walk(tree):
            iters: List[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                if self._is_set_expr(it):
                    yield it, (
                        "iterating a set: order is nondeterministic and "
                        "feeds scheduling/digests -- use sorted(...) or a "
                        "list"
                    )


class RL006MissingSlots(Rule):
    code = "RL006"
    title = "Request/Delay/Event subclass without __slots__"
    explain = """\
Effect classes (repro.effects.Request subclasses) and the kernel's
Delay/Event are allocated on the hottest paths in the repository -- one
or more per simulated request.  PR 1 established the contract
(docs/performance.md) that every class in these hierarchies declares
`__slots__`: a single slotless subclass re-introduces a per-instance
`__dict__`, roughly doubling allocation cost and memory for every
instance *of that subclass*, and silently weakens the exact-class
dispatch assumptions in Process._step.

RL006 fires on any class that resolves (transitively, across the linted
files) to a subclass of Request, Delay, or Event and whose body does not
assign `__slots__`.  Subclasses that add no attributes still need
`__slots__ = ()`.
"""

    def check(self, module: ModuleSummary, tree: ast.Module,
              index: ProjectIndex) -> Iterator[Tuple[ast.AST, str]]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            cls = module.classes.get(node.name)
            if cls is None or cls.has_slots:
                continue
            if (module.module, node.name) in index.effect_classes:
                base = "repro.effects.Request"
            elif (module.module, node.name) in index.kernel_classes:
                base = "Delay/Event"
            else:
                continue
            yield node, (
                f"class {node.name!r} subclasses {base} but does not "
                f"declare __slots__ (hot-path contract, "
                f"docs/performance.md); add `__slots__ = (...)`"
            )


class RL007MutableDefault(Rule):
    code = "RL007"
    title = "mutable default argument"
    explain = """\
Default argument values are evaluated once, at function definition time,
and shared across every call.  A mutable default (`def f(x, acc=[])`)
therefore accumulates state between calls -- in this codebase that means
state leaking between transactions, simulations, or test runs, which the
determinism digest will eventually surface as an unexplained divergence.

RL007 fires when a parameter default is a list/dict/set display or
comprehension, or a direct call to list/dict/set/bytearray/defaultdict/
deque/Counter/OrderedDict.

Fix: default to None and create the container inside the function.
"""

    @classmethod
    def _is_mutable(cls, node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            name = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else None
            )
            return name in MUTABLE_DEFAULT_CALLS
        return False

    def check(self, module: ModuleSummary, tree: ast.Module,
              index: ProjectIndex) -> Iterator[Tuple[ast.AST, str]]:
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.Lambda)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    yield default, (
                        "mutable default argument is shared across calls; "
                        "default to None and build the container inside"
                    )


class RL008BypassedDispatch(Rule):
    code = "RL008"
    title = "dispatcher bypassed from protocol code"
    explain = """\
PR 3 unified request routing into the repro.dispatch pipeline: every
request a protocol coroutine needs served must be *yielded* as an effect
so it flows through the interceptor chain (tracing, fault injection,
retry policy).  Calling the backing components directly from protocol
code -- `cluster.execute(...)`, `commit_manager.start(...)` /
`.set_committed(...)` / `.set_aborted(...)` -- resurrects the pre-PR-3
ad-hoc ladders: the call is invisible to every interceptor, takes no
simulated time, and bypasses fault injection, so recovery scenarios
silently stop covering it.

RL008 fires inside the protocol packages (repro.core, repro.index,
repro.sql, repro.workloads) on any call whose receiver name (or final
attribute) is `cluster` with method `execute` / `execute_scan`, or
`commit_manager` / `manager` with method `start` / `set_committed` /
`set_aborted`.

Drivers (repro.dispatch, repro.bench, repro.api) are exempt: serving
these calls is their job.  Legitimate direct uses -- e.g. the commit
manager's own tid-counter refill -- carry
`# repro-lint: ignore[RL008]` with a justification.
"""

    #: Packages holding protocol coroutines that must yield effects.
    PROTOCOL_PACKAGES: Tuple[str, ...] = (
        "repro.core",
        "repro.index",
        "repro.sql",
        "repro.workloads",
    )

    _CLUSTER_METHODS = frozenset({"execute", "execute_scan"})
    _CM_METHODS = frozenset({"start", "set_committed", "set_aborted"})
    _CLUSTER_NAMES = frozenset({"cluster", "storage_cluster"})
    _CM_NAMES = frozenset({"commit_manager", "manager"})

    @staticmethod
    def _receiver_name(node: ast.expr) -> Optional[str]:
        """Final name of the receiver chain: `a.b.cluster` -> 'cluster'."""
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Attribute):
            return node.attr
        return None

    def check(self, module: ModuleSummary, tree: ast.Module,
              index: ProjectIndex) -> Iterator[Tuple[ast.AST, str]]:
        if not in_packages(module.module, self.PROTOCOL_PACKAGES):
            return
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            receiver = self._receiver_name(func.value)
            if receiver is None:
                continue
            if (receiver in self._CLUSTER_NAMES
                    and func.attr in self._CLUSTER_METHODS):
                yield node, (
                    f"direct `{receiver}.{func.attr}(...)` from protocol "
                    f"module {module.module} bypasses the dispatch "
                    f"pipeline; yield the request as an effect instead"
                )
            elif (receiver in self._CM_NAMES
                    and func.attr in self._CM_METHODS):
                yield node, (
                    f"direct `{receiver}.{func.attr}(...)` from protocol "
                    f"module {module.module} bypasses the dispatch "
                    f"pipeline; yield the commit-manager effect instead"
                )


class RL009SanitizerMutation(Rule):
    code = "RL009"
    title = "sanitizer mutates protocol state"
    explain = """\
The sanitizers under repro.san are strictly *observational*: they watch
the request stream, maintain their own shadow history, and must never
change the run they are checking.  A sanitizer that mutates a protocol
object -- assigning an attribute on a record/snapshot/transaction,
or calling a mutating method on the store, commit manager, or a
transaction -- silently perturbs the very interleaving under test and
turns the checker into a heisenbug generator.  (It can also mask the bug
being hunted: "fixing" a version chain before the axiom check runs.)

RL009 fires inside the observer modules of repro.san (everything except
the drivers: scenarios, explorer, __main__, which own their deployments)
on:

  * attribute assignment whose receiver chain ends in a protocol-object
    name (`record`, `snapshot`, `txn`, `cluster`, `manager`, ...) and is
    not rooted at `self`/`cls` -- includes `recv.attr[k] = v` stores;
  * method calls on those receivers outside the read-only accessor
    allow-list (`version_numbers`, `latest_visible`, `payload_of`,
    `as_pair`, `contains`, `as_dict`, `active_transactions`,
    `completed_view`, ...).

Sanitizer-owned mutable state must therefore avoid protocol receiver
names: shadow cells are `sc`, transaction views are `view`, the history
is `shadow`.  Genuinely read-only uses that trip the name heuristic can
carry `# repro-lint: ignore[RL009]` with a justification.
"""

    #: Modules where the observational contract is enforced.
    OBSERVER_PACKAGE = "repro.san"
    #: Driver modules inside the package: they *own* deployments and may
    #: mutate protocol state freely (that is their job).
    DRIVER_MODULES: Tuple[str, ...] = (
        "repro.san.scenarios",
        "repro.san.explorer",
        "repro.san.__main__",
    )

    #: Receiver names that (by repo-wide convention) bind protocol
    #: objects.  Final-attribute matching, same scheme as RL008.
    _PROTOCOL_RECEIVERS = frozenset({
        "record", "version", "cell", "snapshot", "descriptor",
        "txn", "transaction", "start",
        "cluster", "storage_cluster", "node", "storage_node", "store",
        "manager", "commit_manager", "pn", "processing_node",
        "btree", "tree", "index",
        "request", "op", "ctx", "env",
    })

    #: Methods a sanitizer may call on protocol receivers: read-only
    #: accessors (several added expressly for the sanitizers).
    _READ_ONLY_METHODS = frozenset({
        # records / versions
        "version_numbers", "latest_visible", "payload_of", "get",
        "collectable_versions", "fully_deleted", "approx_size",
        # snapshots
        "as_pair", "contains", "issubset",
        # commit manager / gc
        "active_transactions", "completed_view", "as_dict",
        "local_lav", "lowest_active_version", "highest_known_tid",
        "active_tids_of",
        # misc read-only
        "keys", "values", "items", "copy",
    })

    @staticmethod
    def _root_name(node: ast.expr) -> Optional[str]:
        while isinstance(node, (ast.Attribute, ast.Subscript)):
            node = node.value
        if isinstance(node, ast.Name):
            return node.id
        return None

    def _flagged_receiver(self, node: ast.expr) -> Optional[str]:
        """Receiver's final name if it matches a protocol object bound
        outside the sanitizer itself (chains rooted at self/cls are the
        sanitizer's own state)."""
        receiver = RL008BypassedDispatch._receiver_name(node)
        if receiver is None or receiver not in self._PROTOCOL_RECEIVERS:
            return None
        if self._root_name(node) in ("self", "cls"):
            return None
        return receiver

    def check(self, module: ModuleSummary, tree: ast.Module,
              index: ProjectIndex) -> Iterator[Tuple[ast.AST, str]]:
        name = module.module
        if not in_packages(name, (self.OBSERVER_PACKAGE,)):
            return
        if name in self.DRIVER_MODULES:
            return
        for node in ast.walk(tree):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = node.targets if isinstance(node, ast.Assign) \
                    else [node.target]
                for target in targets:
                    while isinstance(target, ast.Subscript):
                        target = target.value
                    if not isinstance(target, ast.Attribute):
                        continue
                    receiver = self._flagged_receiver(target.value)
                    if receiver is not None:
                        yield node, (
                            f"sanitizer module {name} assigns state on "
                            f"protocol object `{receiver}`; sanitizers "
                            f"are read-only observers"
                        )
            elif isinstance(node, ast.Call):
                func = node.func
                if not isinstance(func, ast.Attribute):
                    continue
                if func.attr in self._READ_ONLY_METHODS:
                    continue
                receiver = self._flagged_receiver(func.value)
                if receiver is not None:
                    yield node, (
                        f"sanitizer module {name} calls "
                        f"`{receiver}.{func.attr}(...)`, which is not on "
                        f"the read-only accessor allow-list; sanitizers "
                        f"must not drive or mutate protocol objects"
                    )


class RL010SanitizerObservability(Rule):
    code = "RL010"
    title = "sanitizer touches observability instrumentation"
    explain = """\
The repro.obs metrics/tracing layer and the repro.san sanitizers are
both observers, but they must stay independent: the sanitizers verify
protocol axioms over a shadow history, and the observability layer
harvests live component state.  Shadow code that imports repro.obs, or
records into a registry/tracer/span it was handed, couples the two --
metric values would then depend on whether a sanitizer is attached
(breaking obs snapshot determinism), and a tracing bug could perturb a
sanitized run.  Instrumentation belongs in the protocol and driver
layers; sanitizers report through their own finding channels.

RL010 fires inside the observer modules of repro.san (the same set
RL009 polices -- everything except the drivers scenarios, explorer,
__main__) on:

  * `import repro.obs` / `from repro.obs import ...` (any submodule);
  * calls whose receiver chain ends in an observability object name
    (`obs`, `tracer`, `registry`, `span`).
"""

    OBSERVER_PACKAGE = RL009SanitizerMutation.OBSERVER_PACKAGE
    DRIVER_MODULES = RL009SanitizerMutation.DRIVER_MODULES

    _OBS_RECEIVERS = frozenset({"obs", "tracer", "registry", "span"})

    def check(self, module: ModuleSummary, tree: ast.Module,
              index: ProjectIndex) -> Iterator[Tuple[ast.AST, str]]:
        name = module.module
        if not in_packages(name, (self.OBSERVER_PACKAGE,)):
            return
        if name in self.DRIVER_MODULES:
            return
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "repro.obs" or \
                            alias.name.startswith("repro.obs."):
                        yield node, (
                            f"sanitizer module {name} imports "
                            f"`{alias.name}`; shadow code must not use "
                            f"observability instrumentation"
                        )
            elif isinstance(node, ast.ImportFrom):
                source = node.module or ""
                if source == "repro.obs" or source.startswith("repro.obs."):
                    yield node, (
                        f"sanitizer module {name} imports from "
                        f"`{source}`; shadow code must not use "
                        f"observability instrumentation"
                    )
            elif isinstance(node, ast.Call):
                func = node.func
                if not isinstance(func, ast.Attribute):
                    continue
                receiver = RL008BypassedDispatch._receiver_name(func.value)
                if receiver in self._OBS_RECEIVERS:
                    yield node, (
                        f"sanitizer module {name} calls "
                        f"`{receiver}.{func.attr}(...)`; shadow code must "
                        f"not record metrics or spans"
                    )


class RL011UninternedDelay(Rule):
    code = "RL011"
    title = "per-yield Delay() with a constant/recurring duration"
    explain = """\
`yield Delay(x)` allocates a fresh Delay object on every suspension.  For
a duration that never changes -- a literal constant, or a loop-invariant
variable re-yielded on every iteration -- that is one garbage object per
event on the simulator's hottest path.  `repro.sim.kernel.delay_of`
interns Delay instances by duration (Delays are immutable, so sharing one
across yields, processes, and simulators is safe), and a loop can equally
hoist a single instance out of the loop body.

RL011 fires inside the hot-path packages (repro.sim / core / store /
index / net / baselines / bench / workloads) on:

* `yield Delay(<numeric literal>)` anywhere, and
* `yield Delay(<name>)` directly inside a for/while loop when `<name>`
  is never rebound in the loop body (the duration is the same object
  every iteration, so the Delay should be too).

A computed duration (`yield Delay(end - now)`) is exempt: the value
genuinely varies, so an allocation-free yield needs a driver-private
mutable Delay, which is a deliberate, documented pattern rather than a
lint-enforced one.

Fix: `yield delay_of(duration)` for recurring durations, or build the
Delay once before the loop (`pause = delay_of(step)` ... `yield pause`).
"""

    _HOT_PATH_PACKAGES = SIMULATED_TIME_PACKAGES + (
        "repro.bench", "repro.workloads",
    )
    _DELAY_SYMBOLS = frozenset({
        ("repro.sim.kernel", "Delay"),
        ("repro.sim", "Delay"),
    })

    def _is_delay_call(self, node: ast.expr,
                       module: ModuleSummary) -> bool:
        if not (isinstance(node, ast.Call)
                and len(node.args) == 1 and not node.keywords):
            return False
        symbol = module.resolve_callable(node.func)
        return symbol in self._DELAY_SYMBOLS

    @staticmethod
    def _names_bound_in(loop: ast.AST) -> frozenset:
        bound = set()
        for node in ast.walk(loop):
            targets = ()
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = (node.target,)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                targets = (node.target,)
            elif isinstance(node, ast.NamedExpr):
                targets = (node.target,)
            elif isinstance(node, ast.withitem):
                if node.optional_vars is not None:
                    targets = (node.optional_vars,)
            for target in targets:
                for leaf in ast.walk(target):
                    if isinstance(leaf, ast.Name):
                        bound.add(leaf.id)
        return frozenset(bound)

    def check(self, module: ModuleSummary, tree: ast.Module,
              index: ProjectIndex) -> Iterator[Tuple[ast.AST, str]]:
        if not in_packages(module.module, self._HOT_PATH_PACKAGES):
            return

        def visit(node: ast.AST,
                  loops: Tuple[ast.AST, ...]
                  ) -> Iterator[Tuple[ast.AST, str]]:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                      ast.Lambda)):
                    # A nested function's yields do not repeat per
                    # enclosing-loop iteration; restart the loop stack.
                    yield from visit(child, ())
                elif isinstance(child, (ast.For, ast.AsyncFor, ast.While)):
                    yield from visit(child, loops + (child,))
                else:
                    yield from visit(child, loops)
            if (isinstance(node, ast.Yield) and node.value is not None
                    and self._is_delay_call(node.value, module)):
                arg = node.value.args[0]
                if (isinstance(arg, ast.Constant)
                        and isinstance(arg.value, (int, float))
                        and not isinstance(arg.value, bool)):
                    yield node.value, (
                        f"`yield Delay({arg.value!r})` allocates per "
                        f"yield for a constant duration; use "
                        f"`delay_of({arg.value!r})`"
                    )
                elif loops and isinstance(arg, ast.Name):
                    if arg.id not in self._names_bound_in(loops[-1]):
                        yield node.value, (
                            f"`yield Delay({arg.id})` inside a loop "
                            f"re-allocates a Delay for the same duration "
                            f"every iteration; use `delay_of({arg.id})` "
                            f"or hoist one instance out of the loop"
                        )

        yield from visit(tree, ())


class RL012IsolationEncapsulation(Rule):
    code = "RL012"
    title = "isolation-protocol state touched outside repro.core.isolation"
    explain = """\
The isolation strategy layer (repro.core.isolation) owns all read-set
and commit-validation state: the per-transaction read-key capture
(`txn._read_keys`, installed by `IsolationProtocol.attach`) and the
validator's window (`_commit_window`, `_validation_horizon`).  That
ownership is what makes protocols pluggable -- SI never allocates the
state, and WSI/SSI can change its representation freely.  Library code
elsewhere that reads or writes these attributes directly re-hardwires
one protocol's internals into the shared pipeline: it breaks under SI
(the attribute does not exist), silently desynchronizes the validator
window, and defeats the strategy seam the refactor introduced.

RL012 fires on any attribute access (load, store, or delete) named
`_read_keys`, `_commit_window`, or `_validation_horizon` in a
`repro.*` module outside the repro.core.isolation package.  Code that
needs the read set must go through the protocol surface instead:
`txn.tracks_reads` / `protocol.note_reads(...)` / the yielded
`effects.ValidateCommit` request.  Tests and tools are out of scope
(their module names are not under `repro.`).
"""

    #: The only package allowed to touch protocol-private state.
    ISOLATION_PACKAGE = "repro.core.isolation"

    _PRIVATE_STATE = frozenset({
        "_read_keys", "_commit_window", "_validation_horizon",
    })

    def check(self, module: ModuleSummary, tree: ast.Module,
              index: ProjectIndex) -> Iterator[Tuple[ast.AST, str]]:
        name = module.module
        if not in_packages(name, ("repro",)):
            return
        if in_packages(name, (self.ISOLATION_PACKAGE,)):
            return
        for node in ast.walk(tree):
            if (isinstance(node, ast.Attribute)
                    and node.attr in self._PRIVATE_STATE):
                yield node, (
                    f"module {name} touches isolation-protocol state "
                    f"`{node.attr}` directly; only repro.core.isolation "
                    f"may -- go through the protocol surface "
                    f"(tracks_reads / note_reads / ValidateCommit)"
                )


class RL013TopologyEncapsulation(Rule):
    code = "RL013"
    title = "topology epoch/ownership state mutated outside repro.elastic"
    explain = """\
The versioned topology (repro.elastic.topology) owns all ownership
state: the epoch counter (`epoch`), its audit trail (`epoch_log`), and
the in-flight handoff registry (`_handoffs`).  Every mutation must go
through its methods (`begin_handoff` / `finish_handoff` /
`abort_handoff` / `fail_over`), because each one is a single atomic
epoch step -- the invariant that lets in-flight requests detect a
stale route with one `WrongOwner` check and lets migrations abort
cleanly.  Library code elsewhere that bumps the epoch or edits the
handoff table directly can create an ownerless instant, desynchronize
the partition map from the epoch log, or leave a handoff the leak
checker then reports.

RL013 fires on any *mutation* -- assignment, augmented assignment,
deletion, or a mutating method call (`append`, `pop`, `clear`, ...) --
of an attribute named `epoch`, `epoch_log`, or `_handoffs` in a
`repro.*` module outside the repro.elastic package.  Reading them is
fine (the obs collectors and benches do); changing them is not.
Tests and tools are out of scope (their module names are not under
`repro.`).
"""

    #: The only package allowed to mutate topology state.
    ELASTIC_PACKAGE = "repro.elastic"

    _OWNERSHIP_STATE = frozenset({"epoch", "epoch_log", "_handoffs"})
    _MUTATORS = frozenset({
        "append", "extend", "insert", "remove", "pop", "popitem", "clear",
        "update", "setdefault",
    })

    def check(self, module: ModuleSummary, tree: ast.Module,
              index: ProjectIndex) -> Iterator[Tuple[ast.AST, str]]:
        name = module.module
        if not in_packages(name, ("repro",)):
            return
        if in_packages(name, (self.ELASTIC_PACKAGE,)):
            return
        for node in ast.walk(tree):
            if (isinstance(node, ast.Attribute)
                    and node.attr in self._OWNERSHIP_STATE
                    and isinstance(node.ctx, (ast.Store, ast.Del))):
                yield node, (
                    f"module {name} mutates topology state `{node.attr}` "
                    f"directly; only repro.elastic may -- go through the "
                    f"Topology surface (begin/finish/abort_handoff, "
                    f"fail_over)"
                )
            elif (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in self._MUTATORS
                    and isinstance(node.func.value, ast.Attribute)
                    and node.func.value.attr in self._OWNERSHIP_STATE):
                yield node, (
                    f"module {name} mutates topology state "
                    f"`{node.func.value.attr}.{node.func.attr}(...)` "
                    f"directly; only repro.elastic may -- go through the "
                    f"Topology surface (begin/finish/abort_handoff, "
                    f"fail_over)"
                )


ALL_RULES: List[Rule] = [
    RL001DroppedEffect(),
    RL002GeneratorNotDelegated(),
    RL003WallClock(),
    RL004GlobalRandom(),
    RL005SetIteration(),
    RL006MissingSlots(),
    RL007MutableDefault(),
    RL008BypassedDispatch(),
    RL009SanitizerMutation(),
    RL010SanitizerObservability(),
    RL011UninternedDelay(),
    RL012IsolationEncapsulation(),
    RL013TopologyEncapsulation(),
]

RULES_BY_CODE = {rule.code: rule for rule in ALL_RULES}
