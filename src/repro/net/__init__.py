"""Network cost model: latency/bandwidth profiles for the simulated fabric."""

from repro.net.profiles import (
    ETHERNET_10G,
    INFINIBAND_QDR,
    NetworkProfile,
    profile_by_name,
)

__all__ = [
    "ETHERNET_10G",
    "INFINIBAND_QDR",
    "NetworkProfile",
    "profile_by_name",
]
