"""Latency and bandwidth profiles for the simulated network fabric.

The paper's evaluation (Section 6.6) contrasts a 40 Gbit QDR InfiniBand
fabric using RDMA against 10 Gbit Ethernet through the kernel TCP stack,
and finds more than a 6x throughput difference for Tell's synchronous
processing model.  Two effects drive that difference and both are modelled
here:

* *Wire/switch latency*: RDMA completes a small request in a few
  microseconds; kernel TCP needs tens of microseconds per hop.
* *CPU cost per message*: RDMA bypasses the OS, while the TCP stack burns
  measurable CPU on both endpoints for every message, which steals cycles
  from query processing and storage service.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import InvalidState


@dataclass(frozen=True)
class NetworkProfile:
    """Cost model of one network technology.

    Attributes:
        name: human-readable identifier used in experiment configs.
        one_way_us: fixed one-way latency for a small message (wire,
            switch, NIC), in microseconds.
        bytes_per_us: usable bandwidth, bytes per microsecond
            (1000 bytes/us == 8 Gbit/s).
        client_cpu_per_msg_us: CPU charged to the sending node's core pool
            per message (OS stack cost; ~0 for RDMA).
        server_cpu_per_msg_us: CPU added to the serving node's handling
            time per message.
    """

    name: str
    one_way_us: float
    bytes_per_us: float
    client_cpu_per_msg_us: float
    server_cpu_per_msg_us: float

    def __post_init__(self) -> None:
        # Message sizes cluster into a few dozen size classes (fixed-size
        # CM messages, per-kind response estimates), so per-size memoization
        # removes the arithmetic from the per-message hot path.  The cache
        # is an implementation detail, not a dataclass field: it must not
        # participate in __eq__/__repr__, and the frozen dataclass requires
        # object.__setattr__ to install it.
        object.__setattr__(self, "_one_way_cache", {})

    def one_way(self, size_bytes: int = 64) -> float:
        """One-way message latency including serialization delay."""
        cache = self._one_way_cache
        cached = cache.get(size_bytes)
        if cached is None:
            cached = self.one_way_us + size_bytes / self.bytes_per_us
            if len(cache) < 4096:
                cache[size_bytes] = cached
        return cached

    def round_trip(self, request_bytes: int = 64, response_bytes: int = 64) -> float:
        """Request/response wire time, excluding server processing."""
        return self.one_way(request_bytes) + self.one_way(response_bytes)


#: 40 Gbit QDR InfiniBand with RDMA verbs (the paper's primary fabric).
#: RAMCloud-style RPC over Infiniband completes small reads in ~5 us
#: round trip; effective point-to-point bandwidth ~3.2 GB/s.
INFINIBAND_QDR = NetworkProfile(
    name="infiniband",
    one_way_us=2.2,
    bytes_per_us=3200.0,
    client_cpu_per_msg_us=0.4,
    server_cpu_per_msg_us=0.0,
)

#: 10 Gbit Ethernet through the kernel TCP stack.  Small-message RTTs of
#: 50-80 us and a per-message CPU tax on both endpoints.
ETHERNET_10G = NetworkProfile(
    name="ethernet-10g",
    one_way_us=28.0,
    bytes_per_us=1100.0,
    client_cpu_per_msg_us=8.0,
    server_cpu_per_msg_us=6.0,
)

_PROFILES = {
    INFINIBAND_QDR.name: INFINIBAND_QDR,
    ETHERNET_10G.name: ETHERNET_10G,
    # aliases used in configs and docs
    "ib": INFINIBAND_QDR,
    "10gbe": ETHERNET_10G,
    "ethernet": ETHERNET_10G,
}


def profile_by_name(name: str) -> NetworkProfile:
    """Look up a profile; raises :class:`InvalidState` for unknown names."""
    try:
        return _PROFILES[name.lower()]
    except KeyError:
        known = ", ".join(sorted(set(p.name for p in _PROFILES.values())))
        raise InvalidState(f"unknown network profile {name!r} (known: {known})")
