"""``repro.obs`` -- metrics registry + span tracing for the whole stack.

The observability layer is **off by default** and near-zero-cost when
off: instrumented components carry an ``obs`` attribute that is ``None``
unless a deployment opts in, and every instrumentation site is a single
``is None`` check.  Statistics the codebase already tracks
unconditionally (``PnStats``, ``BufferStats``, ``FabricStats``, ...) are
harvested by collector callbacks at snapshot time instead of being
mirrored on the hot path.

Enable it with ``TellConfig(observability=True)``,
``repro.connect(observability=True)``, ``python -m repro.bench --obs``,
or the ``REPRO_OBS=1`` environment variable.  See
``docs/observability.md``.
"""

from __future__ import annotations

import os
from typing import Callable, List, Optional, Tuple

from repro.obs.exporters import (OBS_SCHEMA, PHASE_TABLE_HEADERS,
                                 phase_table_rows, to_json, to_prometheus,
                                 validate_snapshot)
from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.tracing import PHASES, PhaseBreakdown, Span, Tracer

#: Environment flag mirroring ``REPRO_SANITIZE``: any non-empty value
#: other than "0" enables observability on every deployment.
ENV_FLAG = "REPRO_OBS"

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "Observability", "PhaseBreakdown", "PHASES", "Span", "Tracer",
    "OBS_SCHEMA", "PHASE_TABLE_HEADERS", "ENV_FLAG", "obs_enabled",
    "install_sink",
    "clear_sink", "emit", "phase_table_rows", "to_json",
    "to_prometheus", "validate_snapshot",
]


def obs_enabled() -> bool:
    """True when ``REPRO_OBS`` asks for observability everywhere."""
    value = os.environ.get(ENV_FLAG, "")
    return bool(value) and value != "0"


class _StepClock:
    """Deterministic fallback clock for direct (untimed) deployments.

    Each read advances by one "tick", so span durations in direct mode
    count instrumentation steps rather than simulated microseconds --
    ordering-faithful and reproducible, if not physically meaningful.
    """

    __slots__ = ("_now",)

    def __init__(self) -> None:
        self._now = 0.0

    def __call__(self) -> float:
        self._now += 1.0
        return self._now


class Observability:
    """The per-deployment hub: one registry + one tracer + one clock.

    ``clock`` should be the deployment's time source (the simulator
    clock in simulated runs).  Without one, a deterministic step
    counter is used so direct-mode traces still order correctly.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None,
                 max_roots: int = 1000) -> None:
        self.clock_kind = "sim" if clock is not None else "steps"
        self.clock: Callable[[], float] = clock or _StepClock()
        self.registry = MetricsRegistry()
        self.tracer = Tracer(self.clock, max_roots=max_roots)

    def snapshot(self) -> dict:
        """Collect and export everything as a ``repro-obs/1`` document."""
        metrics = self.registry.snapshot()
        return {
            "schema": OBS_SCHEMA,
            "meta": {"clock": self.clock_kind},
            "counters": metrics["counters"],
            "gauges": metrics["gauges"],
            "histograms": metrics["histograms"],
            "phases": self.tracer.phases.to_dict(),
            "spans": self.tracer.to_dict(),
        }


# -- snapshot sink -----------------------------------------------------------
#
# The bench CLI installs a sink before running experiments; deployments
# emit ``(label, snapshot)`` pairs into it when their run completes, and
# the CLI writes them next to the printed results.  Programmatic users
# read ``TxnMetrics.obs_snapshot`` instead.

_SINK: Optional[List[Tuple[str, dict]]] = None


def install_sink() -> List[Tuple[str, dict]]:
    """Install (or return the existing) global snapshot sink."""
    global _SINK
    if _SINK is None:
        _SINK = []
    return _SINK


def clear_sink() -> None:
    global _SINK
    _SINK = None


def emit(label: str, snapshot: dict) -> None:
    """Hand a finished deployment's snapshot to the sink, if installed."""
    if _SINK is not None:
        _SINK.append((label, snapshot))
