"""``repro-obs`` -- render, validate, and produce metrics snapshots.

Subcommands::

    repro-obs run [--profile smoke|quick|full] [--out FILE]
        Run one observability-enabled TPC-C bench and render the live
        per-phase latency table (the paper's Table-4 shape).

    repro-obs render SNAPSHOT.json [--prometheus]
        Render a snapshot file previously written by ``python -m
        repro.bench --obs`` (or ``repro-obs run --out``).

    repro-obs validate SNAPSHOT.json
        Exit 0 when the file is a valid ``repro-obs/1`` document.

    repro-obs smoke
        CI gate: tiny bench with metrics enabled; asserts the snapshot
        schema validates and the phase table is populated.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.obs.exporters import (PHASE_TABLE_HEADERS, phase_table_rows,
                                 to_json, to_prometheus, validate_snapshot)


def _load(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _print_phase_table(snapshot: dict) -> None:
    from repro.bench.tables import print_table

    rows = phase_table_rows(snapshot)
    if rows:
        print_table(PHASE_TABLE_HEADERS, rows,
                    title="Per-phase latency breakdown (Table-4 shape)")
    else:
        print("(no finished transaction spans in this snapshot)")


def _print_highlights(snapshot: dict) -> None:
    """A compact live view over the most informative gauges."""
    gauges = snapshot.get("gauges", {})
    spans = snapshot.get("spans", {})
    picks = []
    for series, value in gauges.items():
        if series.startswith(("repro_pn_txns", "repro_buffer_hit_ratio",
                              "repro_cm_activity", "repro_fabric_totals",
                              "repro_replication_copies")):
            picks.append((series, value))
    if picks:
        from repro.bench.tables import print_table

        print_table(["Series", "Value"], picks, title="Key gauges")
    print(f"spans: {spans.get('finished_roots', 0)} finished, "
          f"{spans.get('kept', 0)} kept, {spans.get('dropped', 0)} dropped")


def _cmd_render(args: argparse.Namespace) -> int:
    snapshot = _load(args.snapshot)
    problems = validate_snapshot(snapshot)
    if problems:
        for problem in problems:
            print(f"invalid snapshot: {problem}", file=sys.stderr)
        return 2
    if args.prometheus:
        sys.stdout.write(to_prometheus(snapshot))
        return 0
    _print_phase_table(snapshot)
    _print_highlights(snapshot)
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    problems = validate_snapshot(_load(args.snapshot))
    for problem in problems:
        print(f"invalid snapshot: {problem}", file=sys.stderr)
    if not problems:
        print(f"{args.snapshot}: valid repro-obs/1 snapshot")
    return 1 if problems else 0


def _run_bench(profile: Optional[str]) -> dict:
    import os

    from repro.bench import experiments

    if profile:
        os.environ["REPRO_BENCH_PROFILE"] = profile
    return experiments.run_phase_breakdown()


def _cmd_run(args: argparse.Namespace) -> int:
    snapshot = _run_bench(args.profile)
    _print_phase_table(snapshot)
    _print_highlights(snapshot)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(to_json(snapshot))
        print(f"snapshot written to {args.out}")
    return 0


def _cmd_smoke(args: argparse.Namespace) -> int:
    snapshot = _run_bench(args.profile or "smoke")
    problems = validate_snapshot(snapshot)
    for problem in problems:
        print(f"SMOKE FAIL: {problem}", file=sys.stderr)
    rows = snapshot["phases"]["rows"]
    if not rows:
        print("SMOKE FAIL: empty phase breakdown", file=sys.stderr)
        return 1
    missing = [r["txn"] for r in rows
               if "snapshot" not in r["phases"] or "commit" not in r["phases"]]
    if missing:
        print(f"SMOKE FAIL: phases missing for {missing}", file=sys.stderr)
        return 1
    if problems:
        return 1
    _print_phase_table(snapshot)
    print("obs smoke: snapshot schema valid, "
          f"{len(rows)} transaction types profiled")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-obs",
        description="Render and validate repro.obs metrics snapshots.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="bench + live table")
    run_parser.add_argument("--profile", choices=("smoke", "quick", "full"))
    run_parser.add_argument("--out", metavar="FILE",
                            help="also write the snapshot JSON here")
    run_parser.set_defaults(func=_cmd_run)

    render_parser = sub.add_parser("render", help="render a snapshot file")
    render_parser.add_argument("snapshot")
    render_parser.add_argument("--prometheus", action="store_true",
                               help="emit Prometheus text format instead")
    render_parser.set_defaults(func=_cmd_render)

    validate_parser = sub.add_parser("validate", help="schema check")
    validate_parser.add_argument("snapshot")
    validate_parser.set_defaults(func=_cmd_validate)

    smoke_parser = sub.add_parser("smoke", help="CI smoke gate")
    smoke_parser.add_argument("--profile", choices=("smoke", "quick", "full"))
    smoke_parser.set_defaults(func=_cmd_smoke)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
