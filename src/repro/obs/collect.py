"""Collector wiring: harvest the stack's always-on statistics.

These functions register :class:`MetricsRegistry` collector callbacks
that read live component state (processing-node stats, buffer stats,
commit managers, storage nodes, B+trees, GC, fabric) at snapshot time.
Everything is duck-typed on the stats attributes so this module imports
no protocol code and works for both embedded (:class:`repro.api.Database`)
and simulated (:class:`repro.bench.simcluster.SimulatedTell`)
deployments.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Tuple

from repro.obs.registry import MetricsRegistry


def watch_processing_node(registry: MetricsRegistry, pn: object) -> None:
    """PN commit/abort counters plus its buffer strategy's hit rates."""

    def collect(reg: MetricsRegistry) -> None:
        label = str(pn.pn_id)
        txns = reg.gauge("repro_pn_txns",
                         "transactions by outcome per processing node")
        stats = pn.stats
        txns.set(stats.begun, pn=label, outcome="begun")
        txns.set(stats.committed, pn=label, outcome="committed")
        txns.set(stats.aborted, pn=label, outcome="aborted")
        buffers = pn.buffers
        bstats = buffers.stats
        ops = reg.gauge("repro_buffer_ops",
                        "buffer activity per processing node")
        strategy = buffers.name
        for field in ("lookups", "hits", "vset_checks", "vset_valid",
                      "fetches", "puts"):
            ops.set(getattr(bstats, field), pn=label, strategy=strategy,
                    op=field)
        reg.gauge("repro_buffer_hit_ratio",
                  "per-strategy buffer hit ratio").set(
            bstats.hit_ratio, pn=label, strategy=strategy)

    registry.register_collector(collect)


def watch_commit_manager(registry: MetricsRegistry, cm: object) -> None:
    """tid/snapshot RPCs served, range refills, sync rounds, active txns."""

    def collect(reg: MetricsRegistry) -> None:
        label = str(cm.cm_id)
        gauge = reg.gauge("repro_cm_activity", "commit manager activity")
        gauge.set(cm.starts_served, cm=label, what="starts_served")
        gauge.set(cm.range_refills, cm=label, what="range_refills")
        gauge.set(getattr(cm, "sync_rounds", 0), cm=label, what="sync_rounds")
        gauge.set(len(cm.active_transactions()), cm=label, what="active")
        gauge.set(cm.completed_view().base, cm=label, what="base_version")
        gauge.set(cm.lowest_active_version(), cm=label, what="lav")
        # Isolation protocol surface: mode plus the WSI/SSI validation
        # counters (both stay 0 under plain SI).
        gauge.set(getattr(cm, "validations", 0), cm=label,
                  what="validations")
        gauge.set(getattr(cm, "validation_aborts", 0), cm=label,
                  what="validation_aborts")
        reg.gauge("repro_isolation_mode",
                  "1 for the commit manager's configured isolation "
                  "protocol").set(
            1.0, cm=label, mode=getattr(cm, "isolation_name", "si"))

    registry.register_collector(collect)


def watch_storage_cluster(registry: MetricsRegistry, cluster: object) -> None:
    """Per-node op counts and bytes, plus cluster replication fan-out."""

    def collect(reg: MetricsRegistry) -> None:
        ops = reg.gauge("repro_sn_ops", "storage operations per node")
        usage = reg.gauge("repro_sn_bytes_used", "bytes stored per node")
        alive = reg.gauge("repro_sn_alive", "1 when the node is up")
        for node in cluster.nodes.values():
            label = str(node.node_id)
            ops.set(node.ops_read, node=label, kind="read")
            ops.set(node.ops_write, node=label, kind="write")
            ops.set(node.ops_scan, node=label, kind="scan")
            usage.set(node.bytes_used, node=label)
            alive.set(1.0 if node.alive else 0.0, node=label)
        reg.gauge("repro_replication_copies",
                  "replica cell copies shipped by the cluster").set(
            cluster.replication_copies)

    registry.register_collector(collect)


def watch_index_manager(registry: MetricsRegistry, indexes: object,
                        pn_id: int) -> None:
    """B+tree cache hits, node/leaf fetches and SMO retries per index."""

    def collect(reg: MetricsRegistry) -> None:
        label = str(pn_id)
        gauge = reg.gauge("repro_index_activity",
                          "B+tree traversal and SMO activity")
        for index_id in sorted(indexes._trees):
            tree = indexes._trees[index_id]
            index = str(index_id)
            stats = tree.stats
            gauge.set(stats.node_fetches, pn=label, index=index,
                      what="node_fetches")
            gauge.set(stats.leaf_fetches, pn=label, index=index,
                      what="leaf_fetches")
            gauge.set(stats.smo_splits, pn=label, index=index,
                      what="smo_splits")
            gauge.set(stats.smo_retries, pn=label, index=index,
                      what="smo_retries")
            gauge.set(tree.cache.hits, pn=label, index=index,
                      what="cache_hits")
            gauge.set(tree.cache.misses, pn=label, index=index,
                      what="cache_misses")
            gauge.set(stats.entries_pruned, pn=label, index=index,
                      what="entries_pruned")

    registry.register_collector(collect)


def watch_gc(registry: MetricsRegistry, stats: object,
             label: str = "cluster") -> None:
    """Versions / records pruned by the garbage collector."""

    def collect(reg: MetricsRegistry) -> None:
        gauge = reg.gauge("repro_gc_activity", "garbage collection totals")
        gauge.set(stats.passes, scope=label, what="passes")
        gauge.set(stats.records_seen, scope=label, what="records_seen")
        gauge.set(stats.versions_removed, scope=label,
                  what="versions_removed")
        gauge.set(stats.records_removed, scope=label, what="records_removed")

    registry.register_collector(collect)


def watch_fabric(registry: MetricsRegistry, stats: object) -> None:
    """Simulated network totals (messages, store ops, bytes)."""

    def collect(reg: MetricsRegistry) -> None:
        gauge = reg.gauge("repro_fabric_totals", "simulated network totals")
        gauge.set(stats.messages, what="messages")
        gauge.set(stats.store_ops, what="store_ops")
        gauge.set(stats.bytes_sent, what="bytes_sent")

    registry.register_collector(collect)


def watch_topology(registry: MetricsRegistry, topology: object) -> None:
    """Versioned-topology surface: epoch, membership, live migrations."""

    def collect(reg: MetricsRegistry) -> None:
        gauge = reg.gauge("repro_topology", "versioned topology state")
        gauge.set(topology.epoch, what="epoch")
        gauge.set(len(topology.node_ids()), what="nodes")
        gauge.set(len(topology.migrations_in_flight()),
                  what="migrations_in_flight")
        gauge.set(1.0 if topology.is_balanced() else 0.0, what="balanced")
        counts = topology.master_counts()
        masters = reg.gauge("repro_topology_masters",
                            "partitions mastered per storage node")
        for node_id in sorted(counts):
            masters.set(counts[node_id], node=str(node_id))

    registry.register_collector(collect)


def watch_autoscaler(registry: MetricsRegistry, autoscaler: object) -> None:
    """Autoscaler activity: decisions taken and the latest signals."""

    def collect(reg: MetricsRegistry) -> None:
        gauge = reg.gauge("repro_autoscaler", "autoscaler decisions taken")
        actions = {"sn-add": 0, "sn-remove": 0, "pn-grow": 0, "pn-shrink": 0}
        for decision in autoscaler.decisions:
            if decision.action in actions:
                actions[decision.action] += 1
        for action in sorted(actions):
            gauge.set(actions[action], action=action)
        gauge.set(len(autoscaler.decisions), action="ticks")
        if autoscaler.decisions:
            signals = autoscaler.decisions[-1].signals
            latest = reg.gauge("repro_autoscaler_signals",
                               "signals at the last autoscaler tick")
            for name in sorted(signals):
                latest.set(signals[name], signal=name)

    registry.register_collector(collect)
