"""Snapshot exporters: JSON schema ``repro-obs/1`` and Prometheus text.

The JSON snapshot is the canonical artifact -- the bench harness writes
one next to every figure/table result, the CLI renders it, and CI
validates it.  Determinism matters more than prettiness: all keys are
sorted and all timestamps come from the simulated clock, so two
same-seed runs serialize byte-identically.
"""

from __future__ import annotations

import json
from typing import List

OBS_SCHEMA = "repro-obs/1"


def validate_snapshot(snapshot: dict) -> List[str]:
    """Return a list of schema problems (empty == valid)."""
    problems: List[str] = []
    if not isinstance(snapshot, dict):
        return ["snapshot is not an object"]
    if snapshot.get("schema") != OBS_SCHEMA:
        problems.append(f"schema is {snapshot.get('schema')!r}, "
                        f"expected {OBS_SCHEMA!r}")
    for section in ("counters", "gauges"):
        value = snapshot.get(section)
        if not isinstance(value, dict):
            problems.append(f"missing or non-object section {section!r}")
            continue
        for name, num in value.items():
            if not isinstance(num, (int, float)):
                problems.append(f"{section}[{name!r}] is not a number")
    histograms = snapshot.get("histograms")
    if not isinstance(histograms, dict):
        problems.append("missing or non-object section 'histograms'")
    else:
        for name, cell in histograms.items():
            if not isinstance(cell, dict) or not {
                    "count", "sum", "max", "buckets"} <= set(cell):
                problems.append(f"histograms[{name!r}] malformed")
    phases = snapshot.get("phases")
    if not isinstance(phases, dict) or "rows" not in phases:
        problems.append("missing or malformed section 'phases'")
    else:
        for row in phases["rows"]:
            if not isinstance(row, dict) or not {
                    "txn", "count", "mean_us", "phases"} <= set(row):
                problems.append("phase row malformed")
                break
    spans = snapshot.get("spans")
    if not isinstance(spans, dict) or "finished_roots" not in spans:
        problems.append("missing or malformed section 'spans'")
    meta = snapshot.get("meta")
    if not isinstance(meta, dict) or "clock" not in meta:
        problems.append("missing or malformed section 'meta'")
    return problems


def to_json(snapshot: dict, indent: int = 2) -> str:
    return json.dumps(snapshot, indent=indent, sort_keys=True)


def _prom_name(series: str) -> str:
    """``name{a=b}`` -> Prometheus ``name{a="b"}``."""
    if "{" not in series:
        return series
    name, _, rest = series.partition("{")
    labels = rest.rstrip("}")
    quoted = ",".join(
        f'{k}="{v}"' for k, v in
        (pair.split("=", 1) for pair in labels.split(",")))
    return f"{name}{{{quoted}}}"


def to_prometheus(snapshot: dict) -> str:
    """Render the snapshot in the Prometheus text exposition format."""
    lines: List[str] = []
    typed: set = set()

    def type_line(series: str, kind: str) -> None:
        name = series.partition("{")[0]
        if name not in typed:
            typed.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for series, value in snapshot.get("counters", {}).items():
        type_line(series, "counter")
        lines.append(f"{_prom_name(series)} {value}")
    for series, value in snapshot.get("gauges", {}).items():
        type_line(series, "gauge")
        lines.append(f"{_prom_name(series)} {value}")
    for series, cell in snapshot.get("histograms", {}).items():
        type_line(series, "histogram")
        name, _, rest = series.partition("{")
        labels = rest.rstrip("}") if rest else ""
        cumulative = 0
        for bucket in sorted(cell["buckets"], key=int):
            cumulative += cell["buckets"][bucket]
            upper = float(2 ** int(bucket))
            merged = f"{labels},le={upper}" if labels else f"le={upper}"
            lines.append(f"{_prom_name(f'{name}_bucket{{{merged}}}')} "
                         f"{cumulative}")
        merged = f"{labels},le=+Inf" if labels else "le=+Inf"
        lines.append(f"{_prom_name(f'{name}_bucket{{{merged}}}')} "
                     f"{cell['count']}")
        suffix = f"{{{labels}}}" if labels else ""
        lines.append(f"{_prom_name(f'{name}_sum{suffix}')} {cell['sum']}")
        lines.append(f"{_prom_name(f'{name}_count{suffix}')} "
                     f"{cell['count']}")
    return "\n".join(lines) + "\n"


def phase_table_rows(snapshot: dict) -> List[list]:
    """Tabular per-phase latency breakdown (the Table-4 shape).

    Columns: txn, count, mean total (ms), then mean ms in each of
    snapshot / read / validate / write / commit / other.  The validate
    column is the WSI/SSI commit-time validation round trip; it renders
    "-" under plain SI, which never opens that phase.
    """
    rows = []
    for row in snapshot.get("phases", {}).get("rows", []):
        phases = row["phases"]

        def mean_ms(phase: str) -> str:
            cell = phases.get(phase)
            if cell is None:
                return "-"
            # Phase means are per-transaction: total phase time spread
            # over every transaction of this type, not per occurrence.
            return f"{cell['total_us'] / row['count'] / 1000.0:.3f}"

        rows.append([
            row["txn"], row["count"], f"{row['mean_us'] / 1000.0:.3f}",
            mean_ms("snapshot"), mean_ms("read"), mean_ms("validate"),
            mean_ms("write"), mean_ms("commit"), mean_ms("other"),
        ])
    return rows


PHASE_TABLE_HEADERS = ["Txn", "Count", "Total (ms)", "Snapshot (ms)",
                       "Read (ms)", "Validate (ms)", "Write (ms)",
                       "Commit (ms)", "Other (ms)"]
