"""Prometheus-style metrics primitives: counters, gauges, log2 histograms.

Everything here is stdlib-only and deterministic: metric values are plain
numbers keyed by insertion-ordered label tuples, and snapshots sort every
key so two identical runs serialize to byte-identical JSON.

The registry supports *collector callbacks*: instead of making hot protocol
code call ``counter.inc()`` for statistics the codebase already tracks
(``PnStats``, ``BufferStats``, ``FabricStats``, ...), a collector harvests
those always-on structures once, at snapshot time.  The hot path pays
nothing; the snapshot pays a handful of attribute reads.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Tuple

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, str]) -> LabelKey:
    if not labels:
        return ()
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing sum, optionally split by labels."""

    __slots__ = ("name", "help", "_series")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._series: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise ValueError(
                f"counter {self.name!r} cannot decrease (amount={amount})")
        key = _label_key(labels)
        self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        return self._series.get(_label_key(labels), 0.0)

    def series(self) -> Dict[LabelKey, float]:
        return dict(self._series)


class Gauge:
    """A point-in-time value that can go up or down."""

    __slots__ = ("name", "help", "_series")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._series: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels: str) -> None:
        self._series[_label_key(labels)] = float(value)

    def value(self, **labels: str) -> float:
        return self._series.get(_label_key(labels), 0.0)

    def series(self) -> Dict[LabelKey, float]:
        return dict(self._series)


class Histogram:
    """Power-of-two bucket histogram (same shape as ``TraceInterceptor``).

    ``observe(v)`` drops ``v`` into bucket ``ceil(log2(v))`` (bucket 0
    holds everything <= 1) and tracks count/sum/max so means survive the
    bucketing.  Buckets are cheap, unbounded in range, and merge trivially.
    """

    __slots__ = ("name", "help", "_series")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        # label key -> [count, sum, max, {bucket: count}]
        self._series: Dict[LabelKey, list] = {}

    def observe(self, value: float, **labels: str) -> None:
        key = _label_key(labels)
        cell = self._series.get(key)
        if cell is None:
            cell = [0, 0.0, 0.0, {}]
            self._series[key] = cell
        cell[0] += 1
        cell[1] += value
        if value > cell[2]:
            cell[2] = value
        bucket = 0
        scaled = value
        while scaled > 1.0:
            scaled /= 2.0
            bucket += 1
        buckets = cell[3]
        buckets[bucket] = buckets.get(bucket, 0) + 1

    def count(self, **labels: str) -> int:
        cell = self._series.get(_label_key(labels))
        return cell[0] if cell else 0

    def sum(self, **labels: str) -> float:
        cell = self._series.get(_label_key(labels))
        return cell[1] if cell else 0.0

    def mean(self, **labels: str) -> float:
        cell = self._series.get(_label_key(labels))
        if not cell or not cell[0]:
            return 0.0
        return cell[1] / cell[0]

    def series(self) -> Dict[LabelKey, list]:
        return {k: [v[0], v[1], v[2], dict(v[3])]
                for k, v in self._series.items()}


class MetricsRegistry:
    """Named metrics plus collector callbacks run at snapshot time."""

    __slots__ = ("_metrics", "_collectors")

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}
        self._collectors: List[Callable[["MetricsRegistry"], None]] = []

    def _get_or_create(self, cls: type, name: str, help: str) -> object:
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, help)
            self._metrics[name] = metric
            return metric
        if not isinstance(metric, cls):
            raise ValueError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {cls.__name__}")
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)  # type: ignore[return-value]

    def histogram(self, name: str, help: str = "") -> Histogram:
        return self._get_or_create(Histogram, name, help)  # type: ignore[return-value]

    def register_collector(
            self, collector: Callable[["MetricsRegistry"], None]) -> None:
        """Register a callback invoked by :meth:`collect`.

        Collectors pull numbers out of live components (stats structs,
        caches, commit managers) and write them into gauges/counters.
        They run only when a snapshot is taken, never on the hot path.
        """
        self._collectors.append(collector)

    def collect(self) -> None:
        for collector in self._collectors:
            collector(self)

    def metrics(self) -> Iterable[object]:
        return list(self._metrics.values())

    def get(self, name: str) -> Optional[object]:
        return self._metrics.get(name)

    def snapshot(self, run_collectors: bool = True) -> Dict[str, dict]:
        """Deterministic nested-dict dump: ``{counters: {...}, ...}``.

        Label keys serialize as ``name{k=v,k2=v2}`` strings sorted
        lexicographically, so identical runs produce identical JSON.
        """
        if run_collectors:
            self.collect()
        counters: Dict[str, float] = {}
        gauges: Dict[str, float] = {}
        histograms: Dict[str, dict] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                for key, value in sorted(metric.series().items()):
                    counters[_render_series(name, key)] = value
            elif isinstance(metric, Gauge):
                for key, value in sorted(metric.series().items()):
                    gauges[_render_series(name, key)] = value
            elif isinstance(metric, Histogram):
                for key, cell in sorted(metric.series().items()):
                    histograms[_render_series(name, key)] = {
                        "count": cell[0],
                        "sum": cell[1],
                        "max": cell[2],
                        "buckets": {str(b): c
                                    for b, c in sorted(cell[3].items())},
                    }
        return {"counters": counters, "gauges": gauges,
                "histograms": histograms}


def _render_series(name: str, key: LabelKey) -> str:
    if not key:
        return name
    labels = ",".join(f"{k}={v}" for k, v in key)
    return f"{name}{{{labels}}}"
