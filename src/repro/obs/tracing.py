"""Span-based tracing for the transaction lifecycle.

A *root span* covers one transaction from ``begin`` to commit/abort.
Child spans mark the phases the paper's Table 4 decomposes response time
into -- ``snapshot`` (tid + snapshot acquisition from the commit manager),
``read`` (record fetches through the buffer), ``validate`` (the WSI/SSI
commit-time read validation round trip, between the commit precheck and
the write phase; always zero under plain SI), ``write`` (batch apply,
index maintenance, write-through), ``commit`` (log append and the commit
protocol tail), plus ``abort`` for rollback work.  Whatever is left of
the root duration is attributed to ``other`` (application compute).

Timestamps come from an injected clock -- the simulator clock in
simulated deployments -- so traces are deterministic under fixed seeds.
There is no implicit "current span" stack: simulated processing nodes
interleave coroutines at every yield point, so ambient context would
misattribute work.  Spans travel explicitly on the transaction object.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

#: Phase names recognised by the Table-4 breakdown, in presentation order.
PHASES = ("snapshot", "read", "validate", "write", "commit", "abort")


class Span:
    """One timed segment of work.  Children must be finished (or are
    force-closed) by the time the root finishes."""

    __slots__ = ("tracer", "name", "span_id", "parent_id", "start_us",
                 "end_us", "attrs", "children")

    def __init__(self, tracer: "Tracer", name: str, span_id: int,
                 parent_id: Optional[int], start_us: float) -> None:
        self.tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_us = start_us
        self.end_us: Optional[float] = None
        self.attrs: Dict[str, object] = {}
        self.children: List[Span] = []

    def child(self, name: str, start_us: Optional[float] = None) -> "Span":
        """Open a child span (caller finishes it, or the root sweep does)."""
        tracer = self.tracer
        span = Span(tracer, name, tracer._next_id(), self.span_id,
                    tracer.clock() if start_us is None else start_us)
        self.children.append(span)
        return span

    def finish(self, end_us: Optional[float] = None) -> None:
        if self.end_us is not None:
            return
        self.end_us = self.tracer.clock() if end_us is None else end_us
        if self.parent_id is None:
            self.tracer._root_finished(self)

    @property
    def duration_us(self) -> float:
        if self.end_us is None:
            return 0.0
        return self.end_us - self.start_us

    def to_dict(self) -> dict:
        out: dict = {
            "name": self.name,
            "span_id": self.span_id,
            "start_us": self.start_us,
            "end_us": self.end_us,
            "duration_us": self.duration_us,
        }
        if self.attrs:
            out["attrs"] = {k: self.attrs[k] for k in sorted(self.attrs)}
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = f"{self.duration_us:.1f}us" if self.end_us is not None \
            else "open"
        return f"Span({self.name!r}, id={self.span_id}, {state})"


class PhaseBreakdown:
    """Aggregates finished root spans into the Table-4 shape.

    Rows are keyed by transaction name; columns are total latency plus
    per-phase latency (count / total / max microseconds per phase).
    """

    __slots__ = ("_rows", "_outcomes")

    def __init__(self) -> None:
        # txn_name -> {"count": n, "total_us": x,
        #              "phases": {phase: [count, total_us, max_us]}}
        self._rows: Dict[str, dict] = {}
        self._outcomes: Dict[str, Dict[str, int]] = {}

    def record(self, root: Span) -> None:
        name = str(root.attrs.get("txn", root.name))
        outcome = str(root.attrs.get("outcome", "unknown"))
        row = self._rows.get(name)
        if row is None:
            row = {"count": 0, "total_us": 0.0, "phases": {}}
            self._rows[name] = row
        total = root.duration_us
        row["count"] += 1
        row["total_us"] += total
        phases = row["phases"]
        accounted = 0.0
        for child in root.children:
            duration = child.duration_us
            accounted += duration
            cell = phases.get(child.name)
            if cell is None:
                phases[child.name] = [1, duration, duration]
            else:
                cell[0] += 1
                cell[1] += duration
                if duration > cell[2]:
                    cell[2] = duration
        other = total - accounted
        if other > 0.0:
            cell = phases.get("other")
            if cell is None:
                phases["other"] = [1, other, other]
            else:
                cell[0] += 1
                cell[1] += other
                if other > cell[2]:
                    cell[2] = other
        per_txn = self._outcomes.setdefault(name, {})
        per_txn[outcome] = per_txn.get(outcome, 0) + 1

    def rows(self) -> List[dict]:
        """One dict per transaction name, deterministic order."""
        out = []
        for name in sorted(self._rows):
            row = self._rows[name]
            count = row["count"]
            phases = {}
            order = [p for p in (*PHASES, "other") if p in row["phases"]]
            order += [p for p in sorted(row["phases"]) if p not in order]
            for phase in order:
                p_count, p_total, p_max = row["phases"][phase]
                phases[phase] = {
                    "count": p_count,
                    "total_us": p_total,
                    "mean_us": p_total / p_count if p_count else 0.0,
                    "max_us": p_max,
                }
            out.append({
                "txn": name,
                "count": count,
                "total_us": row["total_us"],
                "mean_us": row["total_us"] / count if count else 0.0,
                "phases": phases,
                "outcomes": dict(sorted(self._outcomes[name].items())),
            })
        return out

    def to_dict(self) -> dict:
        return {"rows": self.rows()}


class Tracer:
    """Creates spans, stamps them with the injected clock, aggregates
    finished roots into a :class:`PhaseBreakdown`, and retains up to
    ``max_roots`` raw root trees for export."""

    __slots__ = ("clock", "max_roots", "phases", "roots", "dropped",
                 "finished_roots", "abandoned", "_id")

    def __init__(self, clock: Callable[[], float],
                 max_roots: int = 1000) -> None:
        self.clock = clock
        self.max_roots = max_roots
        self.phases = PhaseBreakdown()
        self.roots: List[Span] = []
        self.dropped = 0
        self.finished_roots = 0
        self.abandoned = 0
        self._id = 0

    def _next_id(self) -> int:
        self._id += 1
        return self._id

    def start_span(self, name: str,
                   start_us: Optional[float] = None) -> Span:
        return Span(self, name, self._next_id(), None,
                    self.clock() if start_us is None else start_us)

    def _root_finished(self, root: Span) -> None:
        # Close any phase child left open by an abort path so its time
        # is still attributed (e.g. a conflict detected mid-write).
        end = root.end_us if root.end_us is not None else root.start_us
        for child in root.children:
            if child.end_us is None:
                child.end_us = end
        self.finished_roots += 1
        self.phases.record(root)
        if len(self.roots) < self.max_roots:
            self.roots.append(root)
        else:
            self.dropped += 1

    def to_dict(self) -> dict:
        return {
            "finished_roots": self.finished_roots,
            "kept": len(self.roots),
            "dropped": self.dropped,
            "abandoned": self.abandoned,
            "roots": [r.to_dict() for r in self.roots],
        }
