"""reprosan: dynamic sanitizers for the snapshot-isolation protocol.

Three interceptors validate a running deployment (simulated or direct)
against an independently maintained shadow history:

* :class:`~repro.san.si.SISanitizer` -- the SI axioms: reads return the
  newest snapshot-visible version, first-committer-wins on write-write
  overlap, no lost updates; plus an SSI-style dependency graph that
  *reports* write-skew cycles (SI permits them).
* :class:`~repro.san.gcsan.GCSanitizer` -- eager/lazy GC never prunes a
  version above the true lowest active version or out from under a live
  snapshot.
* :class:`~repro.san.chain.VersionChainSanitizer` -- version chains stay
  sorted, deduplicated, and structurally valid.

:mod:`repro.san.explorer` perturbs the sim kernel's schedule (random /
PCT / replay policies) to hunt interleaving-dependent violations;
:mod:`repro.san.scenarios` holds the conflict scenarios it drives.

Everything is off by default: the ``REPRO_SANITIZE`` environment
variable (or an explicit :func:`make_sanitizers` chain) turns it on.
Sanitizers are strictly observational -- they never mutate protocol
state (lint rule RL009 enforces read-only access) and never raise from
inside the pipeline; check :attr:`ViolationLog.clean` after the run.
"""

from __future__ import annotations

import os
from typing import List, Optional, Tuple

from repro.san.shadow import ShadowHistory
from repro.san.violations import SanitizerError, Violation, ViolationLog

#: Environment flag enabling sanitizer attachment in stock harnesses
#: (bench ``--sanitize``, the SI invariant tests).
ENV_FLAG = "REPRO_SANITIZE"


def sanitizers_enabled() -> bool:
    """True when ``REPRO_SANITIZE`` is set to anything but ``0``."""
    return os.environ.get(ENV_FLAG, "") not in ("", "0")


def make_sanitizers(
    log: Optional[ViolationLog] = None,
    isolation: str = "si",
) -> Tuple[ViolationLog, List[object]]:
    """Build the standard sanitizer chain sharing one shadow history.

    Returns ``(log, [SISanitizer, GCSanitizer, VersionChainSanitizer])``
    -- ordered for :func:`repro.dispatch.compose`: post-result code runs
    innermost-first, so the GC and chain sanitizers see each observation
    against the *pre-write* shadow before the (outermost) SI sanitizer
    folds the write in.  The sanitizer imports stay lazy so the default
    (sanitizers-off) paths never pay for loading the dispatch stack.

    ``isolation`` names the deployment's protocol: under the
    read-validating modes ("wsi"/"ssi") the SI sanitizer's dependency
    analysis escalates write-skew cycles from reports to violations --
    the protocol promised to prevent them.
    """
    from repro.san.chain import VersionChainSanitizer
    from repro.san.gcsan import GCSanitizer
    from repro.san.si import SISanitizer

    if log is None:
        log = ViolationLog()
    shadow = ShadowHistory()
    chain: List[object] = [
        SISanitizer(log, shadow, serializable=isolation != "si"),
        GCSanitizer(log, shadow),
        VersionChainSanitizer(log),
    ]
    return log, chain


__all__ = [
    "ENV_FLAG",
    "SanitizerError",
    "ShadowHistory",
    "Violation",
    "ViolationLog",
    "make_sanitizers",
    "sanitizers_enabled",
]
