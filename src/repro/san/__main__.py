"""CLI: run the sanitizer scenarios through the schedule explorer.

    python -m repro.san                         # all scenarios, defaults
    python -m repro.san --scenario lost_update --schedules 40 --seed 7
    python -m repro.san --list

Exit status 1 when any schedule produced violations (reports -- e.g.
write-skew cycles -- are printed but do not fail).  Each failing
schedule is replayed from its recorded trace before being reported, so
anything printed here is already a deterministic reproducer; pass
``--minimize`` to also shrink failing traces to their shortest failing
prefix.
"""

from __future__ import annotations

import argparse
import functools
import sys
from typing import List

from repro.san.explorer import ScheduleExplorer
from repro.san.scenarios import SCENARIOS


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.san",
        description="snapshot-isolation sanitizers + schedule explorer",
    )
    parser.add_argument(
        "--scenario", action="append", choices=sorted(SCENARIOS),
        help="scenario to explore (repeatable; default: all)",
    )
    parser.add_argument("--schedules", type=int, default=12,
                        help="perturbed schedules per scenario (default 12)")
    parser.add_argument("--seed", type=int, default=0,
                        help="base seed for the schedule policies")
    parser.add_argument("--jitter", type=float, default=2.0,
                        help="resume time jitter in us for random schedules")
    parser.add_argument("--minimize", action="store_true",
                        help="shrink failing traces to a minimal prefix")
    parser.add_argument("--isolation", choices=("si", "wsi", "ssi"),
                        default="si",
                        help="isolation protocol for the deployment under "
                             "test (default si)")
    parser.add_argument("--list", action="store_true",
                        help="list scenarios and exit")
    args = parser.parse_args(argv)

    if args.list:
        for name, scenario in sorted(SCENARIOS.items()):
            doc = (scenario.__doc__ or "").strip().splitlines()[0]
            print(f"{name:14s} {doc}")
        return 0

    names = args.scenario or sorted(SCENARIOS)
    exit_code = 0
    for name in names:
        scenario = functools.partial(SCENARIOS[name], isolation=args.isolation)
        baseline = scenario(None)  # the deterministic FIFO schedule first
        explorer = ScheduleExplorer(
            scenario, schedules=args.schedules, seed=args.seed,
            time_jitter=args.jitter,
        )
        failures = explorer.run()
        reports = len(baseline.reports)
        print(
            f"[{name}:{args.isolation}] baseline: "
            f"{'clean' if baseline.clean else 'VIOLATIONS'}"
            f"{f' ({reports} report(s))' if reports else ''}; "
            f"explored {explorer.runs} schedules, "
            f"{len(failures)} failing"
        )
        if not baseline.clean:
            exit_code = 1
            print(baseline.summary())
        for failure in failures:
            exit_code = 1
            replay_log = explorer.replay(failure)
            replayed = sorted(set(failure.codes) & set(replay_log.codes()))
            print(
                f"  failing schedule {failure.trace.policy_name} "
                f"seed={failure.trace.seed} codes={failure.codes} "
                f"(replay reproduces: {replayed or 'NO'})"
            )
            print("    " + failure.summary.replace("\n", "\n    "))
            if args.minimize:
                minimal = explorer.minimize(failure)
                print(
                    f"    minimized: {len(minimal)}/"
                    f"{len(failure.trace)} scheduling decisions"
                )
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
