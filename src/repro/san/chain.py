"""Version-chain sanitizer: structural invariants of VersionedRecord.

Every record that crosses the dispatch pipeline -- read back by a
``Get``, swept by a raw ``Scan``, or about to be installed by a
``PutIfVersion`` -- is checked for the representation invariants the
whole visibility machinery silently relies on:

* **VC-ORDER** -- versions are sorted strictly newest-first.  The
  production ``latest_visible`` short-circuits on ``versions[0]`` and
  ``with_version`` does an ordered insert; an out-of-order chain makes
  reads return the wrong version without any axiom check noticing.
* **VC-DUP** -- no two versions share a tid (strictness of the order
  already implies this; reported separately for diagnosis).
* **VC-TID** -- every tid is >= 0.  Tid 0 is reserved for bulk-loaded
  base versions (``LOAD_VERSION``, visible to every snapshot); negative
  tids never occur and would corrupt the visibility bit math.

Stateless and shadow-free, so it can sit anywhere in the chain; by
convention it runs innermost so malformed records are flagged before
the other sanitizers reason about them.
"""

from __future__ import annotations

from typing import Any, Generator

from repro import effects
from repro.core.spaces import DATA_SPACE
from repro.dispatch import (
    KIND_BATCH,
    KIND_SCAN,
    KIND_STORE,
    DispatchContext,
    DispatchEnv,
    Interceptor,
    NextFn,
    kind_of,
)
from repro.san.violations import ViolationLog


class VersionChainSanitizer(Interceptor):
    """Validates every observed version chain's structure."""

    def __init__(self, log: ViolationLog) -> None:
        self.log = log
        self.records_checked = 0

    def on_attach(self, env: DispatchEnv) -> None:
        pass

    def intercept(self, request: Any, ctx: DispatchContext,
                  next: NextFn) -> Generator[Any, Any, Any]:
        kind = kind_of(request)
        if kind == KIND_STORE:
            self._check_outgoing(request)
        elif kind == KIND_BATCH:
            for op in request.ops:
                self._check_outgoing(op)
        result = yield from next(request)
        if kind == KIND_STORE:
            self._check_result(request, result)
        elif kind == KIND_BATCH:
            for op, value in zip(request.ops, result):
                self._check_result(op, value)
        elif kind == KIND_SCAN and request.space == DATA_SPACE \
                and request.snapshot is None:  # raw Scan
            for key, record, _cell_version in result:
                self.check_record(key, record, origin="scan")
        return result

    def _check_outgoing(self, op: Any) -> None:
        if getattr(op, "space", None) != DATA_SPACE:
            return
        if isinstance(op, (effects.Put, effects.PutIfVersion)):
            self.check_record(op.key, op.value, origin="write")

    def _check_result(self, op: Any, result: Any) -> None:
        if getattr(op, "space", None) != DATA_SPACE:
            return
        if isinstance(op, effects.Get):
            value, _cell_version = result
            if value is not None:
                self.check_record(op.key, value, origin="read")

    def check_record(self, key: Any, record: Any, origin: str) -> None:
        """Validate one chain; callable directly by scenario drivers."""
        self.records_checked += 1
        tids = record.version_numbers()
        previous = None
        seen = set()
        for tid in tids:
            if tid < 0:
                self.log.violation(
                    "VC-TID",
                    f"record {key!r} ({origin}) carries invalid tid "
                    f"{tid}; tids are >= 0 (0 = bulk-load base version)",
                    key=key, tid=tid, origin=origin,
                )
            if tid in seen:
                self.log.violation(
                    "VC-DUP",
                    f"record {key!r} ({origin}) carries tid {tid} twice",
                    key=key, tid=tid, origin=origin,
                )
            elif previous is not None and tid >= previous:
                self.log.violation(
                    "VC-ORDER",
                    f"record {key!r} ({origin}) is not sorted strictly "
                    f"newest-first: {tid} follows {previous} "
                    f"(chain: {list(tids)})",
                    key=key, tid=tid, origin=origin,
                )
            seen.add(tid)
            previous = tid
