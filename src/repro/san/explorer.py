"""Schedule exploration: race detection by perturbing the sim kernel.

The deterministic kernel fires same-time events in scheduling order, so
one seed exercises exactly one interleaving.  The policies here plug
into :class:`repro.sim.kernel.SchedulerPolicy` to explore others:

* :class:`RandomJitterPolicy` -- randomizes the tie-break sequence of
  same-timestamp events (and optionally jitters timestamps by a bounded
  epsilon), a cheap sweep over "who wins the race to the store".
* :class:`PCTPolicy` -- probabilistic concurrency testing: processes get
  random priorities, with a small number of priority *change points*
  mid-run.  PCT finds depth-d ordering bugs with known probability
  bounds, which pure random sweeps lack.
* :class:`ReplayPolicy` -- replays a recorded :class:`ScheduleTrace`
  decision-for-decision, turning any failing exploration run back into
  a deterministic reproducer (and enabling prefix minimization).

:class:`ScheduleExplorer` drives a scenario (a callable taking a policy
and returning the run's :class:`~repro.san.violations.ViolationLog`)
through N schedules with the sanitizers on, records each failing
schedule's trace, verifies it replays, and can minimize the trace to
the shortest prefix that still reproduces a violation.

Every policy records its decisions; recording costs one list append per
event and only exists in explorer runs, never on the default sim path.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.sim.kernel import Process, SchedulerPolicy
from repro.san.violations import ViolationLog

#: seq values are ``(high << 32) | counter`` -- the counter keeps heap
#: tuples globally unique, the high bits carry the perturbation.
_SEQ_SHIFT = 32


class ScheduleTrace:
    """The full decision sequence of one explored schedule."""

    __slots__ = ("decisions", "seed", "policy_name")

    def __init__(self, seed: int, policy_name: str) -> None:
        self.decisions: List[Tuple[float, int]] = []
        self.seed = seed
        self.policy_name = policy_name

    def record(self, when: float, seq: int) -> None:
        self.decisions.append((when, seq))

    def prefix(self, length: int) -> "ScheduleTrace":
        clipped = ScheduleTrace(self.seed, f"{self.policy_name}[:{length}]")
        clipped.decisions = self.decisions[:length]
        return clipped

    def __len__(self) -> int:
        return len(self.decisions)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "policy": self.policy_name,
            "decisions": [list(pair) for pair in self.decisions],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ScheduleTrace":
        trace = cls(data["seed"], data["policy"])
        trace.decisions = [(when, seq) for when, seq in data["decisions"]]
        return trace

    def __repr__(self) -> str:
        return (
            f"<ScheduleTrace {self.policy_name} seed={self.seed} "
            f"events={len(self.decisions)}>"
        )


class _RecordingPolicy(SchedulerPolicy):
    """Base: every decision lands in ``self.trace`` for replay."""

    name = "base"

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self.trace = ScheduleTrace(seed, self.name)
        self._counter = 0

    def _emit(self, when: float, seq: int) -> Tuple[float, int]:
        self.trace.record(when, seq)
        return when, seq

    def _tick(self) -> int:
        counter = self._counter
        self._counter += 1
        return counter


class RandomJitterPolicy(_RecordingPolicy):
    """Seeded random perturbation of same-time event ordering.

    ``time_jitter`` > 0 additionally delays each *process resume* by a
    uniform amount in ``[0, time_jitter)`` microseconds, perturbing when
    each worker issues its next request -- the razor for races the
    tie-break shuffle alone cannot reach.  Plain ``call_at`` callbacks
    (the fabric's state mutations) are never time-shifted: a response
    resume delayed past its own state application is harmless, but an
    application delayed past its response would hand drivers unwritten
    result slots.
    """

    name = "random"

    def __init__(self, seed: int, time_jitter: float = 0.0) -> None:
        super().__init__(seed)
        self._rng = random.Random(seed)
        self.time_jitter = time_jitter

    def on_schedule(self, when: float, now: float,
                    process: Optional[Process]) -> Tuple[float, int]:
        if self.time_jitter > 0.0 and process is not None:
            when = when + self._rng.random() * self.time_jitter
        seq = (self._rng.randrange(1 << 20) << _SEQ_SHIFT) | self._tick()
        return self._emit(when, seq)


class PCTPolicy(_RecordingPolicy):
    """Probabilistic concurrency testing (priority schedules).

    Each process draws a random priority on first sight; same-time
    events fire highest-priority-first (lower value pops earlier).  At
    ``change_points`` randomly chosen event indices the scheduling
    process's priority drops to a fresh minimum, which is what lets PCT
    hit bugs needing d specific ordering decisions.  Plain ``call_at``
    callbacks (fabric state mutations) keep a fixed middle priority so
    store state still advances in arrival order.
    """

    name = "pct"

    _CALLBACK_PRIORITY = 1 << 15

    def __init__(self, seed: int, change_points: int = 2,
                 horizon: int = 4096) -> None:
        super().__init__(seed)
        self._rng = random.Random(seed)
        self._priorities: Dict[int, int] = {}
        self._demote_at = sorted(
            self._rng.randrange(horizon) for _ in range(change_points)
        )
        self._demotions = 0

    def _priority_of(self, process: Process) -> int:
        key = id(process)
        priority = self._priorities.get(key)
        if priority is None:
            priority = self._rng.randrange(1 << 14)
            self._priorities[key] = priority
        return priority

    def on_schedule(self, when: float, now: float,
                    process: Optional[Process]) -> Tuple[float, int]:
        counter = self._tick()
        if process is None:
            priority = self._CALLBACK_PRIORITY
        else:
            while (self._demotions < len(self._demote_at)
                   and counter >= self._demote_at[self._demotions]):
                # change point: the currently scheduling process sinks
                self._priorities[id(process)] = (1 << 16) + self._demotions
                self._demotions += 1
            priority = self._priority_of(process)
        seq = (priority << _SEQ_SHIFT) | counter
        return self._emit(when, seq)


class ReplayPolicy(SchedulerPolicy):
    """Replays a recorded trace decision-for-decision.

    The program under a replayed schedule makes the same scheduling
    calls in the same order (the schedule fully determines the sim), so
    handing back the recorded ``(when, seq)`` pairs reproduces the run
    bit-for-bit.  Past the end of the trace (minimized prefixes) it
    falls back to FIFO with sequence numbers above every recorded one,
    so the tail is deterministic too.
    """

    def __init__(self, trace: ScheduleTrace) -> None:
        self.trace = trace
        self._cursor = 0
        top = max((seq for _w, seq in trace.decisions), default=0)
        self._fallback_seq = top + 1
        self.diverged = False

    def on_schedule(self, when: float, now: float,
                    process: Optional[Process]) -> Tuple[float, int]:
        decisions = self.trace.decisions
        if self._cursor < len(decisions):
            recorded_when, seq = decisions[self._cursor]
            self._cursor += 1
            if recorded_when < now:
                # The run diverged from the recording (different code
                # under test): keep the contract, note the divergence.
                self.diverged = True
                recorded_when = now
            return recorded_when, seq
        seq = self._fallback_seq
        self._fallback_seq += 1
        return when, seq


#: A scenario takes a scheduler policy (or None for the FIFO baseline),
#: runs one simulated conflict workload with sanitizers attached, and
#: returns the run's violation log.
Scenario = Callable[[Optional[SchedulerPolicy]], ViolationLog]


class FailingSchedule:
    """One schedule that produced sanitizer violations."""

    __slots__ = ("trace", "codes", "summary")

    def __init__(self, trace: ScheduleTrace, log: ViolationLog) -> None:
        self.trace = trace
        self.codes = log.codes()
        self.summary = log.summary()

    def __repr__(self) -> str:
        return f"<FailingSchedule {self.trace.policy_name} " \
               f"seed={self.trace.seed} codes={self.codes}>"


class ScheduleExplorer:
    """Drive a scenario through N perturbed schedules, sanitizers on."""

    def __init__(self, scenario: Scenario, schedules: int = 20,
                 seed: int = 0, time_jitter: float = 2.0) -> None:
        self.scenario = scenario
        self.schedules = schedules
        self.seed = seed
        self.time_jitter = time_jitter
        self.failures: List[FailingSchedule] = []
        self.runs = 0

    def _policy_for(self, index: int) -> _RecordingPolicy:
        run_seed = self.seed * 100_003 + index
        if index % 2 == 0:
            return RandomJitterPolicy(run_seed, time_jitter=self.time_jitter)
        return PCTPolicy(run_seed)

    def run(self) -> List[FailingSchedule]:
        """Explore; returns (and stores) the failing schedules found."""
        self.failures = []
        for index in range(self.schedules):
            policy = self._policy_for(index)
            log = self.scenario(policy)
            self.runs += 1
            if not log.clean:
                self.failures.append(FailingSchedule(policy.trace, log))
        return self.failures

    def replay(self, failure: FailingSchedule) -> ViolationLog:
        """Re-run a failing schedule from its recorded trace."""
        return self.scenario(ReplayPolicy(failure.trace))

    def minimize(self, failure: FailingSchedule) -> ScheduleTrace:
        """Shortest trace prefix that still reproduces a violation.

        Bisects on the prefix length (re-running the scenario under a
        prefix replay each probe), then verifies the result; returns the
        full trace unchanged if even it no longer reproduces.
        """
        full = failure.trace

        def fails(length: int) -> bool:
            log = self.scenario(ReplayPolicy(full.prefix(length)))
            return not log.clean

        if not fails(len(full)):
            return full
        low, high = 0, len(full)  # fails(high) holds
        while low < high:
            mid = (low + high) // 2
            if fails(mid):
                high = mid
            else:
                low = mid + 1
        return full.prefix(high)
