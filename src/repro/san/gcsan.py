"""Garbage-collection sanitizer (Section 5.4's safety rules, checked).

Both GC strategies -- the eager prune inlined into the commit path and
the lazy background sweeper -- ultimately surface as ordinary LL/SC
writes: a ``PutIfVersion`` whose new record is missing versions the old
record had, or a ``DeleteIfVersion`` removing the cell outright.  The
:class:`GCSanitizer` watches for exactly those shrinking writes and
checks every removed version against the shadow history:

* **GC-ABOVE-LAV** -- a committed version newer than the *true* lowest
  active version (the minimum snapshot base the shadow observed being
  handed out) was pruned.  The production lav can legitimately lag the
  true lav (delayed peer sync), which only makes GC more conservative;
  pruning *above* it is the unsafe direction.
* **GC-LIVE-SNAPSHOT** -- the pruned version is precisely the version
  some still-active snapshot would read (its ``max(V ∩ V*)``).  Defense
  in depth over the lav bound: catches mistakes in the "keep the newest
  collectable version" rule even when the lav arithmetic is right.
* **GC-REMOVED-ACTIVE** -- a version belonging to a transaction the
  shadow still considers active vanished, and the writer is not that
  transaction rolling its own write back.
* **GC-CELL-DROP** -- a whole cell was deleted although a live snapshot
  (or any future one, when no transaction is active) would still read a
  non-tombstone version from it.

The sanitizer must run *inside* the :class:`~repro.san.si.SISanitizer`
in the interceptor chain: post-result code executes innermost-first, so
this check compares each observation against the shadow state from
*before* the SI sanitizer folds the write in.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Optional

from repro import effects
from repro.core.record import TOMBSTONE
from repro.core.spaces import DATA_SPACE
from repro.dispatch import (
    KIND_BATCH,
    KIND_STORE,
    DispatchContext,
    DispatchEnv,
    Interceptor,
    NextFn,
    kind_of,
)
from repro.san.shadow import ShadowCell, ShadowHistory, ref_latest_visible
from repro.san.violations import ViolationLog


class GCSanitizer(Interceptor):
    """Checks version pruning and cell drops against the shadow."""

    def __init__(self, log: ViolationLog, shadow: ShadowHistory) -> None:
        self.log = log
        self.shadow = shadow  # shared with SISanitizer; never mutated here

    def on_attach(self, env: DispatchEnv) -> None:
        pass

    def intercept(self, request: Any, ctx: DispatchContext,
                  next: NextFn) -> Generator[Any, Any, Any]:
        kind = kind_of(request)
        result = yield from next(request)
        if kind == KIND_STORE:
            self._observe(id(ctx), request, result)
        elif kind == KIND_BATCH:
            for op, value in zip(request.ops, result):
                self._observe(id(ctx), op, value)
        return result

    def _observe(self, ctx_key: int, op: Any, result: Any) -> None:
        if getattr(op, "space", None) != DATA_SPACE:
            return
        if isinstance(op, effects.PutIfVersion):
            ok, _new_version = result
            if ok:
                self._check_prune(ctx_key, op)
        elif isinstance(op, effects.DeleteIfVersion):
            ok, _current = result
            if ok:
                self._check_cell_drop(ctx_key, op)

    # -- version pruning -------------------------------------------------

    def _check_prune(self, ctx_key: int, op: Any) -> None:
        shadow = self.shadow
        sc = shadow.cells.get(op.key)
        if sc is None or sc.cell_version != op.expected_version:
            return  # shadow not in sync with the overwritten state
        written = set(op.value.version_numbers())
        removed = set(sc.versions) - written
        if not removed:
            return
        view = shadow.current(ctx_key)
        writer_tid = view.tid if view is not None else None
        true_lav = shadow.true_lav()
        for tid in sorted(removed):
            if tid == writer_tid:
                continue  # the writer rolling back its own version
            owner = shadow.active.get(tid)
            if owner is not None:
                self.log.violation(
                    "GC-REMOVED-ACTIVE",
                    f"write to {op.key!r} removed version {tid}, which "
                    f"belongs to a still-active transaction (writer: "
                    f"{writer_tid})",
                    key=op.key, removed=tid, writer=writer_tid,
                )
                continue
            finished = shadow.finished.get(tid)
            if finished is not None and finished.outcome == "aborted":
                continue  # residue of an aborted txn; removal is cleanup
            if true_lav is not None and tid > true_lav:
                self.log.violation(
                    "GC-ABOVE-LAV",
                    f"write to {op.key!r} pruned committed version {tid} "
                    f"although the true lowest active version is "
                    f"{true_lav} -- an active snapshot may still need it",
                    key=op.key, removed=tid, true_lav=true_lav,
                    writer=writer_tid,
                )
            self._check_live_readers(op.key, sc, tid, writer_tid)

    def _check_live_readers(self, key: Any, sc: ShadowCell, removed: int,
                            writer_tid: Optional[int]) -> None:
        for view in self.shadow.active.values():
            if view.tainted or view.tid == writer_tid:
                continue
            visible = ref_latest_visible(sc.versions.keys(), view.base,
                                         view.bits)
            if visible == removed:
                self.log.violation(
                    "GC-LIVE-SNAPSHOT",
                    f"write to {key!r} pruned version {removed}, the "
                    f"exact version active tid {view.tid} (base "
                    f"{view.base}) reads from this record",
                    key=key, removed=removed, reader=view.tid,
                )
                return  # one live reader is proof enough per prune

    # -- whole-cell removal ----------------------------------------------

    def _check_cell_drop(self, ctx_key: int, op: Any) -> None:
        shadow = self.shadow
        sc = shadow.cells.get(op.key)
        if sc is None or sc.cell_version != op.expected_version:
            return
        view = shadow.current(ctx_key)
        writer_tid = view.tid if view is not None else None
        tids = set(sc.versions)
        if writer_tid is not None and tids == {writer_tid}:
            return  # rollback of this transaction's own fresh insert
        for reader in shadow.active.values():
            if reader.tainted or reader.tid == writer_tid:
                continue
            visible = ref_latest_visible(tids, reader.base, reader.bits)
            if visible is not None \
                    and sc.versions[visible] is not TOMBSTONE:
                self.log.violation(
                    "GC-CELL-DROP",
                    f"cell {op.key!r} deleted although active tid "
                    f"{reader.tid} still reads non-tombstone version "
                    f"{visible} from it",
                    key=op.key, reader=reader.tid, visible=visible,
                )
                return
        if not shadow.active and tids:
            newest = max(tids)
            if sc.versions[newest] is not TOMBSTONE:
                self.log.violation(
                    "GC-CELL-DROP",
                    f"cell {op.key!r} deleted although its newest "
                    f"version {newest} is live data every future "
                    f"snapshot would read",
                    key=op.key, newest=newest,
                )
