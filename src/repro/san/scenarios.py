"""Conflict scenarios for the schedule explorer.

Each scenario builds a small multi-PN deployment over the simulated
fabric (real protocol code, simulated time), attaches the full sanitizer
chain, drives hand-written conflicting transactions, adds end-state
assertions of its own (``SCN-*`` codes), and returns the run's
:class:`~repro.san.violations.ViolationLog`.  All scenarios take an
optional :class:`~repro.sim.kernel.SchedulerPolicy`, which is what lets
:class:`~repro.san.explorer.ScheduleExplorer` sweep interleavings and
replay failures deterministically.

This module (like the explorer and the CLI) is a *driver*: it owns the
deployment and may mutate protocol objects freely, so lint rule RL009
(sanitizers are read-only observers) exempts it -- the observational
discipline applies to ``si``/``gcsan``/``chain``/``shadow`` only.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, List, Optional, Sequence, Tuple

from repro import effects
from repro.bench.config import TellConfig
from repro.bench.simcluster import CorePool, SimFabric
from repro.core.buffers import make_strategy
from repro.core.commit_manager import CommitManager
from repro.core.gc import lazy_gc_pass
from repro.core.processing_node import ProcessingNode
from repro.core.spaces import DATA_SPACE
from repro.dispatch import DispatchContext, DispatchEnv, attach_all, compose
from repro.errors import TellError, TransactionAborted
from repro.index.btree import DistributedBTree
from repro.san import make_sanitizers
from repro.san.violations import ViolationLog
from repro.sim.kernel import Process, SchedulerPolicy, Simulator, all_of
from repro.store.cluster import StorageCluster

#: Hard wall for every scenario phase, in simulated microseconds.
_PHASE_LIMIT = 50_000_000.0


class SimWorld:
    """A minimal simulated deployment with the sanitizer chain attached.

    Same fabric and timing model as the TPC-C harness, but the workload
    is whatever transaction scripts the scenario spawns -- small enough
    that a schedule sweep of N runs stays in the milliseconds.
    """

    def __init__(self, policy: Optional[SchedulerPolicy] = None,
                 n_pns: int = 2, storage_nodes: int = 2,
                 isolation: str = "si") -> None:
        from repro.core.isolation import make_protocol, make_validator

        self.config = TellConfig(
            processing_nodes=n_pns,
            storage_nodes=storage_nodes,
            replication_factor=1,
            partitions_per_node=4,
            threads_per_pn=1,
            isolation=isolation,
        )
        self.isolation = isolation
        self.protocol = make_protocol(isolation)
        self.sim = Simulator(policy)
        self.cluster = StorageCluster(
            n_nodes=storage_nodes,
            replication_factor=1,
            partitions_per_node=4,
        )
        self.commit_manager = CommitManager(
            0, self.cluster.execute, tid_range_size=16,
            validator=make_validator(isolation),
        )
        self.fabric = SimFabric(
            self.sim, self.cluster, [self.commit_manager], self.config
        )
        self.log, self.sanitizers = make_sanitizers(isolation=isolation)
        attach_all(
            self.sanitizers,
            DispatchEnv(
                cluster=self.cluster,
                commit_managers=[self.commit_manager],
                sim=self.sim,
            ),
        )
        self.pns = [
            ProcessingNode(
                pn_id,
                buffers=make_strategy("tb"),
                clock=lambda: self.sim.now,
                protocol=self.protocol,
            )
            for pn_id in range(n_pns)
        ]
        self.pools = [CorePool(self.config.pn_cores) for _ in range(n_pns)]

    # -- driving protocol coroutines under the fabric --------------------

    def _drive(self, pn_id: int, gen: Generator) -> Generator:
        """A sim process body: run one protocol script through the
        sanitizer chain into the fabric (one fresh DispatchContext per
        script, which is what keys the shadow's txn attribution)."""
        pool = self.pools[pn_id]
        fabric = self.fabric
        ctx = DispatchContext(pn_id=pn_id, clock=self.sim.clock(),
                              engine="sim")

        def tail(request: effects.Request) -> Generator:
            return fabric.perform(pool, 0, request, pn_id)

        chain = compose(self.sanitizers, tail, ctx)
        send_value: Any = None
        throw_exc: Optional[BaseException] = None
        while True:
            try:
                if throw_exc is not None:
                    request = gen.throw(throw_exc)
                    throw_exc = None
                else:
                    request = gen.send(send_value)
            except StopIteration as stop:
                return stop.value
            try:
                send_value = yield from chain(request)
            except TellError as exc:
                send_value = None
                throw_exc = exc

    def spawn(self, pn_id: int, gen: Generator, name: str) -> Process:
        return self.sim.spawn(self._drive(pn_id, gen), name=name)

    def run_all(self, processes: Sequence[Process]) -> None:
        waiter = self.sim.spawn(
            all_of(self.sim, list(processes)), name="join"
        )
        self.sim.run_until_complete(waiter, limit=_PHASE_LIMIT)

    def run_one(self, pn_id: int, gen: Generator, name: str) -> Any:
        process = self.spawn(pn_id, gen, name)
        return self.sim.run_until_complete(process, limit=_PHASE_LIMIT)

    # -- common phases ----------------------------------------------------

    def seed(self, rows: Dict[Any, Any]) -> None:
        """Insert ``rows`` through one observed transaction."""

        def script() -> Generator:
            txn = yield from self.pns[0].begin()
            for key, payload in rows.items():
                txn.insert(key, payload)
            yield from txn.commit()
            return "committed"

        self.run_one(0, script(), "seed")

    def read_payload(self, key: Any) -> Any:
        """One observed read-only transaction; returns the payload."""

        def script() -> Generator:
            txn = yield from self.pns[0].begin()
            payload = yield from txn.read(key)
            yield from txn.commit()
            return payload

        return self.run_one(0, script(), "check-read")

    def finish(self) -> ViolationLog:
        """Post-run analysis: the SSI dependency graph, then the log."""
        self.sanitizers[0].analyze()
        return self.log


# -- reusable transaction scripts ----------------------------------------


def _increment_worker(world: SimWorld, pn_id: int, key: Any, rounds: int,
                      attempts: int = 8) -> Generator:
    """Increment ``key`` ``rounds`` times, retrying aborts; returns the
    number of increments that actually committed."""
    pn = world.pns[pn_id]
    committed = 0
    for _round in range(rounds):
        for _attempt in range(attempts):
            try:
                txn = yield from pn.begin()
                payload = yield from txn.read(key)
                if payload is None:
                    yield from txn.abort()
                    break
                yield from txn.update(key, (payload[0] + 1,))
                yield from txn.commit()
                committed += 1
                break
            except (TransactionAborted, TellError):
                yield effects.Sleep(7.0)
    return committed


# -- the scenarios --------------------------------------------------------


COUNTER_KEY = 900_001


def lost_update(policy: Optional[SchedulerPolicy] = None,
                isolation: str = "si") -> ViolationLog:
    """Concurrent read-modify-write on one counter from two PNs.

    Under correct LL/SC every committed increment survives; the final
    counter value must equal the number of commits.  A broken
    store-conditional (the seeded ``PutIfVersion`` mutation) both trips
    the shadow (SI-STALE-SC / SI-LOST-UPDATE) and loses increments,
    which the end-state assertion catches independently (SCN-COUNTER).
    """
    world = SimWorld(policy, isolation=isolation)
    world.seed({COUNTER_KEY: (0,)})
    workers = [
        world.spawn(
            worker % len(world.pns),
            _increment_worker(world, worker % len(world.pns),
                              COUNTER_KEY, rounds=3),
            f"inc-{worker}",
        )
        for worker in range(4)
    ]
    world.run_all(workers)
    total_committed = sum(process.result or 0 for process in workers)
    payload = world.read_payload(COUNTER_KEY)
    final = payload[0] if payload is not None else None
    if final != total_committed:
        world.log.violation(
            "SCN-COUNTER",
            f"{total_committed} increments committed but the counter "
            f"reads {final} -- updates were lost",
            committed=total_committed, final=final,
        )
    return world.finish()


GC_KEYS = (910_001, 910_002)


def gc_pressure(policy: Optional[SchedulerPolicy] = None,
                isolation: str = "si") -> ViolationLog:
    """Writers churn versions while a long-running snapshot stays open.

    The reader pins the lowest active version, so eager GC must retain
    every version its snapshot can reach; the reader's late second read
    exercises visibility over a multi-version record under an old
    snapshot.  Catches the seeded GC mutation (GC-ABOVE-LAV /
    GC-LIVE-SNAPSHOT) and the seeded visibility mutation (SI-READ), and
    asserts the snapshot never goes dark (SCN-SNAPSHOT-LOST).
    """
    world = SimWorld(policy, isolation=isolation)
    world.seed({GC_KEYS[0]: (0,), GC_KEYS[1]: (0,)})
    holder_done: List[Any] = []

    def holder() -> Generator:
        pn = world.pns[0]
        txn = yield from pn.begin()
        first = yield from txn.read(GC_KEYS[0])
        yield effects.Sleep(600.0)  # outlive several writer commits
        second = yield from txn.read(GC_KEYS[1])
        yield from txn.commit()
        holder_done.append((first, second))
        return "committed"

    processes = [world.spawn(0, holder(), "holder")]
    for worker, key in enumerate(GC_KEYS * 2):
        pn_id = 1 % len(world.pns)
        processes.append(
            world.spawn(
                pn_id,
                _increment_worker(world, pn_id, key, rounds=3),
                f"churn-{worker}",
            )
        )
    world.run_all(processes)
    if holder_done:
        first, second = holder_done[0]
        if first is None or second is None:
            world.log.violation(
                "SCN-SNAPSHOT-LOST",
                f"the long-running snapshot read {first!r}/{second!r}; a "
                f"version it could see was garbage-collected under it",
                first=first, second=second,
            )
    # A lazy sweep under the now-idle manager must also stay safe.
    world.run_one(
        0,
        lazy_gc_pass(world.commit_manager.lowest_active_version()),
        "lazy-gc",
    )
    return world.finish()


SKEW_KEYS = (920_001, 920_002)


def write_skew(policy: Optional[SchedulerPolicy] = None,
               isolation: str = "si") -> ViolationLog:
    """The classic two-doctors-on-call shape: disjoint writes over
    overlapping reads.  Under SI both transactions commit; the scenario
    must end *clean* with the anomaly surfaced as an SSI-WRITE-SKEW
    *report* from the dependency-graph analysis, never as a violation.
    Under the read-validating protocols (``isolation="wsi"``/``"ssi"``)
    commit-time validation aborts one doctor, so the dependency graph --
    now escalating cycles to violations -- must find nothing at all.
    """
    world = SimWorld(policy, isolation=isolation)
    world.seed({SKEW_KEYS[0]: (1,), SKEW_KEYS[1]: (1,)})

    def doctor(pn_id: int, write_key: Any) -> Generator:
        pn = world.pns[pn_id]
        try:
            txn = yield from pn.begin()
            values = yield from txn.read_many(list(SKEW_KEYS))
            on_call = sum(
                payload[0] for payload in values.values()
                if payload is not None
            )
            if on_call >= 2:
                yield from txn.update(write_key, (0,))
            yield from txn.commit()
            return "committed"
        except (TransactionAborted, TellError):
            return "conflict"

    world.run_all([
        world.spawn(0, doctor(0, SKEW_KEYS[0]), "doctor-a"),
        world.spawn(1 % len(world.pns), doctor(1 % len(world.pns),
                                               SKEW_KEYS[1]), "doctor-b"),
    ])
    return world.finish()


INDEX_RIDS = tuple(range(930_001, 930_009))


def index_gc(policy: Optional[SchedulerPolicy] = None,
             isolation: str = "si") -> ViolationLog:
    """Index maintenance vs garbage collection.

    Insert indexed rows, delete half of them (tombstones + index-entry
    removal at commit), run a lazy GC sweep that drops the fully-deleted
    cells, then walk the B+tree: every surviving entry must still
    resolve to a live record (IDX-DANGLE otherwise).
    """
    world = SimWorld(policy, n_pns=1, isolation=isolation)
    btree = DistributedBTree(index_id=1)
    world.run_one(0, btree.create(), "idx-create")

    def insert_rows() -> Generator:
        txn = yield from world.pns[0].begin()
        for position, rid in enumerate(INDEX_RIDS):
            txn.insert(rid, (position,))
            txn.index_ops.append(("insert", btree, position, rid, False))
        yield from txn.commit()
        return "committed"

    def delete_rows() -> Generator:
        txn = yield from world.pns[0].begin()
        for position, rid in enumerate(INDEX_RIDS):
            if position % 2 == 0:
                yield from txn.delete(rid)
                txn.index_ops.append(("delete", btree, position, rid, False))
        yield from txn.commit()
        return "committed"

    world.run_one(0, insert_rows(), "idx-insert")
    world.run_one(0, delete_rows(), "idx-delete")
    world.run_one(
        0,
        lazy_gc_pass(world.commit_manager.lowest_active_version()),
        "idx-lazy-gc",
    )

    def validate() -> Generator:
        entries = yield from btree.all_entries()
        dangling = []
        for entry in entries:
            rid = entry[1]
            value, _cell_version = yield effects.Get(DATA_SPACE, rid)
            if value is None or all(
                version.is_tombstone for version in value.versions
            ):
                dangling.append(entry)
        return dangling

    for entry in world.run_one(0, validate(), "idx-validate"):
        world.log.violation(
            "IDX-DANGLE",
            f"index entry {entry!r} survived GC but its record is gone "
            f"(or fully tombstoned) in the data space",
            entry=list(entry),
        )
    return world.finish()


#: Scenario registry: name -> callable(policy) -> ViolationLog.
SCENARIOS: Dict[str, Callable[[Optional[SchedulerPolicy]], ViolationLog]] = {
    "lost_update": lost_update,
    "gc_pressure": gc_pressure,
    "write_skew": write_skew,
    "index_gc": index_gc,
}
