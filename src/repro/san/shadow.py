"""Shadow history: the sanitizers' independent model of the store.

The :class:`repro.san.si.SISanitizer` rebuilds, from the observed request
stream alone, what the data space *should* contain: which versions each
cell holds, which transactions are active/committed/aborted, and which
snapshot each transaction was handed.  SI axioms are then checked against
this shadow, never against the production data structures' own logic.

Crucially, snapshot visibility is **reimplemented here from the paper's
definition** (Section 4.2: ``V* = { x | x <= b or x in N }``, a read
returns ``max(V ∩ V*)``) using raw ``(base, bits)`` integers obtained via
:meth:`repro.core.snapshot.SnapshotDescriptor.as_pair`.  A bug in the
production ``contains`` / ``latest_visible`` therefore cannot hide from
its own checker -- the two implementations must agree on every read.

The shadow is *best-effort* by design: code paths that bypass the
dispatch pipeline (bulk load, recovery, replication to backups, shared
buffers serving reads from cache) are invisible.  Cells are adopted
lazily on first observation and re-adopted when the store's cell version
runs ahead of the shadow; both are counted as reconciliations, not
violations (see :class:`repro.san.violations.ViolationLog`).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

#: Payload marker for tombstone versions in the shadow (the production
#: TOMBSTONE sentinel is kept as-is when observed; this module only needs
#: identity comparisons, never isinstance checks, against it).


def visible_in(tid: int, base: int, bits: int) -> bool:
    """Reference implementation of tid ∈ V* (independent bit math)."""
    if tid <= base:
        return True
    return bool((bits >> (tid - base - 1)) & 1)


def ref_latest_visible(tids: Iterable[int], base: int, bits: int) -> Optional[int]:
    """Reference implementation of max(V ∩ V*), or None."""
    best: Optional[int] = None
    for tid in tids:
        if tid <= base:
            if best is None or tid > best:
                best = tid
        elif (bits >> (tid - base - 1)) & 1:
            if best is None or tid > best:
                best = tid
    return best


class ShadowCell:
    """What the shadow believes one data cell contains."""

    __slots__ = ("versions", "cell_version")

    def __init__(self, versions: Dict[int, Any], cell_version: int) -> None:
        #: tid -> payload object (payloads are immutable in the store, so
        #: retaining references is safe and costs nothing).
        self.versions = versions
        self.cell_version = cell_version

    def tids(self) -> Tuple[int, ...]:
        return tuple(self.versions.keys())

    def __repr__(self) -> str:
        return (
            f"ShadowCell(cv={self.cell_version}, "
            f"tids={sorted(self.versions)})"
        )


class TxnView:
    """Everything the shadow knows about one observed transaction."""

    __slots__ = ("tid", "base", "bits", "lav", "snapshot_obj", "pn_id",
                 "reads", "writes", "applied", "outcome", "tainted")

    def __init__(self, tid: int, base: int, bits: int, lav: int,
                 snapshot_obj: Any, pn_id: int) -> None:
        self.tid = tid
        self.base = base
        self.bits = bits
        self.lav = lav
        #: The production SnapshotDescriptor, retained *only* to be passed
        #: back into production visibility for the cross-check -- the
        #: shadow's own reasoning uses (base, bits).
        self.snapshot_obj = snapshot_obj
        self.pn_id = pn_id
        #: key -> tid of the version this transaction read (reference
        #: visibility verdict), for SSI wr/rw edges.
        self.reads: Dict[Any, Optional[int]] = {}
        #: keys this transaction successfully installed a version for.
        self.writes: Dict[Any, int] = {}  # key -> expected cell version
        #: keys whose store cell currently carries our version.
        self.applied: List[Any] = []
        self.outcome: Optional[str] = None  # None=active
        self.tainted = False

    def sees(self, tid: int) -> bool:
        return visible_in(tid, self.base, self.bits)

    def __repr__(self) -> str:
        return f"TxnView(tid={self.tid}, base={self.base})"


#: Bound on remembered finished transactions / per-key writer history.
#: The SSI dependency analysis only needs a recent window: anything older
#: than every active snapshot can no longer participate in a new cycle.
RECENT_WINDOW = 512


class ShadowHistory:
    """The independently maintained model all sanitizers share."""

    def __init__(self) -> None:
        self.cells: Dict[Any, ShadowCell] = {}
        self.active: Dict[int, TxnView] = {}
        self.finished: Dict[int, TxnView] = {}  # committed AND aborted
        self.finish_order: List[int] = []
        #: dispatch-context identity -> the transaction it is driving.
        #: Each driver creates one DispatchContext per concurrently
        #: running transaction script (the sim fabric per script, the
        #: direct runner per Router), which is what makes per-context
        #: attribution sound.
        self.by_ctx: Dict[int, TxnView] = {}
        #: key -> committed writers [(tid, base, bits)], recent window.
        self.key_writers: Dict[Any, List[Tuple[int, int, int]]] = {}

    # -- transaction lifecycle ------------------------------------------

    def begin(self, ctx_key: int, view: TxnView) -> Optional[TxnView]:
        """Register a started transaction; returns a displaced, still
        unfinished view if the context was already busy (attribution
        failure -- both views are tainted and stop being checked)."""
        displaced = self.by_ctx.get(ctx_key)
        if displaced is not None and displaced.outcome is None:
            displaced.tainted = True
            view.tainted = True
        else:
            displaced = None
        self.active[view.tid] = view
        self.by_ctx[ctx_key] = view
        return displaced

    def current(self, ctx_key: int) -> Optional[TxnView]:
        view = self.by_ctx.get(ctx_key)
        if view is not None and view.outcome is None:
            return view
        return None

    def finish(self, tid: int, outcome: str) -> Optional[TxnView]:
        view = self.active.pop(tid, None)
        if view is None:
            return None
        view.outcome = outcome
        self.finished[tid] = view
        self.finish_order.append(tid)
        if outcome == "committed":
            for key in view.writes:
                writers = self.key_writers.setdefault(key, [])
                writers.append((view.tid, view.base, view.bits))
                if len(writers) > RECENT_WINDOW:
                    del writers[0]
        while len(self.finish_order) > RECENT_WINDOW:
            old = self.finish_order.pop(0)
            self.finished.pop(old, None)
        return view

    def true_lav(self) -> Optional[int]:
        """Reference lowest-active-version: the minimum snapshot base of
        the transactions the shadow believes active (None = no active
        transaction, i.e. every version is collectable but the newest)."""
        if not self.active:
            return None
        return min(view.base for view in self.active.values())

    # -- cell bookkeeping -----------------------------------------------

    def adopt(self, key: Any, version_payloads: Dict[int, Any],
              cell_version: int) -> ShadowCell:
        sc = ShadowCell(dict(version_payloads), cell_version)
        self.cells[key] = sc
        return sc

    def drop(self, key: Any) -> None:
        """Forget a cell (batch partial-failure blind spot: some of the
        group's ops may have applied without an observable result)."""
        self.cells.pop(key, None)

    def __repr__(self) -> str:
        return (
            f"<ShadowHistory cells={len(self.cells)} "
            f"active={len(self.active)}>"
        )
