"""Snapshot-isolation sanitizer (the SI axioms, machine-checked).

:class:`SISanitizer` is a dispatch interceptor that watches every request
a pipeline serves and validates, against the independent
:class:`~repro.san.shadow.ShadowHistory`:

* **SI-READ** -- every read returned ``max(V ∩ V*)``: the production
  :meth:`~repro.core.record.VersionedRecord.latest_visible` verdict is
  compared against the shadow's reimplementation of Section 4.2's
  visibility over the raw ``(base, bits)`` snapshot pair.
* **SI-STALE-SC** -- a store-conditional write succeeded although the
  shadow had already observed a newer cell version than the writer's LL
  token: the store's version check cannot have run (a deleted
  ``PutIfVersion`` check surfaces here as a lost update in the making).
* **SI-LOST-UPDATE** -- first-committer-wins: a transaction committed a
  write to a key that a concurrent transaction (not visible in the
  writer's snapshot) had already committed a write for.
* **SI-SNAPSHOT-ACTIVE** -- a start() handed out a snapshot that already
  contains a transaction the shadow still considers active.
* **SI-ABORT-RESIDUE** -- an abort was reported while the store still
  carried one of the transaction's versions (rollback must precede
  ``setAborted``, Section 4.3).

It also builds the SSI-style dependency graph (wr / ww / rw edges) over
the recent committed window; :meth:`SISanitizer.analyze` *reports*
cycles involving anti-dependencies -- write skew, which SI permits --
without ever failing the run.

Strictly observational: the interceptor touches protocol objects only
through read-only accessors (lint rule RL009 enforces this), collects
into a :class:`~repro.san.violations.ViolationLog`, and never raises.

Ordering note: commit-manager completions are processed in the *pre*
phase (at request issue time) while starts register in the *post* phase
(at response time), mirroring the simulated fabric, which executes
manager state at issue time and delays only the response.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Set, Tuple

from repro import effects
from repro.core.spaces import DATA_SPACE
from repro.dispatch import (
    KIND_BATCH,
    KIND_CM_ABORTED,
    KIND_CM_COMMITTED,
    KIND_CM_START,
    KIND_SCAN,
    KIND_STORE,
    DispatchContext,
    DispatchEnv,
    Interceptor,
    NextFn,
    kind_of,
)
from repro.san.shadow import (
    ShadowCell,
    ShadowHistory,
    TxnView,
    ref_latest_visible,
    visible_in,
)
from repro.san.violations import ViolationLog


def _is_write_op(op: Any) -> bool:
    return isinstance(
        op,
        (effects.Put, effects.PutIfVersion, effects.Delete,
         effects.DeleteIfVersion, effects.Increment),
    )


class SISanitizer(Interceptor):
    """Shadow-history bookkeeper + SI axiom checker.

    Owns the shared :class:`ShadowHistory`; the GC and version-chain
    sanitizers read the same instance but never mutate it.  Place this
    interceptor *outermost* of the sanitizer trio so its post-phase
    (which folds observed writes into the shadow) runs after the others
    compared the observation against the pre-write shadow state.
    """

    def __init__(self, log: ViolationLog,
                 shadow: Optional[ShadowHistory] = None,
                 serializable: bool = False) -> None:
        self.log = log
        self.shadow = shadow if shadow is not None else ShadowHistory()
        # Under a serializability-promising isolation protocol (WSI/SSI,
        # repro.core.isolation) the dependency analysis escalates
        # write-skew cycles from informational reports to violations:
        # the protocol claimed to prevent them.
        self.serializable = serializable

    def on_attach(self, env: DispatchEnv) -> None:
        # Nothing to wire; attach may run repeatedly (router clones).
        pass

    # -- the interceptor -------------------------------------------------

    def intercept(self, request: Any, ctx: DispatchContext,
                  next: NextFn) -> Generator[Any, Any, Any]:
        kind = kind_of(request)
        ctx_key = id(ctx)
        if kind == KIND_CM_COMMITTED:
            self._on_commit(request.tid)
        elif kind == KIND_CM_ABORTED:
            self._on_abort(request.tid)
        try:
            result = yield from next(request)
        except BaseException:
            # The request may have half-applied (a batch's groups apply
            # independently); every referenced data cell becomes a blind
            # spot until re-observed.
            if kind == KIND_BATCH:
                for op in request.ops:
                    if _is_write_op(op) and op.space == DATA_SPACE:
                        self.shadow.drop(op.key)
                        self.log.reconcile("batch-error-drop")
            elif kind == KIND_STORE and _is_write_op(request) \
                    and request.space == DATA_SPACE:
                self.shadow.drop(request.key)
                self.log.reconcile("store-error-drop")
            raise
        if kind == KIND_CM_START:
            self._on_start(ctx_key, ctx.pn_id, result)
        elif kind == KIND_STORE:
            self._observe(ctx_key, request, result)
        elif kind == KIND_BATCH:
            for op, value in zip(request.ops, result):
                self._observe(ctx_key, op, value)
        elif kind == KIND_SCAN:
            self._observe_scan(ctx_key, request, result)
        return result

    # -- transaction lifecycle ------------------------------------------

    def _on_start(self, ctx_key: int, pn_id: int, start: Any) -> None:
        base, bits = start.snapshot.as_pair()
        view = TxnView(start.tid, base, bits, start.lav, start.snapshot,
                       pn_id)
        for active_tid in self.shadow.active:
            if active_tid != start.tid and visible_in(active_tid, base, bits):
                self.log.violation(
                    "SI-SNAPSHOT-ACTIVE",
                    f"start(tid={start.tid}) snapshot contains tid "
                    f"{active_tid}, which is still active",
                    tid=start.tid, active=active_tid,
                )
        if start.lav > base:
            self.log.violation(
                "SI-LAV",
                f"start(tid={start.tid}) lav {start.lav} exceeds own "
                f"snapshot base {base}",
                tid=start.tid, lav=start.lav, base=base,
            )
        displaced = self.shadow.begin(ctx_key, view)
        if displaced is not None:
            self.log.reconcile("ctx-reuse")

    def _on_commit(self, tid: int) -> None:
        shadow = self.shadow
        view = shadow.active.get(tid)
        if view is None:
            self.log.reconcile("unknown-commit")
            return
        if not view.tainted:
            for key, expected in view.writes.items():
                if expected == 0:
                    continue  # fresh insert: no prior version to lose
                for w_tid, _wb, _wbits in shadow.key_writers.get(key, ()):
                    if w_tid != tid and not view.sees(w_tid):
                        self.log.violation(
                            "SI-LOST-UPDATE",
                            f"tid {tid} committed a write to {key!r} "
                            f"although concurrent tid {w_tid} (not in its "
                            f"snapshot) committed a write to the same key "
                            f"first -- first-committer-wins violated",
                            tid=tid, key=key, first_committer=w_tid,
                        )
        shadow.finish(tid, "committed")

    def _on_abort(self, tid: int) -> None:
        shadow = self.shadow
        view = shadow.active.get(tid)
        if view is not None and not view.tainted:
            for key in view.applied:
                sc = shadow.cells.get(key)
                if sc is not None and tid in sc.versions:
                    self.log.violation(
                        "SI-ABORT-RESIDUE",
                        f"tid {tid} reported aborted while its version of "
                        f"{key!r} is still installed; rollback must "
                        f"precede setAborted",
                        tid=tid, key=key,
                    )
        if view is not None:
            shadow.finish(tid, "aborted")
        else:
            self.log.reconcile("unknown-abort")

    # -- storage observations -------------------------------------------

    def _observe(self, ctx_key: int, op: Any, result: Any) -> None:
        if getattr(op, "space", None) != DATA_SPACE:
            return
        cls = op.__class__
        if cls is effects.Get or isinstance(op, effects.Get):
            self._observe_get(ctx_key, op.key, result)
        elif cls is effects.PutIfVersion or isinstance(op, effects.PutIfVersion):
            self._observe_put_if(ctx_key, op, result)
        elif cls is effects.DeleteIfVersion or isinstance(op, effects.DeleteIfVersion):
            self._observe_delete_if(ctx_key, op, result)
        elif cls is effects.Put or isinstance(op, effects.Put):
            record = op.value
            payloads = {v.tid: v.payload for v in record.versions}
            self.shadow.adopt(op.key, payloads, result)
            self.log.reconcile("unconditional-put")

    def _observe_get(self, ctx_key: int, key: Any, result: Any) -> None:
        shadow = self.shadow
        value, cell_version = result
        view = shadow.current(ctx_key)
        if value is None:
            if shadow.cells.get(key) is not None \
                    and shadow.cells[key].versions:
                shadow.drop(key)
                self.log.reconcile("get-missing")
            if view is not None and not view.tainted:
                view.reads[key] = None
            return
        record = value
        tids = record.version_numbers()
        if view is not None and not view.tainted:
            production = record.latest_visible(view.snapshot_obj)
            production_tid = production.tid if production is not None else None
            reference = ref_latest_visible(tids, view.base, view.bits)
            if production_tid != reference:
                self.log.violation(
                    "SI-READ",
                    f"read of {key!r} by tid {view.tid}: production "
                    f"visibility chose version {production_tid}, the "
                    f"snapshot definition (max(V ∩ V*)) requires "
                    f"{reference} (V={sorted(tids)}, base={view.base})",
                    tid=view.tid, key=key, production=production_tid,
                    reference=reference,
                )
            view.reads[key] = reference
        self._sync_cell(key, record, cell_version)

    def _sync_cell(self, key: Any, record: Any, cell_version: int) -> None:
        shadow = self.shadow
        payloads = {v.tid: v.payload for v in record.versions}
        sc = shadow.cells.get(key)
        if sc is None:
            shadow.adopt(key, payloads, cell_version)
            self.log.reconcile("adopt")
            return
        if cell_version == sc.cell_version:
            if payloads != sc.versions:
                self.log.violation(
                    "SHADOW-DIVERGE",
                    f"cell {key!r} at version {cell_version} holds tids "
                    f"{sorted(payloads)} but the shadow recorded "
                    f"{sorted(sc.versions)} for the same cell version",
                    key=key, cell_version=cell_version,
                )
        elif cell_version > sc.cell_version:
            shadow.adopt(key, payloads, cell_version)
            self.log.reconcile("readopt")
        else:
            # A response observed out of order (read responses are larger
            # than write acks and can overtake on the wire): the shadow is
            # already ahead; the observation is stale but not wrong.
            self.log.reconcile("stale-read")

    def _observe_put_if(self, ctx_key: int, op: Any, result: Any) -> None:
        ok, new_version = result
        if not ok:
            return
        shadow = self.shadow
        key = op.key
        record = op.value
        written = {v.tid: v.payload for v in record.versions}
        sc = shadow.cells.get(key)
        view = shadow.current(ctx_key)
        if sc is not None and op.expected_version != sc.cell_version:
            if op.expected_version > sc.cell_version:
                self.log.reconcile("unobserved-write")
            elif new_version > sc.cell_version:
                # The store accepted an LL token older than a write the
                # shadow already observed land (in service order): the
                # version check cannot have run.  This is the signature
                # of a lost update about to be committed.
                self.log.violation(
                    "SI-STALE-SC",
                    f"PutIfVersion on {key!r} succeeded with expected "
                    f"version {op.expected_version} although the cell "
                    f"was already at {sc.cell_version}; the "
                    f"store-conditional version check did not reject a "
                    f"stale LL token",
                    key=key, expected=op.expected_version,
                    shadow_version=sc.cell_version,
                    writer=view.tid if view is not None else None,
                )
            else:
                self.log.reconcile("stale-write")
                return
        if view is not None and not view.tainted:
            if view.tid in written:
                view.writes[key] = op.expected_version
                if key not in view.applied:
                    view.applied.append(key)
            elif key in view.applied:
                view.applied.remove(key)  # rollback removed our version
        if sc is None or new_version > sc.cell_version:
            shadow.adopt(key, written, new_version)

    def _observe_delete_if(self, ctx_key: int, op: Any, result: Any) -> None:
        ok, _current = result
        if not ok:
            return
        shadow = self.shadow
        key = op.key
        sc = shadow.cells.get(key)
        if sc is not None and op.expected_version != sc.cell_version:
            if op.expected_version > sc.cell_version:
                self.log.reconcile("unobserved-write")
            else:
                self.log.violation(
                    "SI-STALE-SC",
                    f"DeleteIfVersion on {key!r} succeeded with expected "
                    f"version {op.expected_version} although the cell "
                    f"was already at {sc.cell_version}",
                    key=key, expected=op.expected_version,
                    shadow_version=sc.cell_version,
                )
        view = shadow.current(ctx_key)
        if view is not None and key in view.applied:
            view.applied.remove(key)
        # Cell versions restart at 1 after a delete; model "missing".
        shadow.cells[key] = ShadowCell({}, 0)

    def _observe_scan(self, ctx_key: int, op: Any, result: Any) -> None:
        if op.space != DATA_SPACE:
            return
        if op.snapshot is None:
            for key, record, cell_version in result:
                self._sync_cell(key, record, cell_version)
            return
        # Storage-side push-down (Section 5.2): the SN extracted the
        # visible payload itself -- the one place visibility runs outside
        # the PN.  With no filter/projection the shipped payload must be
        # exactly what the shadow's reference visibility picks.
        if op.scan_filter is not None or op.projection is not None:
            return
        base, bits = op.snapshot.as_pair()
        shadow = self.shadow
        for key, payload, cell_version in result:
            sc = shadow.cells.get(key)
            if sc is None or sc.cell_version != cell_version:
                continue  # shadow not in sync for this cell: no verdict
            reference = ref_latest_visible(sc.versions.keys(), base, bits)
            if reference is None or sc.versions[reference] != payload:
                self.log.violation(
                    "SI-SCAN-VISIBILITY",
                    f"pushdown scan shipped a payload for {key!r} that is "
                    f"not the snapshot-visible version (reference tid "
                    f"{reference})",
                    key=key, reference=reference,
                )

    # -- SSI dependency analysis (the protocol oracle) -------------------

    def analyze(self) -> List[List[int]]:
        """Build the SSI dependency graph over the recent committed
        window and flag every strongly connected component that contains
        an anti-dependency (rw) edge -- the shape of write skew.  SI
        permits these, so under SI they are informational reports; with
        ``serializable=True`` (deployment runs WSI/SSI) a surviving cycle
        means the enforcing protocol failed and is logged as a violation.
        Returns the list of flagged cycles (each a sorted tid list)."""
        committed = [
            view for view in self.shadow.finished.values()
            if view.outcome == "committed" and not view.tainted
        ]
        edges: Dict[int, Set[int]] = {view.tid: set() for view in committed}
        rw_edges: Set[Tuple[int, int]] = set()
        for a in committed:
            for b in committed:
                if a.tid == b.tid:
                    continue
                for key, read_tid in a.reads.items():
                    if read_tid == b.tid:
                        edges[b.tid].add(a.tid)          # wr: b -> a
                    if key in b.writes and not a.sees(b.tid) \
                            and read_tid != b.tid:
                        edges[a.tid].add(b.tid)          # rw: a -> b
                        rw_edges.add((a.tid, b.tid))
                for key in a.writes:
                    if key in b.writes and b.sees(a.tid):
                        edges[a.tid].add(b.tid)          # ww: a -> b
        cycles: List[List[int]] = []
        for component in _sccs(edges):
            if len(component) < 2:
                continue
            members = set(component)
            has_rw = any(
                x in members and y in members for x, y in rw_edges
            )
            if has_rw:
                cycle = sorted(component)
                cycles.append(cycle)
                if self.serializable:
                    self.log.violation(
                        "SSI-WRITE-SKEW",
                        f"dependency cycle with anti-dependencies among "
                        f"committed tids {cycle} -- write skew leaked "
                        f"through a read-validating isolation protocol",
                        tids=cycle,
                    )
                else:
                    self.log.report(
                        "SSI-WRITE-SKEW",
                        f"dependency cycle with anti-dependencies among "
                        f"committed tids {cycle} -- write skew (permitted "
                        f"under SI, would abort under SSI)",
                        tids=cycle,
                    )
        return cycles


def _sccs(edges: Dict[int, Set[int]]) -> List[List[int]]:
    """Iterative Tarjan: strongly connected components of a small graph."""
    index_of: Dict[int, int] = {}
    low: Dict[int, int] = {}
    on_stack: Set[int] = set()
    stack: List[int] = []
    result: List[List[int]] = []
    counter = [0]

    for root in sorted(edges):
        if root in index_of:
            continue
        work: List[Tuple[int, List[int]]] = [(root, sorted(edges[root]))]
        index_of[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, pending = work[-1]
            advanced = False
            while pending:
                nxt = pending.pop(0)
                if nxt not in index_of:
                    index_of[nxt] = low[nxt] = counter[0]
                    counter[0] += 1
                    stack.append(nxt)
                    on_stack.add(nxt)
                    work.append((nxt, sorted(edges.get(nxt, ()))))
                    advanced = True
                    break
                if nxt in on_stack and index_of[nxt] < low[node]:
                    low[node] = index_of[nxt]
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                if low[node] < low[parent]:
                    low[parent] = low[node]
            if low[node] == index_of[node]:
                component: List[int] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                result.append(component)
    return result
