"""Violation collection for the sanitizer suite.

Sanitizers are strictly observational: a detected violation must never
change the run it is observing (raising from inside an interceptor would
unwind the simulated transaction like an infrastructure fault and alter
the very interleaving under test).  They therefore *collect* into a
:class:`ViolationLog`; the driver checks :meth:`ViolationLog.assert_clean`
after the run, exactly like LeakSanitizer reporting at process exit.

Three severities:

* **violations** -- SI/GC/version-chain axiom breaches; these fail runs.
* **reports** -- anomalies snapshot isolation *permits* (write-skew
  cycles in the SSI dependency graph); surfaced but never failing.
* **reconciliations** -- counted observations where the shadow history
  resynchronized with the store after an unsanitized code path (bulk
  load, recovery, replication) touched a cell.  High counts mean the
  sanitizer was blind for part of the run, not that the run was wrong.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional


class SanitizerError(AssertionError):
    """Raised by :meth:`ViolationLog.assert_clean` when violations were
    collected.  An AssertionError so pytest renders the summary."""


class Violation:
    """One observed axiom breach (or report)."""

    __slots__ = ("code", "message", "details")

    def __init__(self, code: str, message: str,
                 details: Optional[Dict[str, Any]] = None) -> None:
        self.code = code
        self.message = message
        self.details = details or {}

    def __repr__(self) -> str:
        return f"Violation({self.code}: {self.message})"


class ViolationLog:
    """Collect-only sink shared by every sanitizer in one chain."""

    def __init__(self, limit: int = 200) -> None:
        self.violations: List[Violation] = []
        self.reports: List[Violation] = []
        self.reconciliations: Dict[str, int] = {}
        self.limit = limit

    # -- recording -------------------------------------------------------

    def violation(self, code: str, message: str, **details: Any) -> None:
        if len(self.violations) < self.limit:
            self.violations.append(Violation(code, message, details))

    def report(self, code: str, message: str, **details: Any) -> None:
        if len(self.reports) < self.limit:
            self.reports.append(Violation(code, message, details))

    def reconcile(self, kind: str) -> None:
        self.reconciliations[kind] = self.reconciliations.get(kind, 0) + 1

    # -- inspection ------------------------------------------------------

    @property
    def clean(self) -> bool:
        return not self.violations

    def codes(self) -> List[str]:
        """Sorted distinct violation codes (test-friendly)."""
        return sorted({v.code for v in self.violations})

    def summary(self) -> str:
        lines = [
            f"{len(self.violations)} violation(s), "
            f"{len(self.reports)} report(s), "
            f"{sum(self.reconciliations.values())} reconciliation(s)"
        ]
        for v in self.violations[:20]:
            lines.append(f"  [{v.code}] {v.message}")
        if len(self.violations) > 20:
            lines.append(f"  ... and {len(self.violations) - 20} more")
        for r in self.reports[:5]:
            lines.append(f"  (report) [{r.code}] {r.message}")
        return "\n".join(lines)

    def assert_clean(self) -> None:
        if self.violations:
            raise SanitizerError(self.summary())

    def clear(self) -> None:
        self.violations.clear()
        self.reports.clear()
        self.reconciliations.clear()

    def __repr__(self) -> str:
        return (
            f"<ViolationLog violations={len(self.violations)} "
            f"reports={len(self.reports)}>"
        )
