"""Deterministic discrete-event simulation kernel.

The kernel replaces the paper's physical cluster.  Protocol code (the actual
Tell implementation in :mod:`repro.core`) runs unmodified as coroutines;
only the *timing* of storage and commit-manager requests is simulated, which
is what determines the interleavings, conflicts, and throughput shapes the
paper measures.
"""

from repro.sim.kernel import (
    Delay,
    Event,
    Process,
    SimClock,
    Simulator,
)

__all__ = ["Delay", "Event", "Process", "SimClock", "Simulator"]
