"""Event loop, processes, and events for the discrete-event simulator.

Time is a ``float`` in *microseconds*; the paper's latency numbers
(InfiniBand RDMA in single-digit microseconds, Ethernet round trips in tens
of microseconds) are most natural at this scale.

Processes are plain generator functions.  A process may yield:

* :class:`Delay` -- suspend for a fixed amount of simulated time,
* :class:`Event` -- suspend until the event is triggered; ``event.value``
  is sent back into the generator when it resumes.

The kernel is deterministic: events scheduled for the same timestamp fire
in scheduling order (a monotonically increasing sequence number breaks
ties), so a fixed random seed reproduces the exact same run.

The event loop is the hottest code in the repository -- every simulated
request is at least one heap operation plus one generator resume -- so
:meth:`Simulator._drain` binds its dependencies to locals and dispatches
on exact yield types.  Optimizations here must be behaviour-invariant;
``benchmarks/perf`` and the determinism-digest test enforce that.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Any, Callable, Deque, Dict, Generator, Iterable, List, Optional, Tuple

from repro.errors import InvalidState

ProcessGenerator = Generator[Any, Any, Any]


class Delay:
    """Yield value suspending the process for ``duration`` microseconds."""

    __slots__ = ("duration",)

    def __init__(self, duration: float) -> None:
        if duration < 0:
            raise ValueError(f"negative delay: {duration}")
        self.duration = duration

    def __repr__(self) -> str:
        return f"Delay({self.duration})"


#: Interned delays for recurring durations (sync intervals, fixed service
#: times).  Delay objects are immutable, so sharing one instance across
#: yields -- even across simulators -- is safe and skips an allocation on
#: the hot path.
#:
#: Capacity policy: the cache is insert-only and bounded.  Once
#: ``_DELAY_CACHE_MAX`` distinct durations have been interned, later
#: durations are *not* cached -- ``delay_of`` still returns a correct
#: (fresh) ``Delay``, it just stops saving the allocation.  Nothing is
#: ever evicted, so the recurring durations that fill the cache first
#: (sync intervals, fixed service times) keep their pooled instances for
#: the life of the interpreter.  ``delay_cache_info()`` exposes the
#: occupancy so callers and tests can detect saturation instead of
#: guessing why interning "stopped working".
_DELAY_CACHE: Dict[float, Delay] = {}
_DELAY_CACHE_MAX = 1024


def delay_of(duration: float) -> Delay:
    """A pooled :class:`Delay`; prefer this for repeated durations.

    At capacity (see ``delay_cache_info``) this degrades gracefully to a
    plain allocation per call; the returned value is indistinguishable
    from the cached case except by identity.
    """
    pooled = _DELAY_CACHE.get(duration)
    if pooled is None:
        pooled = Delay(duration)
        if len(_DELAY_CACHE) < _DELAY_CACHE_MAX:
            _DELAY_CACHE[duration] = pooled
    return pooled


def delay_cache_info() -> Tuple[int, int]:
    """``(size, capacity)`` of the delay intern pool.

    ``size == capacity`` means the pool is saturated: ``delay_of`` keeps
    returning correct delays but no longer interns new durations.  A
    workload that feeds many distinct durations through ``delay_of``
    (e.g. randomised think times) should construct ``Delay`` directly
    instead of churning the pool.
    """
    return len(_DELAY_CACHE), _DELAY_CACHE_MAX


class Event:
    """A one-shot event processes can wait on.

    ``trigger(value)`` wakes every waiting process and delivers ``value``
    as the result of the ``yield``.  Waiting on an already-triggered event
    resumes the process immediately (at the current timestamp).
    """

    __slots__ = ("sim", "triggered", "value", "_waiters")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.triggered = False
        self.value: Any = None
        self._waiters: List["Process"] = []

    def trigger(self, value: Any = None) -> None:
        if self.triggered:
            raise InvalidState("event already triggered")
        self.triggered = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        sim = self.sim
        if sim._policy is None:
            # Same-time wakes go straight to the ready FIFO: an O(1)
            # append instead of a heap push per waiter.
            append = sim._ready.append
            for process in waiters:
                append((process, value))
        else:
            schedule = sim._schedule
            for process in waiters:
                schedule(0.0, process, value)

    def add_waiter(self, process: "Process") -> None:
        if self.triggered:
            self.sim._schedule(0.0, process, self.value)
        else:
            self._waiters.append(process)


class Process:
    """Wrapper around a running generator coroutine."""

    __slots__ = ("sim", "generator", "name", "finished", "result", "done_event")

    def __init__(self, sim: "Simulator", generator: ProcessGenerator, name: str) -> None:
        self.sim = sim
        self.generator = generator
        self.name = name
        self.finished = False
        self.result: Any = None
        self.done_event = Event(sim)

    def _step(self, send_value: Any) -> None:
        """Advance the generator by one yield, scheduling its next resume."""
        try:
            yielded = self.generator.send(send_value)
        except StopIteration as stop:
            self.finished = True
            self.result = stop.value
            self.done_event.trigger(stop.value)
            return
        # Exact-type checks first: Delay and Event are final in practice,
        # so one identity compare replaces an isinstance pair per yield.
        cls = yielded.__class__
        if cls is Delay:
            self.sim._schedule(yielded.duration, self, None)
        elif cls is Event:
            yielded.add_waiter(self)
        elif isinstance(yielded, Delay):
            self.sim._schedule(yielded.duration, self, None)
        elif isinstance(yielded, Event):
            yielded.add_waiter(self)
        else:
            raise TypeError(
                f"process {self.name!r} yielded {yielded!r}; expected Delay or Event"
            )

    def __repr__(self) -> str:
        state = "done" if self.finished else "running"
        return f"<Process {self.name} {state}>"


class SimClock:
    """Read-only view of simulator time, shareable with components."""

    __slots__ = ("_sim",)

    def __init__(self, sim: "Simulator") -> None:
        self._sim = sim

    @property
    def now(self) -> float:
        return self._sim.now


class SchedulerPolicy:
    """Pluggable perturbation of the kernel's scheduling decisions.

    Every event pushed onto the heap carries ``(when, seq)``; by default
    ``seq`` is a monotonically increasing counter, which makes same-time
    events fire in scheduling order (FIFO).  A policy may move ``when``
    forward and/or replace ``seq`` to explore alternative interleavings
    of the same program -- the schedule-exploration race detector in
    :mod:`repro.san` builds its random/PCT/replay schedules on this hook.

    Contract: the returned ``when`` must be ``>= now`` (events cannot fire
    in the past) and the returned ``seq`` must be unique per simulator
    (heap tuples must never compare equal in their first two fields).
    A policy that also records its decisions can later replay a run
    deterministically by returning the recorded pairs verbatim.
    """

    def on_schedule(self, when: float, now: float,
                    process: Optional["Process"]) -> Tuple[float, int]:
        """Decide ``(when, seq)`` for one event.

        ``process`` is the resuming process, or ``None`` for a plain
        ``call_at`` callback (state mutations in the simulated fabric).
        """
        raise NotImplementedError


class Simulator:
    """The discrete-event scheduler.

    Typical use::

        sim = Simulator()
        sim.spawn(worker(), name="worker-0")
        sim.run(until=1_000_000.0)   # one simulated second

    ``policy`` (default ``None``) perturbs scheduling decisions for race
    exploration; the ``None`` path is byte-identical to the historical
    behaviour and stays on the hot path's single-branch fast exit.
    """

    def __init__(self, policy: Optional[SchedulerPolicy] = None) -> None:
        self.now: float = 0.0
        #: Event heap -- used only when a :class:`SchedulerPolicy` is
        #: installed (policies mint their own (when, seq) pairs, which
        #: breaks the monotone-seq invariant the calendar queue relies
        #: on).  The policy-``None`` fast path never touches it.
        self._queue: List[Tuple[float, int, Optional[Process], Any]] = []
        #: Calendar queue (policy ``None`` only): one FIFO bucket per
        #: distinct future timestamp plus a min-heap of the distinct
        #: times themselves.  Because the global sequence counter is
        #: monotone, append order within a bucket *is* seq order, so
        #: "pop the earliest time, replay its bucket in order" delivers
        #: the exact (when, seq) order of the all-heap kernel -- while a
        #: heap of N events shrinks to a heap of (distinct times) and
        #: every co-timed event costs an O(1) append/iteration instead
        #: of an O(log N) sift.
        self._buckets: Dict[float, List[Tuple[Optional[Process], Any]]] = {}
        self._horizon: List[float] = []
        #: Same-time ready FIFO (policy ``None`` only).  Every schedule
        #: for the *current* timestamp lands here instead of a bucket.
        #: Ordering invariant: a bucket entry at time T was pushed while
        #: the clock was still < T (zero-delay schedules at T are routed
        #: here instead), so all bucket entries co-timed with the clock
        #: precede every ready entry in global sequence order, and the
        #: deque itself is FIFO -- together that reproduces the exact
        #: (when, seq) order of the all-heap kernel.
        self._ready: Deque[Tuple[Optional[Process], Any]] = deque()
        self._next_seq = itertools.count().__next__
        self._stopped = False
        self._policy = policy
        #: Events delivered so far (resumes + callbacks); the scale suite
        #: reports events/s from this.
        self.events_processed: int = 0

    # -- scheduling ------------------------------------------------------

    def spawn(self, generator: ProcessGenerator, name: str = "proc") -> Process:
        """Register ``generator`` as a process starting at the current time."""
        process = Process(self, generator, name)
        self._schedule(0.0, process, None)
        return process

    def _schedule(self, delay: float, process: Process, value: Any) -> None:
        if self._policy is None:
            if delay <= 0.0:
                self._ready.append((process, value))
                return
            when = self.now + delay
            bucket = self._buckets.get(when)
            if bucket is None:
                self._buckets[when] = [(process, value)]
                heapq.heappush(self._horizon, when)
            else:
                bucket.append((process, value))
            return
        when, seq = self._policy.on_schedule(self.now + delay, self.now, process)
        heapq.heappush(self._queue, (when, seq, process, value))

    def call_at(self, when: float, callback: Callable[[], None]) -> None:
        """Run a plain callback at absolute simulated time ``when``.

        Callbacks for the current instant (or the past) join the ready
        FIFO; future callbacks go into their timestamp's bucket.  Either
        way they run without a Process wrapper -- they are the fabric's
        hot path.
        """
        if self._policy is None:
            if when <= self.now:
                self._ready.append((None, callback))
                return
            bucket = self._buckets.get(when)
            if bucket is None:
                self._buckets[when] = [(None, callback)]
                heapq.heappush(self._horizon, when)
            else:
                bucket.append((None, callback))
            return
        when, seq = self._policy.on_schedule(max(when, self.now), self.now, None)
        heapq.heappush(self._queue, (when, seq, None, callback))

    def event(self) -> Event:
        return Event(self)

    # -- execution -------------------------------------------------------

    def _drain(
        self,
        until: Optional[float],
        target: Optional[Process],
        limit: Optional[float],
    ) -> None:
        """The single event loop behind :meth:`run` and
        :meth:`run_until_complete`.

        Runs events until both queues empty, :meth:`stop` is called,
        ``target`` finishes, or the next event lies beyond ``until``
        (pause: event stays queued) / ``limit`` (error).

        Delivery is batched per timestamp: the loop replays the calendar
        bucket co-timed with the clock in append (= sequence) order,
        then the same-time ready FIFO (which only grows by appends while
        draining), and only then pays the ``until``/``limit``
        comparisons and advances time -- once per timestamp instead of
        once per event.  ``Process._step`` is inlined for the
        Delay/Event fast paths; all of this preserves the exact
        (when, seq) delivery order of the all-heap kernel (see
        ``_buckets``/``_ready``), which the determinism digests pin
        down.
        """
        if self._policy is not None:
            self._drain_policy(until, target, limit)
            return
        buckets = self._buckets
        horizon = self._horizon
        ready = self._ready
        pop = heapq.heappop
        push = heapq.heappush
        popleft = ready.popleft
        append = ready.append
        delay_cls = Delay
        event_cls = Event
        events = 0
        try:
            while horizon or ready:
                if self._stopped or (target is not None and target.finished):
                    return
                now = self.now
                # (1) The bucket co-timed with the clock (every entry was
                # pushed before the clock reached `now`, so the whole
                # bucket precedes every ready entry).  An early return
                # must leave the unconsumed suffix queued, hence the
                # index walk instead of a destructive pop.
                if horizon and horizon[0] == now:
                    bucket = buckets[now]
                    index = 0
                    while index < len(bucket):
                        process, value = bucket[index]
                        index += 1
                        events += 1
                        if process is None:
                            value()  # plain callback scheduled via call_at
                        elif not process.finished:
                            try:
                                yielded = process.generator.send(value)
                            except StopIteration as stop:
                                process.finished = True
                                process.result = stop.value
                                process.done_event.trigger(stop.value)
                            else:
                                cls = yielded.__class__
                                if cls is delay_cls:
                                    duration = yielded.duration
                                    if duration > 0.0:
                                        when = now + duration
                                        slot = buckets.get(when)
                                        if slot is None:
                                            buckets[when] = [(process, None)]
                                            push(horizon, when)
                                        else:
                                            slot.append((process, None))
                                    else:
                                        append((process, None))
                                elif cls is event_cls:
                                    if yielded.triggered:
                                        append((process, yielded.value))
                                    else:
                                        yielded._waiters.append(process)
                                else:
                                    self._resume_slow(process, yielded)
                        if self._stopped or (
                            target is not None and target.finished
                        ):
                            del bucket[:index]
                            if not bucket:
                                del buckets[now]
                                pop(horizon)
                            return
                    del buckets[now]
                    pop(horizon)
                # (2) Same-time FIFO wakes; appends during the drain keep
                # their scheduling order.
                while ready:
                    process, value = popleft()
                    events += 1
                    if process is None:
                        value()
                    elif not process.finished:
                        try:
                            yielded = process.generator.send(value)
                        except StopIteration as stop:
                            process.finished = True
                            process.result = stop.value
                            process.done_event.trigger(stop.value)
                        else:
                            cls = yielded.__class__
                            if cls is delay_cls:
                                duration = yielded.duration
                                if duration > 0.0:
                                    when = now + duration
                                    slot = buckets.get(when)
                                    if slot is None:
                                        buckets[when] = [(process, None)]
                                        push(horizon, when)
                                    else:
                                        slot.append((process, None))
                                else:
                                    append((process, None))
                            elif cls is event_cls:
                                if yielded.triggered:
                                    append((process, yielded.value))
                                else:
                                    yielded._waiters.append(process)
                            else:
                                self._resume_slow(process, yielded)
                    if self._stopped or (target is not None and target.finished):
                        return
                # (3) Advance: pay the pause/limit checks once per step.
                if not horizon:
                    return
                when = horizon[0]
                if until is not None and when > until:
                    self.now = until
                    return
                if limit is not None and when > limit:
                    raise InvalidState(
                        f"{target.name if target else 'run'} did not finish "
                        f"before {limit}"
                    )
                self.now = when
        finally:
            self.events_processed += events

    def _resume_slow(self, process: Process, yielded: Any) -> None:
        """Out-of-line tail of the inlined ``Process._step``: Delay/Event
        subclasses and the garbage-yield TypeError."""
        if isinstance(yielded, Delay):
            self._schedule(yielded.duration, process, None)
        elif isinstance(yielded, Event):
            yielded.add_waiter(process)
        else:
            raise TypeError(
                f"process {process.name!r} yielded {yielded!r}; "
                f"expected Delay or Event"
            )

    def _drain_policy(
        self,
        until: Optional[float],
        target: Optional[Process],
        limit: Optional[float],
    ) -> None:
        """Pure-heap event loop used when a :class:`SchedulerPolicy` is
        installed.

        Policies observe and perturb *every* scheduling decision, so this
        path keeps the historical one-pop-per-event structure (no ready
        FIFO, no inlining) -- the explorer/PCT/replay schedules in
        :mod:`repro.san` depend on it.
        """
        queue = self._queue
        pop = heapq.heappop
        events = 0
        try:
            while queue and not self._stopped:
                if target is not None and target.finished:
                    return
                when, _seq, process, value = queue[0]
                if until is not None and when > until:
                    self.now = until
                    return
                if limit is not None and when > limit:
                    raise InvalidState(
                        f"{target.name if target else 'run'} did not finish "
                        f"before {limit}"
                    )
                pop(queue)
                self.now = when
                events += 1
                if process is None:
                    value()  # plain callback scheduled via call_at
                elif not process.finished:
                    process._step(value)
        finally:
            self.events_processed += events

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue drains, :meth:`stop` is called, or
        simulated time reaches ``until``.  Returns the final simulated
        time.
        """
        self._stopped = False
        self._drain(until, None, None)
        if until is not None and self.now < until and not self._stopped:
            self.now = until
        return self.now

    def run_until_complete(self, process: Process, limit: float = 1e12) -> Any:
        """Run until ``process`` finishes; returns its result.

        :meth:`stop` interrupts this entry point too (returning ``None``
        when the process has not finished); an empty queue with the
        process still pending is a deadlock.
        """
        self._stopped = False
        self._drain(None, process, limit)
        if process.finished:
            return process.result
        if self._stopped:
            return None
        raise InvalidState(
            f"deadlock: {process.name} pending with empty event queue"
        )

    def stop(self) -> None:
        """Stop the current :meth:`run` / :meth:`run_until_complete`
        after the in-flight step."""
        self._stopped = True

    # -- helpers ---------------------------------------------------------

    def clock(self) -> SimClock:
        return SimClock(self)

    def pending(self) -> int:
        queued = sum(len(bucket) for bucket in self._buckets.values())
        return len(self._queue) + queued + len(self._ready)


def all_of(sim: Simulator, processes: Iterable[Process]) -> ProcessGenerator:
    """A coroutine that waits for every process in ``processes``."""
    for process in processes:
        if not process.finished:
            yield process.done_event
