"""Event loop, processes, and events for the discrete-event simulator.

Time is a ``float`` in *microseconds*; the paper's latency numbers
(InfiniBand RDMA in single-digit microseconds, Ethernet round trips in tens
of microseconds) are most natural at this scale.

Processes are plain generator functions.  A process may yield:

* :class:`Delay` -- suspend for a fixed amount of simulated time,
* :class:`Event` -- suspend until the event is triggered; ``event.value``
  is sent back into the generator when it resumes.

The kernel is deterministic: events scheduled for the same timestamp fire
in scheduling order (a monotonically increasing sequence number breaks
ties), so a fixed random seed reproduces the exact same run.

The event loop is the hottest code in the repository -- every simulated
request is at least one heap operation plus one generator resume -- so
:meth:`Simulator._drain` binds its dependencies to locals and dispatches
on exact yield types.  Optimizations here must be behaviour-invariant;
``benchmarks/perf`` and the determinism-digest test enforce that.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Dict, Generator, Iterable, List, Optional, Tuple

from repro.errors import InvalidState

ProcessGenerator = Generator[Any, Any, Any]


class Delay:
    """Yield value suspending the process for ``duration`` microseconds."""

    __slots__ = ("duration",)

    def __init__(self, duration: float) -> None:
        if duration < 0:
            raise ValueError(f"negative delay: {duration}")
        self.duration = duration

    def __repr__(self) -> str:
        return f"Delay({self.duration})"


#: Interned delays for recurring durations (sync intervals, fixed service
#: times).  Delay objects are immutable, so sharing one instance across
#: yields -- even across simulators -- is safe and skips an allocation on
#: the hot path.
_DELAY_CACHE: Dict[float, Delay] = {}
_DELAY_CACHE_MAX = 1024


def delay_of(duration: float) -> Delay:
    """A pooled :class:`Delay`; prefer this for repeated durations."""
    pooled = _DELAY_CACHE.get(duration)
    if pooled is None:
        pooled = Delay(duration)
        if len(_DELAY_CACHE) < _DELAY_CACHE_MAX:
            _DELAY_CACHE[duration] = pooled
    return pooled


class Event:
    """A one-shot event processes can wait on.

    ``trigger(value)`` wakes every waiting process and delivers ``value``
    as the result of the ``yield``.  Waiting on an already-triggered event
    resumes the process immediately (at the current timestamp).
    """

    __slots__ = ("sim", "triggered", "value", "_waiters")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.triggered = False
        self.value: Any = None
        self._waiters: List["Process"] = []

    def trigger(self, value: Any = None) -> None:
        if self.triggered:
            raise InvalidState("event already triggered")
        self.triggered = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        schedule = self.sim._schedule
        for process in waiters:
            schedule(0.0, process, value)

    def add_waiter(self, process: "Process") -> None:
        if self.triggered:
            self.sim._schedule(0.0, process, self.value)
        else:
            self._waiters.append(process)


class Process:
    """Wrapper around a running generator coroutine."""

    __slots__ = ("sim", "generator", "name", "finished", "result", "done_event")

    def __init__(self, sim: "Simulator", generator: ProcessGenerator, name: str) -> None:
        self.sim = sim
        self.generator = generator
        self.name = name
        self.finished = False
        self.result: Any = None
        self.done_event = Event(sim)

    def _step(self, send_value: Any) -> None:
        """Advance the generator by one yield, scheduling its next resume."""
        try:
            yielded = self.generator.send(send_value)
        except StopIteration as stop:
            self.finished = True
            self.result = stop.value
            self.done_event.trigger(stop.value)
            return
        # Exact-type checks first: Delay and Event are final in practice,
        # so one identity compare replaces an isinstance pair per yield.
        cls = yielded.__class__
        if cls is Delay:
            self.sim._schedule(yielded.duration, self, None)
        elif cls is Event:
            yielded.add_waiter(self)
        elif isinstance(yielded, Delay):
            self.sim._schedule(yielded.duration, self, None)
        elif isinstance(yielded, Event):
            yielded.add_waiter(self)
        else:
            raise TypeError(
                f"process {self.name!r} yielded {yielded!r}; expected Delay or Event"
            )

    def __repr__(self) -> str:
        state = "done" if self.finished else "running"
        return f"<Process {self.name} {state}>"


class SimClock:
    """Read-only view of simulator time, shareable with components."""

    __slots__ = ("_sim",)

    def __init__(self, sim: "Simulator") -> None:
        self._sim = sim

    @property
    def now(self) -> float:
        return self._sim.now


class SchedulerPolicy:
    """Pluggable perturbation of the kernel's scheduling decisions.

    Every event pushed onto the heap carries ``(when, seq)``; by default
    ``seq`` is a monotonically increasing counter, which makes same-time
    events fire in scheduling order (FIFO).  A policy may move ``when``
    forward and/or replace ``seq`` to explore alternative interleavings
    of the same program -- the schedule-exploration race detector in
    :mod:`repro.san` builds its random/PCT/replay schedules on this hook.

    Contract: the returned ``when`` must be ``>= now`` (events cannot fire
    in the past) and the returned ``seq`` must be unique per simulator
    (heap tuples must never compare equal in their first two fields).
    A policy that also records its decisions can later replay a run
    deterministically by returning the recorded pairs verbatim.
    """

    def on_schedule(self, when: float, now: float,
                    process: Optional["Process"]) -> Tuple[float, int]:
        """Decide ``(when, seq)`` for one event.

        ``process`` is the resuming process, or ``None`` for a plain
        ``call_at`` callback (state mutations in the simulated fabric).
        """
        raise NotImplementedError


class Simulator:
    """The discrete-event scheduler.

    Typical use::

        sim = Simulator()
        sim.spawn(worker(), name="worker-0")
        sim.run(until=1_000_000.0)   # one simulated second

    ``policy`` (default ``None``) perturbs scheduling decisions for race
    exploration; the ``None`` path is byte-identical to the historical
    behaviour and stays on the hot path's single-branch fast exit.
    """

    def __init__(self, policy: Optional[SchedulerPolicy] = None) -> None:
        self.now: float = 0.0
        self._queue: List[Tuple[float, int, Optional[Process], Any]] = []
        self._next_seq = itertools.count().__next__
        self._stopped = False
        self._policy = policy

    # -- scheduling ------------------------------------------------------

    def spawn(self, generator: ProcessGenerator, name: str = "proc") -> Process:
        """Register ``generator`` as a process starting at the current time."""
        process = Process(self, generator, name)
        self._schedule(0.0, process, None)
        return process

    def _schedule(self, delay: float, process: Process, value: Any) -> None:
        when = self.now + delay
        if self._policy is None:
            seq = self._next_seq()
        else:
            when, seq = self._policy.on_schedule(when, self.now, process)
        heapq.heappush(self._queue, (when, seq, process, value))

    def call_at(self, when: float, callback: Callable[[], None]) -> None:
        """Run a plain callback at absolute simulated time ``when``.

        Callbacks are scheduled directly on the event heap (no Process
        wrapper) -- they are the fabric's hot path.
        """
        when = max(when, self.now)
        if self._policy is None:
            seq = self._next_seq()
        else:
            when, seq = self._policy.on_schedule(when, self.now, None)
        heapq.heappush(self._queue, (when, seq, None, callback))

    def event(self) -> Event:
        return Event(self)

    # -- execution -------------------------------------------------------

    def _drain(
        self,
        until: Optional[float],
        target: Optional[Process],
        limit: Optional[float],
    ) -> None:
        """The single event loop behind :meth:`run` and
        :meth:`run_until_complete`.

        Pops events until the queue empties, :meth:`stop` is called,
        ``target`` finishes, or the next event lies beyond ``until``
        (pause: event stays queued) / ``limit`` (error).
        """
        queue = self._queue
        pop = heapq.heappop
        while queue and not self._stopped:
            if target is not None and target.finished:
                return
            when, _seq, process, value = queue[0]
            if until is not None and when > until:
                self.now = until
                return
            if limit is not None and when > limit:
                raise InvalidState(
                    f"{target.name if target else 'run'} did not finish "
                    f"before {limit}"
                )
            pop(queue)
            self.now = when
            if process is None:
                value()  # plain callback scheduled via call_at
            elif not process.finished:
                process._step(value)

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue drains, :meth:`stop` is called, or
        simulated time reaches ``until``.  Returns the final simulated
        time.
        """
        self._stopped = False
        self._drain(until, None, None)
        if until is not None and self.now < until and not self._stopped:
            self.now = until
        return self.now

    def run_until_complete(self, process: Process, limit: float = 1e12) -> Any:
        """Run until ``process`` finishes; returns its result.

        :meth:`stop` interrupts this entry point too (returning ``None``
        when the process has not finished); an empty queue with the
        process still pending is a deadlock.
        """
        self._stopped = False
        self._drain(None, process, limit)
        if process.finished:
            return process.result
        if self._stopped:
            return None
        raise InvalidState(
            f"deadlock: {process.name} pending with empty event queue"
        )

    def stop(self) -> None:
        """Stop the current :meth:`run` / :meth:`run_until_complete`
        after the in-flight step."""
        self._stopped = True

    # -- helpers ---------------------------------------------------------

    def clock(self) -> SimClock:
        return SimClock(self)

    def pending(self) -> int:
        return len(self._queue)


def all_of(sim: Simulator, processes: Iterable[Process]) -> ProcessGenerator:
    """A coroutine that waits for every process in ``processes``."""
    for process in processes:
        if not process.finished:
            yield process.done_event
