"""Event loop, processes, and events for the discrete-event simulator.

Time is a ``float`` in *microseconds*; the paper's latency numbers
(InfiniBand RDMA in single-digit microseconds, Ethernet round trips in tens
of microseconds) are most natural at this scale.

Processes are plain generator functions.  A process may yield:

* :class:`Delay` -- suspend for a fixed amount of simulated time,
* :class:`Event` -- suspend until the event is triggered; ``event.value``
  is sent back into the generator when it resumes.

The kernel is deterministic: events scheduled for the same timestamp fire
in scheduling order (a monotonically increasing sequence number breaks
ties), so a fixed random seed reproduces the exact same run.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

from repro.errors import InvalidState

ProcessGenerator = Generator[Any, Any, Any]


class Delay:
    """Yield value suspending the process for ``duration`` microseconds."""

    __slots__ = ("duration",)

    def __init__(self, duration: float):
        if duration < 0:
            raise ValueError(f"negative delay: {duration}")
        self.duration = duration

    def __repr__(self) -> str:
        return f"Delay({self.duration})"


class Event:
    """A one-shot event processes can wait on.

    ``trigger(value)`` wakes every waiting process and delivers ``value``
    as the result of the ``yield``.  Waiting on an already-triggered event
    resumes the process immediately (at the current timestamp).
    """

    __slots__ = ("sim", "triggered", "value", "_waiters")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.triggered = False
        self.value: Any = None
        self._waiters: List["Process"] = []

    def trigger(self, value: Any = None) -> None:
        if self.triggered:
            raise InvalidState("event already triggered")
        self.triggered = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for process in waiters:
            self.sim._schedule(0.0, process, value)

    def add_waiter(self, process: "Process") -> None:
        if self.triggered:
            self.sim._schedule(0.0, process, self.value)
        else:
            self._waiters.append(process)


class Process:
    """Wrapper around a running generator coroutine."""

    __slots__ = ("sim", "generator", "name", "finished", "result", "done_event")

    def __init__(self, sim: "Simulator", generator: ProcessGenerator, name: str):
        self.sim = sim
        self.generator = generator
        self.name = name
        self.finished = False
        self.result: Any = None
        self.done_event = Event(sim)

    def _step(self, send_value: Any) -> None:
        """Advance the generator by one yield, scheduling its next resume."""
        try:
            yielded = self.generator.send(send_value)
        except StopIteration as stop:
            self.finished = True
            self.result = stop.value
            self.done_event.trigger(stop.value)
            return
        if isinstance(yielded, Delay):
            self.sim._schedule(yielded.duration, self, None)
        elif isinstance(yielded, Event):
            yielded.add_waiter(self)
        else:
            raise TypeError(
                f"process {self.name!r} yielded {yielded!r}; expected Delay or Event"
            )

    def __repr__(self) -> str:
        state = "done" if self.finished else "running"
        return f"<Process {self.name} {state}>"


class SimClock:
    """Read-only view of simulator time, shareable with components."""

    __slots__ = ("_sim",)

    def __init__(self, sim: "Simulator"):
        self._sim = sim

    @property
    def now(self) -> float:
        return self._sim.now


class Simulator:
    """The discrete-event scheduler.

    Typical use::

        sim = Simulator()
        sim.spawn(worker(), name="worker-0")
        sim.run(until=1_000_000.0)   # one simulated second
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: List[Tuple[float, int, Process, Any]] = []
        self._sequence = itertools.count()
        self._stopped = False

    # -- scheduling ------------------------------------------------------

    def spawn(self, generator: ProcessGenerator, name: str = "proc") -> Process:
        """Register ``generator`` as a process starting at the current time."""
        process = Process(self, generator, name)
        self._schedule(0.0, process, None)
        return process

    def _schedule(self, delay: float, process: Process, value: Any) -> None:
        heapq.heappush(
            self._queue, (self.now + delay, next(self._sequence), process, value)
        )

    def call_at(self, when: float, callback: Callable[[], None]) -> None:
        """Run a plain callback at absolute simulated time ``when``.

        Callbacks are scheduled directly on the event heap (no Process
        wrapper) -- they are the fabric's hot path.
        """
        heapq.heappush(
            self._queue, (max(when, self.now), next(self._sequence), None, callback)
        )

    def event(self) -> Event:
        return Event(self)

    # -- execution -------------------------------------------------------

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue drains or simulated time reaches ``until``.

        Returns the final simulated time.
        """
        self._stopped = False
        while self._queue and not self._stopped:
            when, _, process, value = self._queue[0]
            if until is not None and when > until:
                self.now = until
                break
            heapq.heappop(self._queue)
            self.now = when
            if process is None:
                value()  # plain callback scheduled via call_at
            elif not process.finished:
                process._step(value)
        if until is not None and self.now < until and not self._stopped:
            self.now = until
        return self.now

    def run_until_complete(self, process: Process, limit: float = 1e12) -> Any:
        """Run until ``process`` finishes; returns its result."""
        while not process.finished:
            if not self._queue:
                raise InvalidState(
                    f"deadlock: {process.name} pending with empty event queue"
                )
            when, _, proc, value = heapq.heappop(self._queue)
            if when > limit:
                raise InvalidState(f"{process.name} did not finish before {limit}")
            self.now = when
            if proc is None:
                value()
            elif not proc.finished:
                proc._step(value)
        return process.result

    def stop(self) -> None:
        """Stop the current :meth:`run` after the in-flight step."""
        self._stopped = True

    # -- helpers ---------------------------------------------------------

    def clock(self) -> SimClock:
        return SimClock(self)

    def pending(self) -> int:
        return len(self._queue)


def all_of(sim: Simulator, processes: Iterable[Process]) -> ProcessGenerator:
    """A coroutine that waits for every process in ``processes``."""
    for process in processes:
        if not process.finished:
            yield process.done_event
