"""Relational layer: schema, SQL front end, and the iterator executor.

Tell's processing nodes parse SQL, plan it against the catalog, and
execute it with the iterator model over records fetched from the shared
store ("data is shipped to the query", Section 2.1).
"""

from repro.sql.types import ColumnType
from repro.sql.schema import Catalog, Column, IndexDef, TableSchema
from repro.sql.table import Table

__all__ = ["Catalog", "Column", "ColumnType", "IndexDef", "Table", "TableSchema"]
