"""AST node definitions for the SQL dialect."""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple


# -- expressions -------------------------------------------------------------


class Expr:
    __slots__ = ()


class Literal(Expr):
    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value

    def __repr__(self) -> str:
        return f"Literal({self.value!r})"


class Param(Expr):
    """A positional ``?`` placeholder."""

    __slots__ = ("index",)

    def __init__(self, index: int):
        self.index = index

    def __repr__(self) -> str:
        return f"Param({self.index})"


class ColumnRef(Expr):
    __slots__ = ("table", "name")

    def __init__(self, table: Optional[str], name: str):
        self.table = table.lower() if table else None
        self.name = name.lower()

    def __repr__(self) -> str:
        return f"Col({self.table}.{self.name})" if self.table else f"Col({self.name})"


class BinaryOp(Expr):
    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expr, right: Expr):
        self.op = op
        self.left = left
        self.right = right

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


class UnaryOp(Expr):
    __slots__ = ("op", "operand")

    def __init__(self, op: str, operand: Expr):
        self.op = op  # "-" or "NOT"
        self.operand = operand


class FuncCall(Expr):
    __slots__ = ("name", "args", "star", "distinct")

    def __init__(self, name: str, args: Sequence[Expr], star: bool = False,
                 distinct: bool = False):
        self.name = name.lower()
        self.args = list(args)
        self.star = star
        self.distinct = distinct

    def __repr__(self) -> str:
        inner = "*" if self.star else ", ".join(repr(a) for a in self.args)
        return f"{self.name}({inner})"


class InList(Expr):
    __slots__ = ("operand", "items", "negated")

    def __init__(self, operand: Expr, items: Sequence[Expr], negated: bool):
        self.operand = operand
        self.items = list(items)
        self.negated = negated


class Between(Expr):
    __slots__ = ("operand", "low", "high", "negated")

    def __init__(self, operand: Expr, low: Expr, high: Expr, negated: bool):
        self.operand = operand
        self.low = low
        self.high = high
        self.negated = negated


class IsNull(Expr):
    __slots__ = ("operand", "negated")

    def __init__(self, operand: Expr, negated: bool):
        self.operand = operand
        self.negated = negated


class Like(Expr):
    __slots__ = ("operand", "pattern", "negated")

    def __init__(self, operand: Expr, pattern: Expr, negated: bool):
        self.operand = operand
        self.pattern = pattern
        self.negated = negated


# -- statements -------------------------------------------------------------


class Statement:
    __slots__ = ()


class ColumnClause:
    __slots__ = ("name", "type_name", "nullable", "default", "unique")

    def __init__(self, name: str, type_name: str, nullable: bool, default: Any,
                 unique: bool = False):
        self.name = name
        self.type_name = type_name
        self.nullable = nullable
        self.default = default
        self.unique = unique


class CreateTable(Statement):
    __slots__ = ("name", "columns", "primary_key")

    def __init__(self, name: str, columns: List[ColumnClause],
                 primary_key: List[str]):
        self.name = name
        self.columns = columns
        self.primary_key = primary_key


class CreateIndex(Statement):
    __slots__ = ("name", "table", "columns", "unique")

    def __init__(self, name: str, table: str, columns: List[str], unique: bool):
        self.name = name
        self.table = table
        self.columns = columns
        self.unique = unique


class DropTable(Statement):
    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name


class Insert(Statement):
    __slots__ = ("table", "columns", "rows", "select")

    def __init__(self, table: str, columns: Optional[List[str]],
                 rows: List[List[Expr]], select: Optional["Select"] = None):
        self.table = table
        self.columns = columns
        self.rows = rows          # VALUES form (empty when select is set)
        self.select = select      # INSERT INTO ... SELECT form


class TableRef:
    __slots__ = ("name", "alias")

    def __init__(self, name: str, alias: Optional[str]):
        self.name = name.lower()
        self.alias = (alias or name).lower()


class Join:
    __slots__ = ("table", "on", "kind")

    def __init__(self, table: TableRef, on: Expr, kind: str = "inner"):
        self.table = table
        self.on = on
        self.kind = kind


class SelectItem:
    __slots__ = ("expr", "alias", "star", "table_star")

    def __init__(self, expr: Optional[Expr], alias: Optional[str],
                 star: bool = False, table_star: Optional[str] = None):
        self.expr = expr
        self.alias = alias
        self.star = star
        self.table_star = table_star  # "t.*"


class Select(Statement):
    __slots__ = ("items", "table", "joins", "where", "group_by", "having",
                 "order_by", "limit", "distinct", "for_update")

    def __init__(
        self,
        items: List[SelectItem],
        table: Optional[TableRef],
        joins: List[Join],
        where: Optional[Expr],
        group_by: List[Expr],
        having: Optional[Expr],
        order_by: List[Tuple[Expr, bool]],  # (expr, descending)
        limit: Optional[int],
        distinct: bool = False,
        for_update: bool = False,
    ):
        self.items = items
        self.table = table
        self.joins = joins
        self.where = where
        self.group_by = group_by
        self.having = having
        self.order_by = order_by
        self.limit = limit
        self.distinct = distinct
        self.for_update = for_update


class Update(Statement):
    __slots__ = ("table", "assignments", "where")

    def __init__(self, table: str, assignments: List[Tuple[str, Expr]],
                 where: Optional[Expr]):
        self.table = table
        self.assignments = assignments
        self.where = where


class Delete(Statement):
    __slots__ = ("table", "where")

    def __init__(self, table: str, where: Optional[Expr]):
        self.table = table
        self.where = where


class BeginStmt(Statement):
    __slots__ = ()


class CommitStmt(Statement):
    __slots__ = ()


class RollbackStmt(Statement):
    __slots__ = ()
