"""Planning and execution of parsed SQL statements.

The executor follows the iterator model of the paper's query processor,
materialized stage by stage (OLTP result sets are small; OLAP scans ship
data to the query by construction).  Access-path selection is rule-based:

* a conjunction of equality predicates covering an index's full key ->
  index lookup;
* equality/range predicates on a prefix of an index key -> index range
  scan;
* otherwise -> full table scan through the storage layer's Scan.

Joins prefer an index nested-loop when the inner table has a usable index
on the join key, falling back to a hash join for equi-joins and to a
filtered nested loop otherwise.
"""

from __future__ import annotations

import re
from typing import Any, Dict, Generator, List, Optional, Sequence, Tuple

from repro.errors import SqlPlanError
from repro.sql import ast_nodes as ast
from repro.sql.schema import IndexDef, TableSchema
from repro.sql.table import Table

AGGREGATE_FUNCTIONS = {"count", "sum", "avg", "min", "max"}
SCALAR_FUNCTIONS = {"abs", "lower", "upper", "length", "round", "coalesce",
                    "substr"}

Row = Dict[str, Any]  # "alias.column" -> value (plus bare names when unique)


class ResultSet:
    """What a statement execution returns.

    Every ``Session.execute`` call produces one of these: ``columns``,
    ``rows`` (tuples), and ``rowcount`` (rows affected for DML).  The
    helpers cover the common shapes -- ``dicts()`` for labelled rows,
    ``one()`` for exactly-one-row queries, ``scalar()`` for single
    values.  ``Session.query`` remains the dict-rows convenience wrapper.
    """

    __slots__ = ("columns", "rows", "rowcount")

    def __init__(self, columns: List[str], rows: List[Tuple[Any, ...]],
                 rowcount: int):
        self.columns = columns
        self.rows = rows
        self.rowcount = rowcount

    def dicts(self) -> List[Dict[str, Any]]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    def one(self) -> Tuple[Any, ...]:
        """The single row of the result.

        Raises :class:`repro.errors.NoResultRows` on an empty result and
        :class:`repro.errors.MultipleResultRows` when more than one row
        came back -- use it when the query must identify exactly one row.
        """
        from repro.errors import MultipleResultRows, NoResultRows

        if not self.rows:
            raise NoResultRows("one() on an empty result")
        if len(self.rows) > 1:
            raise MultipleResultRows(
                f"one() on a result with {len(self.rows)} rows"
            )
        return self.rows[0]

    def scalar(self) -> Any:
        """First column of the first row, or ``None`` for an empty result
        (the lenient counterpart of ``one()[0]``)."""
        if not self.rows or not self.rows[0]:
            return None
        return self.rows[0][0]

    def __iter__(self):
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:
        return f"<ResultSet {self.columns} x{len(self.rows)}>"


# ---------------------------------------------------------------------------
# Expression evaluation
# ---------------------------------------------------------------------------


def _like_to_regex(pattern: str) -> "re.Pattern":
    out = ["^"]
    for ch in pattern:
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
    out.append("$")
    return re.compile("".join(out), re.IGNORECASE)


def evaluate(expr: ast.Expr, row: Row, params: Sequence[Any]) -> Any:
    """Evaluate an expression against one row environment."""
    if isinstance(expr, ast.Literal):
        return expr.value
    if isinstance(expr, ast.Param):
        try:
            return params[expr.index]
        except IndexError:
            raise SqlPlanError(
                f"statement has parameter ${expr.index} but only "
                f"{len(params)} values were bound"
            )
    if isinstance(expr, ast.ColumnRef):
        key = f"{expr.table}.{expr.name}" if expr.table else expr.name
        if key in row:
            return row[key]
        raise SqlPlanError(f"unknown column {key!r}")
    if isinstance(expr, ast.BinaryOp):
        return _binary(expr, row, params)
    if isinstance(expr, ast.UnaryOp):
        value = evaluate(expr.operand, row, params)
        if expr.op == "-":
            return None if value is None else -value
        if expr.op == "not":
            return None if value is None else not value
        raise SqlPlanError(f"unknown unary operator {expr.op!r}")
    if isinstance(expr, ast.FuncCall):
        return _scalar_function(expr, row, params)
    if isinstance(expr, ast.InList):
        value = evaluate(expr.operand, row, params)
        if value is None:
            return None
        members = [evaluate(item, row, params) for item in expr.items]
        result = value in members
        return not result if expr.negated else result
    if isinstance(expr, ast.Between):
        value = evaluate(expr.operand, row, params)
        low = evaluate(expr.low, row, params)
        high = evaluate(expr.high, row, params)
        if value is None or low is None or high is None:
            return None
        result = low <= value <= high
        return not result if expr.negated else result
    if isinstance(expr, ast.IsNull):
        value = evaluate(expr.operand, row, params)
        result = value is None
        return not result if expr.negated else result
    if isinstance(expr, ast.Like):
        value = evaluate(expr.operand, row, params)
        pattern = evaluate(expr.pattern, row, params)
        if value is None or pattern is None:
            return None
        result = bool(_like_to_regex(pattern).match(str(value)))
        return not result if expr.negated else result
    raise SqlPlanError(f"cannot evaluate {expr!r}")


def _binary(expr: ast.BinaryOp, row: Row, params: Sequence[Any]) -> Any:
    op = expr.op
    if op == "and":
        left = evaluate(expr.left, row, params)
        if left is False:
            return False
        right = evaluate(expr.right, row, params)
        if right is False:
            return False
        if left is None or right is None:
            return None
        return True
    if op == "or":
        left = evaluate(expr.left, row, params)
        if left is True:
            return True
        right = evaluate(expr.right, row, params)
        if right is True:
            return True
        if left is None or right is None:
            return None
        return False
    left = evaluate(expr.left, row, params)
    right = evaluate(expr.right, row, params)
    if left is None or right is None:
        return None
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        return left / right
    raise SqlPlanError(f"unknown operator {op!r}")


def _scalar_function(expr: ast.FuncCall, row: Row, params: Sequence[Any]) -> Any:
    name = expr.name
    if name in AGGREGATE_FUNCTIONS:
        # Aggregates are computed by the grouping stage; during final
        # projection their results live in the row under a synthetic key.
        key = _aggregate_key(expr)
        if key in row:
            return row[key]
        raise SqlPlanError(f"aggregate {name} used outside GROUP BY context")
    args = [evaluate(arg, row, params) for arg in expr.args]
    if name == "abs":
        return None if args[0] is None else abs(args[0])
    if name == "lower":
        return None if args[0] is None else str(args[0]).lower()
    if name == "upper":
        return None if args[0] is None else str(args[0]).upper()
    if name == "length":
        return None if args[0] is None else len(str(args[0]))
    if name == "round":
        digits = int(args[1]) if len(args) > 1 else 0
        return None if args[0] is None else round(args[0], digits)
    if name == "coalesce":
        for value in args:
            if value is not None:
                return value
        return None
    if name == "substr":
        if args[0] is None:
            return None
        start = int(args[1]) - 1
        if len(args) > 2:
            return str(args[0])[start : start + int(args[2])]
        return str(args[0])[start:]
    raise SqlPlanError(f"unknown function {name!r}")


def _aggregate_key(call: ast.FuncCall) -> str:
    inner = "*" if call.star else repr(call.args[0]) if call.args else ""
    distinct = "distinct " if call.distinct else ""
    return f"__agg_{call.name}({distinct}{inner})"


def _collect_aggregates(expr: Optional[ast.Expr], out: List[ast.FuncCall]) -> None:
    if expr is None:
        return
    if isinstance(expr, ast.FuncCall):
        if expr.name in AGGREGATE_FUNCTIONS:
            out.append(expr)
            return
        for arg in expr.args:
            _collect_aggregates(arg, out)
        return
    if isinstance(expr, ast.BinaryOp):
        _collect_aggregates(expr.left, out)
        _collect_aggregates(expr.right, out)
    elif isinstance(expr, ast.UnaryOp):
        _collect_aggregates(expr.operand, out)
    elif isinstance(expr, ast.InList):
        _collect_aggregates(expr.operand, out)
        for item in expr.items:
            _collect_aggregates(item, out)
    elif isinstance(expr, ast.Between):
        _collect_aggregates(expr.operand, out)
        _collect_aggregates(expr.low, out)
        _collect_aggregates(expr.high, out)
    elif isinstance(expr, (ast.IsNull, ast.Like)):
        _collect_aggregates(expr.operand, out)


# ---------------------------------------------------------------------------
# Predicate analysis for access-path selection
# ---------------------------------------------------------------------------


def _conjuncts(expr: Optional[ast.Expr]) -> List[ast.Expr]:
    if expr is None:
        return []
    if isinstance(expr, ast.BinaryOp) and expr.op == "and":
        return _conjuncts(expr.left) + _conjuncts(expr.right)
    return [expr]


def _constant_value(
    expr: ast.Expr, params: Sequence[Any]
) -> Tuple[bool, Any]:
    """(is_constant, value) for literal/param expressions."""
    if isinstance(expr, ast.Literal):
        return True, expr.value
    if isinstance(expr, ast.Param):
        return True, params[expr.index]
    if isinstance(expr, ast.UnaryOp) and expr.op == "-":
        ok, value = _constant_value(expr.operand, params)
        return (ok, -value if ok and value is not None else None)
    return False, None


class _TablePredicates:
    """Equality and range constraints on one table's columns."""

    def __init__(self) -> None:
        self.equals: Dict[str, Any] = {}
        self.lower: Dict[str, Tuple[Any, bool]] = {}  # col -> (bound, incl)
        self.upper: Dict[str, Tuple[Any, bool]] = {}


def _analyze_predicates(
    condition: Optional[ast.Expr],
    alias: str,
    schema: TableSchema,
    params: Sequence[Any],
) -> _TablePredicates:
    analysis = _TablePredicates()
    for conjunct in _conjuncts(condition):
        column, op, value = _match_column_constant(conjunct, alias, schema, params)
        if column is None:
            if isinstance(conjunct, ast.Between) and not conjunct.negated:
                col = _own_column(conjunct.operand, alias, schema)
                ok_lo, lo = _constant_value(conjunct.low, params)
                ok_hi, hi = _constant_value(conjunct.high, params)
                if col and ok_lo and ok_hi:
                    analysis.lower[col] = (lo, True)
                    analysis.upper[col] = (hi, True)
            continue
        if op == "=":
            analysis.equals[column] = value
        elif op == ">":
            analysis.lower[column] = (value, False)
        elif op == ">=":
            analysis.lower[column] = (value, True)
        elif op == "<":
            analysis.upper[column] = (value, False)
        elif op == "<=":
            analysis.upper[column] = (value, True)
    return analysis


def _own_column(
    expr: ast.Expr, alias: str, schema: TableSchema
) -> Optional[str]:
    if not isinstance(expr, ast.ColumnRef):
        return None
    if expr.table is not None and expr.table != alias:
        return None
    if not schema.has_column(expr.name):
        return None
    return expr.name


_FLIPPED = {"=": "=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}


def _match_column_constant(
    conjunct: ast.Expr,
    alias: str,
    schema: TableSchema,
    params: Sequence[Any],
) -> Tuple[Optional[str], Optional[str], Any]:
    if not isinstance(conjunct, ast.BinaryOp):
        return None, None, None
    if conjunct.op not in _FLIPPED:
        return None, None, None
    column = _own_column(conjunct.left, alias, schema)
    if column is not None:
        ok, value = _constant_value(conjunct.right, params)
        if ok:
            return column, conjunct.op, value
    column = _own_column(conjunct.right, alias, schema)
    if column is not None:
        ok, value = _constant_value(conjunct.left, params)
        if ok:
            return column, _FLIPPED[conjunct.op], value
    return None, None, None


def _build_pushdown(schema: TableSchema, predicates: "_TablePredicates"):
    """Ship the analyzed constant predicates to the storage nodes
    (Section 5.2 operator push-down); None when nothing is pushable."""
    from repro.store.pushdown import ScanFilter

    conjuncts = []
    for column, value in predicates.equals.items():
        conjuncts.append((schema.position(column), "=", value))
    for column, (bound, inclusive) in predicates.lower.items():
        conjuncts.append((schema.position(column), ">=" if inclusive else ">", bound))
    for column, (bound, inclusive) in predicates.upper.items():
        conjuncts.append((schema.position(column), "<=" if inclusive else "<", bound))
    return ScanFilter(conjuncts) if conjuncts else None


def choose_access_path(
    schema: TableSchema, predicates: _TablePredicates
) -> Tuple[str, Optional[IndexDef], Any, Any, bool]:
    """Pick (kind, index, low, high, include_high).

    kind is "lookup" (full-key equality), "range" (prefix constraints) or
    "scan".  Among lookup candidates the unique index wins; among range
    candidates the longest constrained prefix wins.
    """
    best_lookup: Optional[IndexDef] = None
    best_range: Optional[Tuple[int, IndexDef]] = None
    for index in schema.indexes:
        if all(column in predicates.equals for column in index.columns):
            if best_lookup is None or (index.unique and not best_lookup.unique):
                best_lookup = index
            continue
        prefix = 0
        for column in index.columns:
            if column in predicates.equals:
                prefix += 1
            else:
                break
        extra = 0
        if prefix < len(index.columns):
            next_column = index.columns[prefix]
            if next_column in predicates.lower or next_column in predicates.upper:
                extra = 1
        if prefix + extra > 0:
            score = prefix * 2 + extra
            if best_range is None or score > best_range[0]:
                best_range = (score, index)
    if best_lookup is not None:
        key = tuple(predicates.equals[column] for column in best_lookup.columns)
        return "lookup", best_lookup, key, None, False
    if best_range is not None:
        index = best_range[1]
        low: List[Any] = []
        high: List[Any] = []
        include_high = True
        for column in index.columns:
            if column in predicates.equals:
                low.append(predicates.equals[column])
                high.append(predicates.equals[column])
            else:
                if column in predicates.lower:
                    bound, inclusive = predicates.lower[column]
                    low.append(bound)  # exclusive lows over-approximate
                if column in predicates.upper:
                    bound, inclusive = predicates.upper[column]
                    high.append(bound)
                    include_high = inclusive
                break
        low_key = tuple(low) if low else None
        high_key = tuple(high) if high else None
        return "range", index, low_key, high_key, include_high
    return "scan", None, None, None, False


# ---------------------------------------------------------------------------
# The executor
# ---------------------------------------------------------------------------


class StatementExecutor:
    """Executes DML/query statements inside one transaction.

    ``table_provider(name)`` returns a bound :class:`Table` handle.
    """

    def __init__(self, table_provider, params: Sequence[Any] = ()):  # noqa: ANN001
        self.tables = table_provider
        self.params = list(params)

    # -- rows in/out of environments ---------------------------------------------

    def _env_from(
        self, alias: str, schema: TableSchema, rid: int, row: Tuple[Any, ...]
    ) -> Row:
        env: Row = {"__rid." + alias: rid}
        for column, value in zip(schema.columns, row):
            env[f"{alias}.{column.name}"] = value
        return env

    @staticmethod
    def _merge(left: Row, right: Row) -> Row:
        merged = dict(left)
        merged.update(right)
        return merged

    @staticmethod
    def _add_bare_names(rows: List[Row], scopes: List[Tuple[str, TableSchema]]) -> None:
        """Expose unambiguous bare column names alongside qualified ones."""
        counts: Dict[str, int] = {}
        for _alias, schema in scopes:
            for column in schema.columns:
                counts[column.name] = counts.get(column.name, 0) + 1
        singles = [
            (alias, column.name)
            for alias, schema in scopes
            for column in schema.columns
            if counts[column.name] == 1
        ]
        for row in rows:
            for alias, name in singles:
                row[name] = row[f"{alias}.{name}"]

    # -- base table access ------------------------------------------------------------

    def _base_rows(
        self,
        table_ref: ast.TableRef,
        condition: Optional[ast.Expr],
    ) -> Generator:
        table: Table = self.tables(table_ref.name)
        schema = table.schema
        predicates = _analyze_predicates(
            condition, table_ref.alias, schema, self.params
        )
        kind, index, low, high, include_high = choose_access_path(schema, predicates)
        if kind == "lookup":
            pairs = yield from table.lookup(index, low)
        elif kind == "range":
            pairs = yield from table.index_range(index, low, high, include_high)
        else:
            pushdown = _build_pushdown(schema, predicates)
            pairs = yield from table.scan(pushdown)
        return [
            self._env_from(table_ref.alias, schema, rid, row)
            for rid, row in pairs
        ]

    # -- SELECT --------------------------------------------------------------------------

    def _resolve_alias(self, stmt: ast.Select, expr: ast.Expr) -> ast.Expr:
        """ORDER BY / GROUP BY may reference select-item aliases."""
        if isinstance(expr, ast.ColumnRef) and expr.table is None:
            for item in stmt.items:
                if item.alias == expr.name and item.expr is not None:
                    return item.expr
        return expr

    def select(self, stmt: ast.Select) -> Generator:
        scopes: List[Tuple[str, TableSchema]] = []
        rows: List[Row]
        if stmt.table is None:
            rows = [{}]
        else:
            schema = self.tables(stmt.table.name).schema
            scopes.append((stmt.table.alias, schema))
            rows = yield from self._base_rows(stmt.table, stmt.where)
            for join in stmt.joins:
                rows = yield from self._join(rows, scopes, join)
                scopes.append((join.table.alias, self.tables(join.table.name).schema))
        self._add_bare_names(rows, scopes)

        if stmt.where is not None:
            rows = [
                row for row in rows
                if evaluate(stmt.where, row, self.params) is True
            ]

        if stmt.for_update:
            if stmt.group_by or stmt.joins:
                raise SqlPlanError(
                    "FOR UPDATE requires a plain single-table SELECT"
                )
            yield from self._lock_rows(stmt, rows, scopes)

        order_by = [
            (self._resolve_alias(stmt, expr), descending)
            for expr, descending in stmt.order_by
        ]
        group_by = [self._resolve_alias(stmt, expr) for expr in stmt.group_by]

        aggregates: List[ast.FuncCall] = []
        for item in stmt.items:
            _collect_aggregates(item.expr, aggregates)
        _collect_aggregates(stmt.having, aggregates)
        for expr, _descending in order_by:
            _collect_aggregates(expr, aggregates)

        if group_by or aggregates:
            rows = self._aggregate(group_by, rows, aggregates)
        if stmt.having is not None:
            rows = [
                row for row in rows
                if evaluate(stmt.having, row, self.params) is True
            ]

        if order_by:
            for expr, descending in reversed(order_by):
                rows.sort(
                    key=lambda row: _sort_key(evaluate(expr, row, self.params)),
                    reverse=descending,
                )

        columns, projected = self._project(stmt, rows, scopes)
        if stmt.distinct:
            seen = set()
            unique_rows = []
            for row in projected:
                marker = tuple(row)
                if marker not in seen:
                    seen.add(marker)
                    unique_rows.append(row)
            projected = unique_rows
        if stmt.limit is not None:
            projected = projected[: stmt.limit]
        return ResultSet(columns, projected, len(projected))

    def _lock_rows(
        self,
        stmt: ast.Select,
        rows: List[Row],
        scopes: List[Tuple[str, TableSchema]],
    ) -> Generator:
        """Materialize FOR UPDATE reads: concurrent writers conflict."""
        from repro.core.spaces import data_key

        if not scopes:
            return
        alias, schema = scopes[0]
        table: Table = self.tables(stmt.table.name)
        for row in rows:
            rid = row.get("__rid." + alias)
            if rid is not None:
                yield from table.txn.read_for_update(
                    data_key(schema.table_id, rid)
                )

    def _join(
        self,
        left_rows: List[Row],
        scopes: List[Tuple[str, TableSchema]],
        join: ast.Join,
    ) -> Generator:
        table: Table = self.tables(join.table.name)
        schema = table.schema
        alias = join.table.alias
        # Find equi-join pairs: inner.column = <expr over left scope>.
        left_aliases = {scope_alias for scope_alias, _ in scopes}
        equi: List[Tuple[str, ast.Expr]] = []
        residual: List[ast.Expr] = []
        for conjunct in _conjuncts(join.on):
            pair = self._equi_pair(conjunct, alias, schema, left_aliases)
            if pair is not None:
                equi.append(pair)
            else:
                residual.append(conjunct)

        index = self._index_for_equi(schema, [column for column, _ in equi])
        out: List[Row] = []
        if index is not None and left_rows:
            # Index nested-loop join.
            order = {column: position for position, column in enumerate(index.columns)}
            ordered = sorted(equi, key=lambda pair: order[pair[0]])
            for left in left_rows:
                key = tuple(
                    evaluate(expr, left, self.params) for _col, expr in ordered
                )
                if any(part is None for part in key):
                    matches = []  # NULL never equi-joins
                else:
                    matches = yield from table.lookup(index, key)
                matched = False
                for rid, row in matches:
                    candidate = self._merge(
                        left, self._env_from(alias, schema, rid, row)
                    )
                    if all(
                        evaluate(cond, candidate, self.params) is True
                        for cond in residual
                    ):
                        out.append(candidate)
                        matched = True
                if join.kind == "left" and not matched:
                    out.append(self._merge(left, self._null_env(alias, schema)))
            return out

        inner_pairs = yield from table.scan()
        inner_rows = [
            self._env_from(alias, schema, rid, row) for rid, row in inner_pairs
        ]
        if equi and join.kind == "inner":
            # Hash join on the equi columns.
            buckets: Dict[Tuple, List[Row]] = {}
            for inner in inner_rows:
                key = tuple(inner[f"{alias}.{column}"] for column, _ in equi)
                if any(part is None for part in key):
                    continue  # NULL never equi-joins
                buckets.setdefault(key, []).append(inner)
            for left in left_rows:
                key = tuple(
                    evaluate(expr, left, self.params) for _col, expr in equi
                )
                if any(part is None for part in key):
                    continue
                for inner in buckets.get(key, ()):  # noqa: B020
                    candidate = self._merge(left, inner)
                    if all(
                        evaluate(cond, candidate, self.params) is True
                        for cond in residual
                    ):
                        out.append(candidate)
            return out

        # Fallback: nested loop with full ON evaluation.
        for left in left_rows:
            matched = False
            for inner in inner_rows:
                candidate = self._merge(left, inner)
                if evaluate(join.on, candidate, self.params) is True:
                    out.append(candidate)
                    matched = True
            if join.kind == "left" and not matched:
                out.append(self._merge(left, self._null_env(alias, schema)))
        return out

    def _null_env(self, alias: str, schema: TableSchema) -> Row:
        env: Row = {"__rid." + alias: None}
        for column in schema.columns:
            env[f"{alias}.{column.name}"] = None
        return env

    def _equi_pair(
        self,
        conjunct: ast.Expr,
        inner_alias: str,
        inner_schema: TableSchema,
        left_aliases: set,
    ) -> Optional[Tuple[str, ast.Expr]]:
        if not (isinstance(conjunct, ast.BinaryOp) and conjunct.op == "="):
            return None
        for inner_expr, outer_expr in (
            (conjunct.left, conjunct.right),
            (conjunct.right, conjunct.left),
        ):
            column = _own_column(inner_expr, inner_alias, inner_schema)
            if column is None:
                continue
            if self._refs_only(outer_expr, left_aliases):
                return column, outer_expr
        return None

    def _refs_only(self, expr: ast.Expr, aliases: set) -> bool:
        if isinstance(expr, ast.ColumnRef):
            return expr.table in aliases
        if isinstance(expr, (ast.Literal, ast.Param)):
            return True
        if isinstance(expr, ast.BinaryOp):
            return self._refs_only(expr.left, aliases) and self._refs_only(
                expr.right, aliases
            )
        if isinstance(expr, ast.UnaryOp):
            return self._refs_only(expr.operand, aliases)
        return False

    def _index_for_equi(
        self, schema: TableSchema, columns: List[str]
    ) -> Optional[IndexDef]:
        available = set(columns)
        best: Optional[IndexDef] = None
        for index in schema.indexes:
            if all(column in available for column in index.columns) and set(
                index.columns
            ) == available:
                if best is None or index.unique:
                    best = index
        return best

    # -- aggregation --------------------------------------------------------------------

    def _aggregate(
        self,
        group_by: List[ast.Expr],
        rows: List[Row],
        aggregates: List[ast.FuncCall],
    ) -> List[Row]:
        groups: "Dict[Tuple, List[Row]]" = {}
        if group_by:
            for row in rows:
                key = tuple(
                    _sort_key(evaluate(expr, row, self.params))
                    for expr in group_by
                )
                groups.setdefault(key, []).append(row)
        else:
            groups[()] = rows

        out: List[Row] = []
        for _key, members in groups.items():
            base: Row = dict(members[0]) if members else {}
            for call in aggregates:
                base[_aggregate_key(call)] = self._compute_aggregate(call, members)
            out.append(base)
        if not group_by and not out:
            empty: Row = {}
            for call in aggregates:
                empty[_aggregate_key(call)] = self._compute_aggregate(call, [])
            out.append(empty)
        return out

    def _compute_aggregate(self, call: ast.FuncCall, rows: List[Row]) -> Any:
        if call.star:
            return len(rows)
        values = [
            evaluate(call.args[0], row, self.params) for row in rows
        ]
        values = [value for value in values if value is not None]
        if call.distinct:
            values = list(dict.fromkeys(values))
        if call.name == "count":
            return len(values)
        if not values:
            return None
        if call.name == "sum":
            return sum(values)
        if call.name == "avg":
            return sum(values) / len(values)
        if call.name == "min":
            return min(values)
        if call.name == "max":
            return max(values)
        raise SqlPlanError(f"unknown aggregate {call.name!r}")

    # -- projection ----------------------------------------------------------------------

    def _project(
        self,
        stmt: ast.Select,
        rows: List[Row],
        scopes: List[Tuple[str, TableSchema]],
    ) -> Tuple[List[str], List[Tuple[Any, ...]]]:
        columns: List[str] = []
        extractors = []
        for item in stmt.items:
            if item.star:
                for alias, schema in scopes:
                    for column in schema.columns:
                        columns.append(column.name)
                        extractors.append(_qualified_getter(alias, column.name))
            elif item.table_star is not None:
                target = item.table_star
                for alias, schema in scopes:
                    if alias == target:
                        for column in schema.columns:
                            columns.append(column.name)
                            extractors.append(_qualified_getter(alias, column.name))
            else:
                columns.append(item.alias or _expr_label(item.expr))
                expr = item.expr
                extractors.append(
                    lambda row, bound=expr: evaluate(bound, row, self.params)
                )
        projected = [
            tuple(extract(row) for extract in extractors) for row in rows
        ]
        return columns, projected

    # -- EXPLAIN -----------------------------------------------------------------------

    def explain(self, stmt: ast.Statement) -> List[str]:
        """Describe the chosen plan without executing anything."""
        if isinstance(stmt, ast.Select):
            return self._explain_select(stmt)
        if isinstance(stmt, (ast.Update, ast.Delete)):
            table = self.tables(stmt.table)
            ref = ast.TableRef(stmt.table, None)
            verb = "UPDATE" if isinstance(stmt, ast.Update) else "DELETE"
            return [f"{verb} {stmt.table}"] + [
                "  " + line
                for line in self._explain_access(ref, table.schema, stmt.where)
            ]
        if isinstance(stmt, ast.Insert):
            return [f"INSERT {len(stmt.rows)} row(s) into {stmt.table}"]
        return [f"{type(stmt).__name__}"]

    def _explain_select(self, stmt: ast.Select) -> List[str]:
        lines: List[str] = ["SELECT"]
        if stmt.table is not None:
            schema = self.tables(stmt.table.name).schema
            for line in self._explain_access(stmt.table, schema, stmt.where):
                lines.append("  " + line)
            left_aliases = {stmt.table.alias}
            for join in stmt.joins:
                inner = self.tables(join.table.name)
                equi = []
                for conjunct in _conjuncts(join.on):
                    pair = self._equi_pair(
                        conjunct, join.table.alias, inner.schema, left_aliases
                    )
                    if pair is not None:
                        equi.append(pair)
                index = self._index_for_equi(
                    inner.schema, [column for column, _ in equi]
                )
                if index is not None:
                    strategy = f"index nested-loop join via {index.name}"
                elif equi and join.kind == "inner":
                    strategy = "hash join on " + ", ".join(c for c, _ in equi)
                else:
                    strategy = "nested-loop join"
                lines.append(
                    f"  {join.kind} join {join.table.name} "
                    f"[{join.table.alias}]: {strategy}"
                )
                left_aliases.add(join.table.alias)
        if stmt.where is not None:
            lines.append("  filter: residual WHERE")
        if stmt.group_by:
            lines.append(f"  group by {len(stmt.group_by)} expr(s)")
        if stmt.order_by:
            lines.append(f"  sort by {len(stmt.order_by)} key(s)")
        if stmt.limit is not None:
            lines.append(f"  limit {stmt.limit}")
        if stmt.for_update:
            lines.append("  lock rows (FOR UPDATE)")
        return lines

    def _explain_access(
        self,
        table_ref: ast.TableRef,
        schema: TableSchema,
        condition: Optional[ast.Expr],
    ) -> List[str]:
        predicates = _analyze_predicates(
            condition, table_ref.alias, schema, self.params
        )
        kind, index, low, high, include_high = choose_access_path(
            schema, predicates
        )
        if kind == "lookup":
            return [
                f"scan {schema.name} [{table_ref.alias}]: "
                f"point lookup via {index.name} key={low!r}"
            ]
        if kind == "range":
            bound = "<=" if include_high else "<"
            return [
                f"scan {schema.name} [{table_ref.alias}]: "
                f"range via {index.name} {low!r} .. {bound} {high!r}"
            ]
        pushdown = _build_pushdown(schema, predicates)
        if pushdown is not None:
            return [
                f"scan {schema.name} [{table_ref.alias}]: full scan with "
                f"storage-side {pushdown!r}"
            ]
        return [f"scan {schema.name} [{table_ref.alias}]: full scan"]

    # -- INSERT / UPDATE / DELETE ----------------------------------------------------------

    def insert(self, stmt: ast.Insert) -> Generator:
        table: Table = self.tables(stmt.table)
        schema = table.schema
        columns = stmt.columns or schema.column_names
        count = 0
        if stmt.select is not None:
            source = yield from self.select(stmt.select)
            if source.rows and len(source.rows[0]) != len(columns):
                raise SqlPlanError(
                    f"INSERT into {stmt.table}: {len(columns)} columns but "
                    f"the SELECT produces {len(source.rows[0])}"
                )
            for source_row in source.rows:
                values = dict(zip(columns, source_row))
                yield from table.insert(values)
                count += 1
            return ResultSet([], [], count)
        for row_exprs in stmt.rows:
            if len(row_exprs) != len(columns):
                raise SqlPlanError(
                    f"INSERT into {stmt.table}: {len(columns)} columns but "
                    f"{len(row_exprs)} values"
                )
            values = {
                column: evaluate(expr, {}, self.params)
                for column, expr in zip(columns, row_exprs)
            }
            yield from table.insert(values)
            count += 1
        return ResultSet([], [], count)

    def update(self, stmt: ast.Update) -> Generator:
        table: Table = self.tables(stmt.table)
        ref = ast.TableRef(stmt.table, None)
        rows = yield from self._base_rows(ref, stmt.where)
        self._add_bare_names(rows, [(ref.alias, table.schema)])
        count = 0
        for row in rows:
            if stmt.where is not None and evaluate(
                stmt.where, row, self.params
            ) is not True:
                continue
            changes = {
                column: evaluate(expr, row, self.params)
                for column, expr in stmt.assignments
            }
            yield from table.update_by_rid(row["__rid." + ref.alias], changes)
            count += 1
        return ResultSet([], [], count)

    def delete(self, stmt: ast.Delete) -> Generator:
        table: Table = self.tables(stmt.table)
        ref = ast.TableRef(stmt.table, None)
        rows = yield from self._base_rows(ref, stmt.where)
        self._add_bare_names(rows, [(ref.alias, table.schema)])
        count = 0
        for row in rows:
            if stmt.where is not None and evaluate(
                stmt.where, row, self.params
            ) is not True:
                continue
            yield from table.delete_by_rid(row["__rid." + ref.alias])
            count += 1
        return ResultSet([], [], count)


def _qualified_getter(alias: str, name: str):
    key = f"{alias}.{name}"

    def get(row: Row) -> Any:
        return row.get(key)

    return get


def _expr_label(expr: ast.Expr) -> str:
    if isinstance(expr, ast.ColumnRef):
        return expr.name
    if isinstance(expr, ast.FuncCall):
        inner = "*" if expr.star else ",".join(
            _expr_label(arg) for arg in expr.args
        )
        return f"{expr.name}({inner})"
    if isinstance(expr, ast.Literal):
        return repr(expr.value)
    return "expr"


class _SortKey:
    """Total order helper: None sorts first, mixed types by type name."""

    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value

    def __lt__(self, other: "_SortKey") -> bool:
        a, b = self.value, other.value
        if a is None:
            return b is not None
        if b is None:
            return False
        try:
            return a < b
        except TypeError:
            return str(type(a)) < str(type(b))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _SortKey) and self.value == other.value

    def __hash__(self) -> int:
        return hash(self.value)


def _sort_key(value: Any) -> _SortKey:
    return _SortKey(value)
