"""Total-order encoding of index key components.

SQL values of mixed types (and NULLs) are not comparable as raw Python
values, but B+tree entries must have a total order.  Every component is
therefore wrapped as ``(type_rank, value)``:

* NULL sorts first (rank 0),
* booleans (rank 1),
* numbers (rank 2; int/float compare naturally),
* strings (rank 3),
* bytes (rank 4).

Encoding happens at the tree boundary only -- table rows and user-facing
keys stay raw.
"""

from __future__ import annotations

from typing import Any, Tuple

_NULL = (0, False)

#: Type rank strictly greater than any produced by :func:`encode_component`;
#: ``(ABOVE_ALL_RANK,)`` therefore sorts above every real key component,
#: which range scans use to build inclusive prefix upper bounds.
ABOVE_ALL_RANK = 5


def encode_component(value: Any) -> Tuple[int, Any]:
    # Exact-class checks settle the overwhelmingly common scalar types
    # before the isinstance ladder (which must test bool before int).
    cls = value.__class__
    if cls is int or cls is float:
        return (2, value)
    if cls is str:
        return (3, value)
    if value is None:
        return _NULL
    if isinstance(value, bool):
        return (1, value)
    if isinstance(value, (int, float)):
        return (2, value)
    if isinstance(value, str):
        return (3, value)
    if isinstance(value, bytes):
        return (4, value)
    raise TypeError(f"cannot index value of type {type(value).__name__}")


def encode_key(key: Tuple[Any, ...]) -> Tuple[Tuple[int, Any], ...]:
    """Encode a whole index key tuple."""
    return tuple([encode_component(component) for component in key])
