"""Tokenizer for the SQL dialect."""

from __future__ import annotations

from typing import List, Optional

from repro.errors import SqlSyntaxError

KEYWORDS = {
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "LIMIT",
    "ASC", "DESC", "INSERT", "INTO", "VALUES", "UPDATE", "SET", "DELETE",
    "CREATE", "TABLE", "INDEX", "UNIQUE", "DROP", "PRIMARY", "KEY",
    "NOT", "NULL", "DEFAULT", "AND", "OR", "IN", "BETWEEN", "IS", "LIKE",
    "JOIN", "INNER", "LEFT", "ON", "AS", "DISTINCT", "BEGIN", "COMMIT",
    "ROLLBACK", "ABORT", "TRUE", "FALSE", "FOR",
}

SYMBOLS = ("<=", ">=", "<>", "!=", "=", "<", ">", "(", ")", ",", ".", "*",
           "+", "-", "/", "?", ";")


class Token:
    __slots__ = ("kind", "value", "position")

    def __init__(self, kind: str, value, position: int):
        self.kind = kind       # KEYWORD | IDENT | NUMBER | STRING | SYMBOL | EOF
        self.value = value
        self.position = position

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.value!r})"


def tokenize(sql: str) -> List[Token]:
    tokens: List[Token] = []
    i = 0
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if sql.startswith("--", i):
            end = sql.find("\n", i)
            i = n if end < 0 else end + 1
            continue
        if ch == "'":
            j = i + 1
            parts = []
            while True:
                if j >= n:
                    raise SqlSyntaxError("unterminated string literal", i)
                if sql[j] == "'":
                    if j + 1 < n and sql[j + 1] == "'":  # escaped quote
                        parts.append("'")
                        j += 2
                        continue
                    break
                parts.append(sql[j])
                j += 1
            tokens.append(Token("STRING", "".join(parts), i))
            i = j + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and sql[i + 1].isdigit()):
            j = i
            is_float = False
            while j < n and (sql[j].isdigit() or sql[j] == "."):
                if sql[j] == ".":
                    if is_float:
                        break
                    is_float = True
                j += 1
            text = sql[i:j]
            tokens.append(
                Token("NUMBER", float(text) if is_float else int(text), i)
            )
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (sql[j].isalnum() or sql[j] == "_"):
                j += 1
            word = sql[i:j]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token("KEYWORD", upper, i))
            else:
                tokens.append(Token("IDENT", word.lower(), i))
            i = j
            continue
        matched: Optional[str] = None
        for symbol in SYMBOLS:
            if sql.startswith(symbol, i):
                matched = symbol
                break
        if matched is None:
            raise SqlSyntaxError(f"unexpected character {ch!r}", i)
        tokens.append(Token("SYMBOL", matched, i))
        i += len(matched)
    tokens.append(Token("EOF", None, n))
    return tokens
