"""Recursive-descent parser for the SQL dialect.

Supported statements: CREATE TABLE / CREATE [UNIQUE] INDEX / DROP TABLE /
INSERT / SELECT (joins, WHERE, GROUP BY, HAVING, ORDER BY, LIMIT) /
UPDATE / DELETE / BEGIN / COMMIT / ROLLBACK.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from repro.errors import SqlSyntaxError
from repro.sql import ast_nodes as ast
from repro.sql.lexer import Token, tokenize


class Parser:
    def __init__(self, sql: str):
        self.sql = sql
        self.tokens = tokenize(sql)
        self.position = 0
        self._param_count = 0

    # -- token helpers ----------------------------------------------------------

    def _peek(self) -> Token:
        return self.tokens[self.position]

    def _advance(self) -> Token:
        token = self.tokens[self.position]
        self.position += 1
        return token

    def _check_keyword(self, *words: str) -> bool:
        token = self._peek()
        return token.kind == "KEYWORD" and token.value in words

    def _accept_keyword(self, *words: str) -> Optional[str]:
        if self._check_keyword(*words):
            return self._advance().value
        return None

    def _expect_keyword(self, word: str) -> None:
        if not self._accept_keyword(word):
            raise SqlSyntaxError(
                f"expected {word}, found {self._peek().value!r}",
                self._peek().position,
            )

    def _check_symbol(self, symbol: str) -> bool:
        token = self._peek()
        return token.kind == "SYMBOL" and token.value == symbol

    def _accept_symbol(self, symbol: str) -> bool:
        if self._check_symbol(symbol):
            self._advance()
            return True
        return False

    def _expect_symbol(self, symbol: str) -> None:
        if not self._accept_symbol(symbol):
            raise SqlSyntaxError(
                f"expected {symbol!r}, found {self._peek().value!r}",
                self._peek().position,
            )

    def _expect_ident(self) -> str:
        token = self._peek()
        if token.kind == "IDENT":
            return self._advance().value
        # Permit non-reserved-looking keywords as identifiers where safe.
        raise SqlSyntaxError(
            f"expected identifier, found {token.value!r}", token.position
        )

    # -- entry point -----------------------------------------------------------------

    def parse(self) -> ast.Statement:
        statement = self._statement()
        self._accept_symbol(";")
        token = self._peek()
        if token.kind != "EOF":
            raise SqlSyntaxError(
                f"unexpected trailing input {token.value!r}", token.position
            )
        return statement

    def _statement(self) -> ast.Statement:
        if self._check_keyword("SELECT"):
            return self._select()
        if self._check_keyword("INSERT"):
            return self._insert()
        if self._check_keyword("UPDATE"):
            return self._update()
        if self._check_keyword("DELETE"):
            return self._delete()
        if self._check_keyword("CREATE"):
            return self._create()
        if self._check_keyword("DROP"):
            return self._drop()
        if self._accept_keyword("BEGIN"):
            return ast.BeginStmt()
        if self._accept_keyword("COMMIT"):
            return ast.CommitStmt()
        if self._accept_keyword("ROLLBACK", "ABORT"):
            return ast.RollbackStmt()
        token = self._peek()
        raise SqlSyntaxError(f"cannot parse {token.value!r}", token.position)

    # -- DDL --------------------------------------------------------------------------

    def _create(self) -> ast.Statement:
        self._expect_keyword("CREATE")
        if self._accept_keyword("TABLE"):
            return self._create_table()
        unique = bool(self._accept_keyword("UNIQUE"))
        self._expect_keyword("INDEX")
        name = self._expect_ident()
        self._expect_keyword("ON")
        table = self._expect_ident()
        self._expect_symbol("(")
        columns = [self._expect_ident()]
        while self._accept_symbol(","):
            columns.append(self._expect_ident())
        self._expect_symbol(")")
        return ast.CreateIndex(name, table, columns, unique)

    def _create_table(self) -> ast.CreateTable:
        name = self._expect_ident()
        self._expect_symbol("(")
        columns: List[ast.ColumnClause] = []
        primary_key: List[str] = []
        while True:
            if self._accept_keyword("PRIMARY"):
                self._expect_keyword("KEY")
                self._expect_symbol("(")
                primary_key.append(self._expect_ident())
                while self._accept_symbol(","):
                    primary_key.append(self._expect_ident())
                self._expect_symbol(")")
            else:
                column_name = self._expect_ident()
                type_name = self._type_name()
                nullable = True
                default: Any = None
                unique = False
                while True:
                    if self._accept_keyword("NOT"):
                        self._expect_keyword("NULL")
                        nullable = False
                    elif self._accept_keyword("DEFAULT"):
                        default = self._literal_value()
                    elif self._accept_keyword("PRIMARY"):
                        self._expect_keyword("KEY")
                        primary_key.append(column_name)
                        nullable = False
                    elif self._accept_keyword("UNIQUE"):
                        unique = True
                    else:
                        break
                columns.append(
                    ast.ColumnClause(column_name, type_name, nullable, default,
                                     unique)
                )
            if not self._accept_symbol(","):
                break
        self._expect_symbol(")")
        if not primary_key:
            raise SqlSyntaxError(f"table {name} needs a PRIMARY KEY")
        return ast.CreateTable(name, columns, primary_key)

    def _type_name(self) -> str:
        token = self._peek()
        if token.kind not in ("IDENT", "KEYWORD"):
            raise SqlSyntaxError(
                f"expected type name, found {token.value!r}", token.position
            )
        name = str(self._advance().value)
        if self._accept_symbol("("):  # VARCHAR(16), DECIMAL(12,2) ...
            while not self._accept_symbol(")"):
                self._advance()
        return name

    def _literal_value(self) -> Any:
        token = self._advance()
        if token.kind in ("NUMBER", "STRING"):
            return token.value
        if token.kind == "KEYWORD" and token.value in ("TRUE", "FALSE"):
            return token.value == "TRUE"
        if token.kind == "KEYWORD" and token.value == "NULL":
            return None
        if token.kind == "SYMBOL" and token.value == "-":
            nested = self._literal_value()
            return -nested
        raise SqlSyntaxError(f"expected literal, found {token.value!r}",
                             token.position)

    def _drop(self) -> ast.DropTable:
        self._expect_keyword("DROP")
        self._expect_keyword("TABLE")
        return ast.DropTable(self._expect_ident())

    # -- DML --------------------------------------------------------------------------

    def _insert(self) -> ast.Insert:
        self._expect_keyword("INSERT")
        self._expect_keyword("INTO")
        table = self._expect_ident()
        columns: Optional[List[str]] = None
        if self._accept_symbol("("):
            columns = [self._expect_ident()]
            while self._accept_symbol(","):
                columns.append(self._expect_ident())
            self._expect_symbol(")")
        if self._check_keyword("SELECT"):
            return ast.Insert(table, columns, [], select=self._select())
        self._expect_keyword("VALUES")
        rows: List[List[ast.Expr]] = []
        while True:
            self._expect_symbol("(")
            row = [self._expression()]
            while self._accept_symbol(","):
                row.append(self._expression())
            self._expect_symbol(")")
            rows.append(row)
            if not self._accept_symbol(","):
                break
        return ast.Insert(table, columns, rows)

    def _update(self) -> ast.Update:
        self._expect_keyword("UPDATE")
        table = self._expect_ident()
        self._expect_keyword("SET")
        assignments: List[Tuple[str, ast.Expr]] = []
        while True:
            column = self._expect_ident()
            self._expect_symbol("=")
            assignments.append((column, self._expression()))
            if not self._accept_symbol(","):
                break
        where = self._optional_where()
        return ast.Update(table, assignments, where)

    def _delete(self) -> ast.Delete:
        self._expect_keyword("DELETE")
        self._expect_keyword("FROM")
        table = self._expect_ident()
        where = self._optional_where()
        return ast.Delete(table, where)

    def _optional_where(self) -> Optional[ast.Expr]:
        if self._accept_keyword("WHERE"):
            return self._expression()
        return None

    # -- SELECT --------------------------------------------------------------------------

    def _select(self) -> ast.Select:
        self._expect_keyword("SELECT")
        distinct = bool(self._accept_keyword("DISTINCT"))
        items = [self._select_item()]
        while self._accept_symbol(","):
            items.append(self._select_item())

        table: Optional[ast.TableRef] = None
        joins: List[ast.Join] = []
        if self._accept_keyword("FROM"):
            table = self._table_ref()
            while True:
                kind = None
                if self._accept_keyword("INNER"):
                    kind = "inner"
                    self._expect_keyword("JOIN")
                elif self._accept_keyword("LEFT"):
                    kind = "left"
                    self._expect_keyword("JOIN")
                elif self._accept_keyword("JOIN"):
                    kind = "inner"
                if kind is None:
                    break
                join_table = self._table_ref()
                self._expect_keyword("ON")
                joins.append(ast.Join(join_table, self._expression(), kind))

        where = self._optional_where()

        group_by: List[ast.Expr] = []
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            group_by.append(self._expression())
            while self._accept_symbol(","):
                group_by.append(self._expression())

        having = None
        if self._accept_keyword("HAVING"):
            having = self._expression()

        order_by: List[Tuple[ast.Expr, bool]] = []
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            while True:
                expr = self._expression()
                descending = False
                if self._accept_keyword("DESC"):
                    descending = True
                else:
                    self._accept_keyword("ASC")
                order_by.append((expr, descending))
                if not self._accept_symbol(","):
                    break

        limit = None
        if self._accept_keyword("LIMIT"):
            token = self._advance()
            if token.kind != "NUMBER" or not isinstance(token.value, int):
                raise SqlSyntaxError("LIMIT expects an integer", token.position)
            limit = token.value

        for_update = False
        if self._accept_keyword("FOR"):
            self._expect_keyword("UPDATE")
            for_update = True

        return ast.Select(
            items, table, joins, where, group_by, having, order_by, limit,
            distinct, for_update,
        )

    def _select_item(self) -> ast.SelectItem:
        if self._accept_symbol("*"):
            return ast.SelectItem(None, None, star=True)
        # t.* ?
        token = self._peek()
        if (
            token.kind == "IDENT"
            and self.tokens[self.position + 1].kind == "SYMBOL"
            and self.tokens[self.position + 1].value == "."
            and self.tokens[self.position + 2].kind == "SYMBOL"
            and self.tokens[self.position + 2].value == "*"
        ):
            table = self._advance().value
            self._advance()
            self._advance()
            return ast.SelectItem(None, None, table_star=table)
        expr = self._expression()
        alias = None
        if self._accept_keyword("AS"):
            alias = self._expect_ident()
        elif self._peek().kind == "IDENT":
            alias = self._advance().value
        return ast.SelectItem(expr, alias)

    def _table_ref(self) -> ast.TableRef:
        name = self._expect_ident()
        alias = None
        if self._accept_keyword("AS"):
            alias = self._expect_ident()
        elif self._peek().kind == "IDENT":
            alias = self._advance().value
        return ast.TableRef(name, alias)

    # -- expressions (precedence climbing) ---------------------------------------------

    def _expression(self) -> ast.Expr:
        return self._or_expr()

    def _or_expr(self) -> ast.Expr:
        left = self._and_expr()
        while self._accept_keyword("OR"):
            left = ast.BinaryOp("or", left, self._and_expr())
        return left

    def _and_expr(self) -> ast.Expr:
        left = self._not_expr()
        while self._accept_keyword("AND"):
            left = ast.BinaryOp("and", left, self._not_expr())
        return left

    def _not_expr(self) -> ast.Expr:
        if self._accept_keyword("NOT"):
            return ast.UnaryOp("not", self._not_expr())
        return self._comparison()

    def _comparison(self) -> ast.Expr:
        left = self._additive()
        token = self._peek()
        if token.kind == "SYMBOL" and token.value in ("=", "!=", "<>", "<", "<=", ">", ">="):
            op = self._advance().value
            if op == "<>":
                op = "!="
            return ast.BinaryOp(op, left, self._additive())
        negated = bool(self._accept_keyword("NOT"))
        if self._accept_keyword("IN"):
            self._expect_symbol("(")
            items = [self._expression()]
            while self._accept_symbol(","):
                items.append(self._expression())
            self._expect_symbol(")")
            return ast.InList(left, items, negated)
        if self._accept_keyword("BETWEEN"):
            low = self._additive()
            self._expect_keyword("AND")
            high = self._additive()
            return ast.Between(left, low, high, negated)
        if self._accept_keyword("LIKE"):
            return ast.Like(left, self._additive(), negated)
        if self._accept_keyword("IS"):
            inner_negated = bool(self._accept_keyword("NOT"))
            self._expect_keyword("NULL")
            return ast.IsNull(left, inner_negated)
        if negated:
            raise SqlSyntaxError(
                "dangling NOT before non-predicate", token.position
            )
        return left

    def _additive(self) -> ast.Expr:
        left = self._multiplicative()
        while True:
            if self._accept_symbol("+"):
                left = ast.BinaryOp("+", left, self._multiplicative())
            elif self._accept_symbol("-"):
                left = ast.BinaryOp("-", left, self._multiplicative())
            else:
                return left

    def _multiplicative(self) -> ast.Expr:
        left = self._unary()
        while True:
            if self._accept_symbol("*"):
                left = ast.BinaryOp("*", left, self._unary())
            elif self._accept_symbol("/"):
                left = ast.BinaryOp("/", left, self._unary())
            else:
                return left

    def _unary(self) -> ast.Expr:
        if self._accept_symbol("-"):
            return ast.UnaryOp("-", self._unary())
        return self._primary()

    def _primary(self) -> ast.Expr:
        token = self._peek()
        if token.kind == "NUMBER" or token.kind == "STRING":
            self._advance()
            return ast.Literal(token.value)
        if token.kind == "KEYWORD":
            if token.value in ("TRUE", "FALSE"):
                self._advance()
                return ast.Literal(token.value == "TRUE")
            if token.value == "NULL":
                self._advance()
                return ast.Literal(None)
            raise SqlSyntaxError(
                f"unexpected keyword {token.value!r} in expression",
                token.position,
            )
        if token.kind == "SYMBOL" and token.value == "?":
            self._advance()
            param = ast.Param(self._param_count)
            self._param_count += 1
            return param
        if token.kind == "SYMBOL" and token.value == "(":
            self._advance()
            expr = self._expression()
            self._expect_symbol(")")
            return expr
        if token.kind == "IDENT":
            name = self._advance().value
            if self._accept_symbol("("):  # function call
                if self._accept_symbol("*"):
                    self._expect_symbol(")")
                    return ast.FuncCall(name, [], star=True)
                distinct = bool(self._accept_keyword("DISTINCT"))
                args = []
                if not self._check_symbol(")"):
                    args.append(self._expression())
                    while self._accept_symbol(","):
                        args.append(self._expression())
                self._expect_symbol(")")
                return ast.FuncCall(name, args, distinct=distinct)
            if self._accept_symbol("."):
                column = self._expect_ident()
                return ast.ColumnRef(name, column)
            return ast.ColumnRef(None, name)
        raise SqlSyntaxError(
            f"unexpected token {token.value!r} in expression", token.position
        )


def parse(sql: str) -> ast.Statement:
    """Parse one SQL statement."""
    return Parser(sql).parse()
