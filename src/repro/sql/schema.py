"""Schema objects and the shared catalog.

The catalog (table and index definitions) lives in the storage system
(``meta`` space, one cell) so that every processing node sees the same
schema -- the schema is data like everything else in a shared-data
architecture.  DDL installs a new catalog version with a conditional
write; concurrent DDL therefore conflicts instead of corrupting.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Sequence, Tuple

from repro import effects
from repro.core.spaces import CATALOG_KEY, META_SPACE
from repro.errors import ConflictError, SchemaError
from repro.sql.types import ColumnType, coerce


class Column:
    """One column definition."""

    __slots__ = ("name", "type", "nullable", "default")

    def __init__(
        self,
        name: str,
        column_type: ColumnType,
        nullable: bool = True,
        default: Any = None,
    ):
        self.name = name.lower()
        self.type = column_type
        self.nullable = nullable
        self.default = default

    def __repr__(self) -> str:
        return f"Column({self.name}, {self.type.value})"


class IndexDef:
    """A (possibly unique) index over one or more columns."""

    __slots__ = ("index_id", "name", "table_name", "columns", "unique")

    def __init__(
        self,
        index_id: int,
        name: str,
        table_name: str,
        columns: Sequence[str],
        unique: bool = False,
    ):
        self.index_id = index_id
        self.name = name.lower()
        self.table_name = table_name.lower()
        self.columns = tuple(column.lower() for column in columns)
        self.unique = unique

    def __repr__(self) -> str:
        kind = "unique index" if self.unique else "index"
        return f"<{kind} {self.name} on {self.table_name}{self.columns}>"


class TableSchema:
    """One table: columns, primary key, attached indexes."""

    def __init__(
        self,
        table_id: int,
        name: str,
        columns: Sequence[Column],
        primary_key: Sequence[str],
    ):
        self.table_id = table_id
        self.name = name.lower()
        self.columns = list(columns)
        self.primary_key = tuple(column.lower() for column in primary_key)
        self._positions: Dict[str, int] = {
            column.name: position for position, column in enumerate(self.columns)
        }
        if len(self._positions) != len(self.columns):
            raise SchemaError(f"table {name}: duplicate column names")
        for key_column in self.primary_key:
            if key_column not in self._positions:
                raise SchemaError(
                    f"table {name}: primary key column {key_column!r} undefined"
                )
        self._pk_positions: Tuple[int, ...] = tuple(
            self._positions[name] for name in self.primary_key
        )
        # index name -> column positions, filled lazily by index_key_of
        self._index_positions: Dict[str, Tuple[int, ...]] = {}
        self.indexes: List[IndexDef] = []

    # -- column access ---------------------------------------------------------

    def position(self, column_name: str) -> int:
        try:
            return self._positions[column_name.lower()]
        except KeyError:
            raise SchemaError(f"table {self.name}: no column {column_name!r}")

    def has_column(self, column_name: str) -> bool:
        return column_name.lower() in self._positions

    def column(self, column_name: str) -> Column:
        return self.columns[self.position(column_name)]

    @property
    def column_names(self) -> List[str]:
        return [column.name for column in self.columns]

    # -- rows --------------------------------------------------------------------

    def make_row(self, values: Dict[str, Any]) -> Tuple[Any, ...]:
        """Build a storage payload tuple from a column->value mapping,
        applying defaults, NOT NULL checks, and type coercion."""
        positions = self._positions
        # Callers overwhelmingly pass already-lowercased column names, in
        # which case ``values`` can be used directly without rebuilding it.
        for name in values:
            if name not in positions:
                provided = {name.lower(): value for name, value in values.items()}
                for lowered in provided:
                    if lowered not in positions:
                        raise SchemaError(
                            f"table {self.name}: no column {lowered!r}"
                        )
                break
        else:
            provided = values
        row: List[Any] = []
        append = row.append
        for column in self.columns:
            name = column.name
            if name in provided:
                value = coerce(provided[name], column.type, name)
            else:
                value = column.default
            if value is None and not column.nullable:
                raise SchemaError(
                    f"table {self.name}: column {name} is NOT NULL"
                )
            append(value)
        return tuple(row)

    def row_to_dict(self, row: Tuple[Any, ...]) -> Dict[str, Any]:
        return {column.name: value for column, value in zip(self.columns, row)}

    def key_of(self, row: Tuple[Any, ...]) -> Tuple[Any, ...]:
        """Primary-key tuple of a payload row."""
        return tuple([row[position] for position in self._pk_positions])

    def index_key_of(self, index: IndexDef, row: Tuple[Any, ...]) -> Tuple[Any, ...]:
        positions = self._index_positions.get(index.name)
        if positions is None:
            positions = tuple(self._positions[name] for name in index.columns)
            self._index_positions[index.name] = positions
        return tuple([row[position] for position in positions])

    @property
    def primary_index(self) -> IndexDef:
        for index in self.indexes:
            if index.columns == self.primary_key and index.unique:
                return index
        raise SchemaError(f"table {self.name}: primary index missing")

    def __repr__(self) -> str:
        return f"<TableSchema {self.name}#{self.table_id} {len(self.columns)} cols>"


class Catalog:
    """All schema state; persisted as one cell in the meta space."""

    def __init__(self) -> None:
        self.tables: Dict[str, TableSchema] = {}
        self.indexes: Dict[str, IndexDef] = {}
        self.next_table_id = 1
        self.next_index_id = 1

    # -- DDL ------------------------------------------------------------------

    def define_table(
        self,
        name: str,
        columns: Sequence[Column],
        primary_key: Sequence[str],
    ) -> TableSchema:
        lowered = name.lower()
        if lowered in self.tables:
            raise SchemaError(f"table {name!r} already exists")
        schema = TableSchema(self.next_table_id, lowered, columns, primary_key)
        self.next_table_id += 1
        self.tables[lowered] = schema
        # The primary key is always backed by a unique index.
        self.define_index(f"{lowered}_pk", lowered, primary_key, unique=True)
        return schema

    def define_index(
        self,
        name: str,
        table_name: str,
        columns: Sequence[str],
        unique: bool = False,
    ) -> IndexDef:
        lowered = name.lower()
        if lowered in self.indexes:
            raise SchemaError(f"index {name!r} already exists")
        schema = self.table(table_name)
        for column in columns:
            schema.position(column)  # validates existence
        index = IndexDef(self.next_index_id, lowered, table_name, columns, unique)
        self.next_index_id += 1
        self.indexes[lowered] = index
        schema.indexes.append(index)
        return index

    def drop_table(self, name: str) -> TableSchema:
        lowered = name.lower()
        schema = self.table(lowered)
        del self.tables[lowered]
        for index in schema.indexes:
            self.indexes.pop(index.name, None)
        return schema

    # -- lookup -----------------------------------------------------------------

    def table(self, name: str) -> TableSchema:
        try:
            return self.tables[name.lower()]
        except KeyError:
            raise SchemaError(f"unknown table {name!r}")

    def has_table(self, name: str) -> bool:
        return name.lower() in self.tables

    # -- persistence ---------------------------------------------------------------

    def save(self) -> Generator:
        """Persist the catalog unconditionally (bootstrap path)."""
        yield effects.Put(META_SPACE, CATALOG_KEY, self)

    def save_if_version(self, expected_version: int) -> Generator:
        """Conditional persist: concurrent DDL conflicts instead of racing."""
        ok, version = yield effects.PutIfVersion(
            META_SPACE, CATALOG_KEY, self, expected_version
        )
        if not ok:
            raise ConflictError("catalog changed concurrently; retry DDL")
        return version

    @staticmethod
    def load() -> Generator:
        """Fetch the shared catalog; returns (catalog, cell_version).

        The catalog is deep-copied so that a PN mutating its local copy
        (during DDL, before the conditional write) cannot alias the stored
        object -- values in the store are immutable by convention.
        """
        value, version = yield effects.Get(META_SPACE, CATALOG_KEY)
        if value is None:
            return Catalog(), 0
        import copy

        return copy.deepcopy(value), version

    def approx_size(self) -> int:
        return 256 + 128 * len(self.tables) + 64 * len(self.indexes)
