"""Sessions: the SQL entry point bound to one processing node.

A session owns (at most) one open transaction and executes SQL statements
through the parser/executor.  Without an explicit BEGIN, every statement
runs in its own auto-committed transaction -- including multi-row
INSERTs, which commit atomically.

DDL is executed against the shared catalog with a conditional write, so
concurrent DDL from two processing nodes conflicts cleanly.
"""

from __future__ import annotations

import contextlib
from typing import Any, Callable, Dict, Generator, Iterator, List, Optional, Sequence

from repro import effects
from repro.core.processing_node import ProcessingNode
from repro.core.spaces import DATA_SPACE
from repro.core.transaction import Transaction
from repro.errors import InvalidState, SqlPlanError, TellError, TransactionAborted
from repro.sql import ast_nodes as ast
from repro.sql.executor import ResultSet, StatementExecutor
from repro.sql.parser import parse
from repro.sql.schema import Catalog, Column, TableSchema
from repro.sql.table import IndexManager, Table
from repro.sql.types import ColumnType


class Session:
    """One client connection to a processing node."""

    def __init__(self, pn: ProcessingNode, runner, index_manager=None):  # noqa: ANN001
        self.pn = pn
        self.runner = runner
        self.indexes = index_manager if index_manager is not None else IndexManager()
        self._catalog: Optional[Catalog] = None
        self._catalog_version = 0
        self._txn: Optional[Transaction] = None
        self._closed = False

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """End the session, rolling back any open transaction.

        Idempotent; further SQL on the session raises :class:`InvalidState`.
        """
        if self._closed:
            return
        self._closed = True
        if self._txn is not None:
            txn, self._txn = self._txn, None
            with contextlib.suppress(TellError):
                self.runner.run(txn.abort())
            self.pn.stats.aborted += 1

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()

    # -- catalog -----------------------------------------------------------------

    @property
    def catalog(self) -> Catalog:
        if self._catalog is None:
            self.refresh_catalog()
        return self._catalog

    def refresh_catalog(self) -> None:
        self._catalog, self._catalog_version = self.runner.run(Catalog.load())

    # -- transactions ---------------------------------------------------------------

    @property
    def in_transaction(self) -> bool:
        return self._txn is not None

    def begin(self) -> Transaction:
        if self._closed:
            raise InvalidState("session is closed")
        if self._txn is not None:
            raise InvalidState("a transaction is already open on this session")
        self._txn = self.runner.run(self.pn.begin())
        return self._txn

    def commit(self) -> None:
        if self._txn is None:
            raise InvalidState("no open transaction")
        txn, self._txn = self._txn, None
        try:
            self.runner.run(txn.commit())
            self.pn.stats.committed += 1
        except TransactionAborted:
            self.pn.stats.aborted += 1
            raise

    def rollback(self) -> None:
        if self._txn is None:
            raise InvalidState("no open transaction")
        txn, self._txn = self._txn, None
        self.runner.run(txn.abort())
        self.pn.stats.aborted += 1

    @contextlib.contextmanager
    def transaction(self) -> Iterator[Transaction]:
        """Scope a transaction: commit on clean exit, rollback on error.

        The body may also end the transaction itself (explicit
        ``COMMIT``/``ROLLBACK`` or :meth:`commit`/:meth:`rollback`); the
        exit step is then a no-op.  Exceptions propagate unmasked after
        the rollback.
        """
        txn = self.begin()
        try:
            yield txn
        except BaseException:
            if self._txn is txn:
                self.rollback()
            raise
        if self._txn is txn:
            self.commit()

    # -- SQL ---------------------------------------------------------------------------

    def execute(self, sql: str, params: Sequence[Any] = ()) -> ResultSet:
        """Parse and execute one SQL statement."""
        if self._closed:
            raise InvalidState("session is closed")
        statement = parse(sql)
        if isinstance(statement, ast.BeginStmt):
            self.begin()
            return ResultSet([], [], 0)
        if isinstance(statement, ast.CommitStmt):
            self.commit()
            return ResultSet([], [], 0)
        if isinstance(statement, ast.RollbackStmt):
            self.rollback()
            return ResultSet([], [], 0)
        if isinstance(statement, (ast.CreateTable, ast.CreateIndex, ast.DropTable)):
            if self._txn is not None:
                raise InvalidState("DDL cannot run inside a transaction")
            return self._execute_ddl(statement)
        return self._execute_dml(statement, params)

    def query(self, sql: str, params: Sequence[Any] = ()) -> List[Dict[str, Any]]:
        """Convenience: execute and return rows as dicts."""
        return self.execute(sql, params).dicts()

    def executemany(
        self, sql: str, parameter_sets: Sequence[Sequence[Any]]
    ) -> int:
        """Execute one parameterized statement per parameter set inside a
        single transaction; returns the total rowcount."""
        own_transaction = self._txn is None
        if own_transaction:
            self.begin()
        total = 0
        try:
            for params in parameter_sets:
                total += self.execute(sql, params).rowcount
        except Exception:
            if own_transaction and self._txn is not None:
                self.rollback()
            raise
        if own_transaction:
            self.commit()
        return total

    def explain(self, sql: str, params: Sequence[Any] = ()) -> List[str]:
        """Describe the plan the executor would choose (no execution)."""
        statement = parse(sql)

        def table_provider(name: str) -> Table:
            # No transaction needed: EXPLAIN only touches the catalog.
            return Table(self.catalog.table(name), None, self.indexes)

        executor = StatementExecutor(table_provider, params)
        return executor.explain(statement)

    # -- table handles for power users --------------------------------------------------

    def table(self, name: str) -> Table:
        """Record-level handle bound to the session's open transaction."""
        if self._txn is None:
            raise InvalidState("open a transaction before using table handles")
        return Table(self.catalog.table(name), self._txn, self.indexes)

    # -- internals -----------------------------------------------------------------------

    def _execute_dml(
        self, statement: ast.Statement, params: Sequence[Any]
    ) -> ResultSet:
        autocommit = self._txn is None
        if autocommit:
            txn = self.runner.run(self.pn.begin())
        else:
            txn = self._txn

        def table_provider(name: str) -> Table:
            return Table(self.catalog.table(name), txn, self.indexes)

        executor = StatementExecutor(table_provider, params)
        try:
            if isinstance(statement, ast.Select):
                result = self.runner.run(executor.select(statement))
            elif isinstance(statement, ast.Insert):
                result = self.runner.run(executor.insert(statement))
            elif isinstance(statement, ast.Update):
                result = self.runner.run(executor.update(statement))
            elif isinstance(statement, ast.Delete):
                result = self.runner.run(executor.delete(statement))
            else:
                raise SqlPlanError(f"unsupported statement {statement!r}")
        except Exception:
            if autocommit:
                try:
                    self.runner.run(txn.abort())
                except Exception:
                    pass
                self.pn.stats.aborted += 1
            raise
        if autocommit:
            try:
                self.runner.run(txn.commit())
                self.pn.stats.committed += 1
            except TransactionAborted:
                self.pn.stats.aborted += 1
                raise
        return result

    def _execute_ddl(self, statement: ast.Statement) -> ResultSet:
        self.refresh_catalog()
        catalog = self._catalog
        assert catalog is not None
        if isinstance(statement, ast.CreateTable):
            columns = [
                Column(
                    clause.name,
                    ColumnType.from_sql(clause.type_name),
                    nullable=clause.nullable,
                    default=clause.default,
                )
                for clause in statement.columns
            ]
            schema = catalog.define_table(
                statement.name, columns, statement.primary_key
            )
            unique_indexes = [
                catalog.define_index(
                    f"{schema.name}_{clause.name}_unique", schema.name,
                    [clause.name], unique=True,
                )
                for clause in statement.columns
                if clause.unique and [clause.name] != list(schema.primary_key)
            ]
            self.runner.run(catalog.save_if_version(self._catalog_version))
            self.runner.run(self.indexes.create_storage(schema.primary_index))
            for index in unique_indexes:
                self.runner.run(self.indexes.create_storage(index))
        elif isinstance(statement, ast.CreateIndex):
            index = catalog.define_index(
                statement.name, statement.table, statement.columns,
                unique=statement.unique,
            )
            self.runner.run(catalog.save_if_version(self._catalog_version))
            self.runner.run(self.indexes.create_storage(index))
            self._backfill_index(catalog.table(statement.table), index.name)
        elif isinstance(statement, ast.DropTable):
            schema = catalog.drop_table(statement.name)
            self.runner.run(catalog.save_if_version(self._catalog_version))
            self.runner.run(_purge_table_data(schema))
        else:
            raise SqlPlanError(f"unsupported DDL {statement!r}")
        self.refresh_catalog()
        return ResultSet([], [], 0)

    def _backfill_index(self, schema: TableSchema, index_name: str) -> None:
        """Populate a freshly created index from existing rows."""
        index = next(i for i in schema.indexes if i.name == index_name)
        txn = self.runner.run(self.pn.begin())
        try:
            table = Table(schema, txn, self.indexes)
            rows = self.runner.run(table.scan())
            tree = self.indexes.tree(index)
            from repro.sql.keyenc import encode_key

            for rid, row in rows:
                key = encode_key(schema.index_key_of(index, row))
                self.runner.run(tree.insert(key, rid, unique=index.unique))
        except BaseException:
            # A failed backfill (e.g. DuplicateKey under a unique index)
            # must not leak an open transaction: an abandoned tid would
            # hold the lowest-active-version down and block GC forever.
            with contextlib.suppress(TellError):
                self.runner.run(txn.abort())
            raise
        self.runner.run(txn.commit())


def _purge_table_data(schema: TableSchema) -> Generator:
    """Remove a dropped table's record cells from the store."""
    rows = yield effects.Scan(DATA_SPACE, (schema.table_id,), (schema.table_id + 1,))
    for key, _record, _cell_version in rows:
        yield effects.Delete(DATA_SPACE, key)
