"""Table handles: rows, primary/secondary index maintenance, entry GC.

A :class:`Table` binds a table schema to a running transaction and offers
record-level operations.  It encodes the paper's index discipline:

* indexes are *version-unaware* (Section 5.3.2): one entry per record,
  inserted only when the indexed key value appears, never on every
  version;
* entries are **not** removed when a row is deleted or its key changes --
  older snapshots still reach old versions through them.  Instead, reads
  garbage-collect entries once no surviving version carries the key
  (``V_a \\ G = ∅``, Section 5.4);
* a read through an index may fetch records that turn out invisible to
  the snapshot; those reads are wasted but harmless, exactly as the paper
  accepts.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Iterable, List, Optional, Sequence, Tuple

from repro import effects
from repro.core.record import TOMBSTONE, VersionedRecord
from repro.core.spaces import DATA_SPACE, data_key
from repro.core.transaction import Transaction
from repro.errors import DuplicateKey, KeyNotFound
from repro.index.btree import MAX_RID, DistributedBTree
from repro.sql.keyenc import ABOVE_ALL_RANK, encode_key
from repro.sql.schema import IndexDef, TableSchema


class IndexManager:
    """Per-processing-node registry of B+tree handles (with their caches)."""

    def __init__(self, max_entries: int = 64):
        self.max_entries = max_entries
        self._trees: Dict[int, DistributedBTree] = {}

    def tree(self, index: IndexDef) -> DistributedBTree:
        tree = self._trees.get(index.index_id)
        if tree is None:
            tree = DistributedBTree(index.index_id, max_entries=self.max_entries)
            self._trees[index.index_id] = tree
        return tree

    def create_storage(self, index: IndexDef) -> Generator:
        yield from self.tree(index).create()


class Table:
    """Row operations for one table inside one transaction."""

    def __init__(
        self,
        schema: TableSchema,
        txn: Transaction,
        indexes: IndexManager,
    ):
        self.schema = schema
        self.txn = txn
        self.indexes = indexes

    # -- writes -----------------------------------------------------------------

    def insert(self, values: Dict[str, Any]) -> Generator:
        """Insert a row; returns the allocated rid.

        Unique indexes are pre-checked (with dead-entry GC) here and
        enforced again at commit time by the B+tree itself, which catches
        races between concurrent inserters.
        """
        row = self.schema.make_row(values)
        for index in self.schema.indexes:
            if index.unique:
                yield from self._check_unique(index, row)
        rid = yield from self.txn.pn.allocate_rid(self.schema.table_id)
        self.txn.insert(data_key(self.schema.table_id, rid), row)
        for index in self.schema.indexes:
            key = encode_key(self.schema.index_key_of(index, row))
            self.txn.index_ops.append(
                ("insert", self.indexes.tree(index), key, rid, index.unique)
            )
        return rid

    def update_by_rid(self, rid: int, changes: Dict[str, Any]) -> Generator:
        """Apply column changes to the row at ``rid``."""
        key = data_key(self.schema.table_id, rid)
        current = yield from self.txn.read(key)
        if current is None:
            raise KeyNotFound(f"{self.schema.name}: rid {rid} not visible")
        merged = self.schema.row_to_dict(current)
        merged.update({name.lower(): value for name, value in changes.items()})
        new_row = self.schema.make_row(merged)
        yield from self.txn.update(key, new_row)
        # Indexes: only keys that changed get a *new* entry; the old entry
        # stays until GC because older versions remain reachable via it.
        for index in self.schema.indexes:
            old_key = self.schema.index_key_of(index, current)
            new_key = self.schema.index_key_of(index, new_row)
            if old_key != new_key:
                if index.unique:
                    yield from self._check_unique(index, new_row)
                self.txn.index_ops.append(
                    ("insert", self.indexes.tree(index), encode_key(new_key),
                     rid, index.unique)
                )
        return new_row

    def delete_by_rid(self, rid: int) -> Generator:
        """Delete the row (tombstone version; index entries stay for GC)."""
        key = data_key(self.schema.table_id, rid)
        yield from self.txn.delete(key)

    # -- point reads ---------------------------------------------------------------

    def get(self, pk: Sequence[Any]) -> Generator:
        """Row with the given primary key, or None.  Returns (rid, row)."""
        matches = yield from self.lookup(self.schema.primary_index, tuple(pk))
        if not matches:
            return None
        return matches[0]

    def get_many(self, pks: Sequence[Sequence[Any]]) -> Generator:
        """Batched point lookups by primary key: one batched leaf fetch
        plus one batched record fetch (Tell's request batching).

        Returns ``{pk: (rid, row) or None}``.
        """
        index = self.schema.primary_index
        tree = self.indexes.tree(index)
        pk_tuples = [tuple(pk) for pk in pks]
        encoded = {pk: encode_key(pk) for pk in pk_tuples}
        rid_map = yield from tree.lookup_many(
            [encoded[pk] for pk in pk_tuples]
        )
        storage_keys = []
        for pk in pk_tuples:
            for rid in rid_map[encoded[pk]]:
                storage_keys.append(data_key(self.schema.table_id, rid))
        rows = (yield from self.txn.read_many(storage_keys)) if storage_keys else {}
        local = self._local_rows()
        result: Dict[Tuple[Any, ...], Optional[Tuple[int, Tuple[Any, ...]]]] = {}
        for pk in pk_tuples:
            match = None
            for rid in rid_map[encoded[pk]]:
                row = rows.get(data_key(self.schema.table_id, rid))
                if row is not None and self.schema.key_of(row) == pk:
                    match = (rid, row)
                    break
            if match is None:
                for rid, row in local:
                    if self.schema.key_of(row) == pk:
                        match = (rid, row)
                        break
            result[pk] = match
        return result

    def get_for_update(self, pk: Sequence[Any]) -> Generator:
        """Point lookup that must succeed, priming the row for an update.

        The row is expected to be written by the caller before commit; if
        a strict SELECT FOR UPDATE (conflict even without a subsequent
        write) is wanted, use :meth:`lock` instead.
        """
        result = yield from self.get(pk)
        if result is None:
            raise KeyNotFound(f"{self.schema.name}: key {tuple(pk)!r} not found")
        return result

    def lock(self, pk: Sequence[Any]) -> Generator:
        """SELECT FOR UPDATE: read the row and materialize the read as a
        write so concurrent writers conflict (prevents write skew on this
        row).  Returns (rid, row); raises KeyNotFound when absent."""
        result = yield from self.get(pk)
        if result is None:
            raise KeyNotFound(f"{self.schema.name}: key {tuple(pk)!r} not found")
        rid, row = result
        yield from self.txn.read_for_update(data_key(self.schema.table_id, rid))
        return result

    def lookup(
        self, index: IndexDef, key: Tuple[Any, ...]
    ) -> Generator:
        """All visible rows whose ``index`` columns equal ``key``.

        Returns ``[(rid, row), ...]``.  Stale entries (pointing at records
        where no version carries the key any more) are garbage collected
        on the way, implementing the read-side index GC of Section 5.4.
        """
        tree = self.indexes.tree(index)
        encoded = encode_key(key)
        entries = yield from tree.range_entries((encoded,), (encoded, MAX_RID))
        rids = [entry[1] for entry in entries]
        results: List[Tuple[int, Tuple[Any, ...]]] = []
        if rids:
            keys = [data_key(self.schema.table_id, rid) for rid in rids]
            rows = yield from self.txn.read_many(keys)
            for rid, storage_key in zip(rids, keys):
                row = rows[storage_key]
                if row is not None and self.schema.index_key_of(index, row) == key:
                    results.append((rid, row))
                else:
                    yield from self._maybe_gc_entry(tree, index, key, rid)
        # Merge this transaction's own uncommitted inserts/updates, which
        # are not in the shared index yet.
        for rid, row in self._local_rows():
            if self.schema.index_key_of(index, row) == key:
                if all(existing_rid != rid for existing_rid, _ in results):
                    results.append((rid, row))
        results.sort(key=lambda pair: pair[0])
        return results

    # -- scans -----------------------------------------------------------------------

    def scan(self, pushdown: Optional["ScanFilter"] = None) -> Generator:
        """Full table scan; returns [(rid, row)] visible to the snapshot.

        With ``pushdown``, selection is executed *inside* the storage
        nodes (Section 5.2): each node resolves the snapshot-visible
        version and ships only matching rows, cutting response bandwidth
        for selective analytical queries.
        """
        if pushdown is None:
            rows = yield effects.Scan(
                DATA_SPACE, (self.schema.table_id,), (self.schema.table_id + 1,)
            )
        else:
            rows = yield effects.Scan(
                DATA_SPACE, (self.schema.table_id,), (self.schema.table_id + 1,),
                snapshot=self.txn.snapshot, scan_filter=pushdown,
            )
        if self.txn.tracks_reads:
            # Read-validating isolation (WSI/SSI): every key the scan
            # observed joins the read set, including pushdown-filtered
            # rows resolved inside the storage nodes.
            self.txn.note_scanned([key for key, _value, _cell in rows])
        visible: List[Tuple[int, Tuple[Any, ...]]] = []
        local = dict(self._local_rows())
        deleted = self._locally_deleted_rids()
        for (table_id, rid), value, _cell_version in rows:
            if rid in local or rid in deleted:
                continue  # superseded by the transaction-local state
            if pushdown is None:
                index = value.visible_index(self.txn.snapshot)
                if index >= 0:
                    payload = value.payloads[index]
                    if payload is not TOMBSTONE:
                        visible.append((rid, payload))
            else:
                visible.append((rid, value))  # already resolved at the SN
        for rid, row in local.items():
            if pushdown is None or pushdown.matches(row):
                visible.append((rid, row))
        visible.sort(key=lambda pair: pair[0])
        return visible

    def make_filter(
        self, conjuncts: Sequence[Tuple[str, str, Any]]
    ) -> "ScanFilter":
        """Build a storage-side filter from (column, op, constant) triples."""
        from repro.store.pushdown import ScanFilter

        return ScanFilter([
            (self.schema.position(column), op, value)
            for column, op, value in conjuncts
        ])

    def index_range(
        self,
        index: IndexDef,
        low: Optional[Tuple[Any, ...]],
        high: Optional[Tuple[Any, ...]],
        include_high: bool = False,
        limit: Optional[int] = None,
    ) -> Generator:
        """Rows whose index key lies in [low, high) (or (..] with
        ``include_high``); returns [(rid, row)] in index order."""
        tree = self.indexes.tree(index)
        low_entry = (encode_key(low),) if low is not None else ((),)
        if high is None:
            high_entry = None
        elif include_high:
            # Inclusive bounds may be key *prefixes* (e.g. the first two
            # columns of a three-column index): extend the bound with a
            # component above every real encoded component so that all
            # longer keys sharing the prefix are covered.
            high_entry = (encode_key(high) + ((ABOVE_ALL_RANK,),),)
        else:
            high_entry = (encode_key(high),)
        entries = yield from tree.range_entries(low_entry, high_entry, limit=None)
        results: List[Tuple[int, Tuple[Any, ...]]] = []
        if entries:
            keys = [data_key(self.schema.table_id, entry[1]) for entry in entries]
            rows = yield from self.txn.read_many(keys)
            for entry, storage_key in zip(entries, keys):
                row = rows[storage_key]
                if row is not None and encode_key(
                    self.schema.index_key_of(index, row)
                ) == entry[0]:
                    results.append((entry[1], row))
                    if limit is not None and len(results) >= limit:
                        break
        low_enc = encode_key(low) if low is not None else None
        high_enc = encode_key(high) if high is not None else None
        for rid, row in self._local_rows():
            row_key = encode_key(self.schema.index_key_of(index, row))
            in_low = low_enc is None or row_key >= low_enc
            if high_enc is None:
                in_high = True
            elif include_high:
                # Prefix-aware inclusive bound: compare the truncation.
                in_high = row_key[: len(high_enc)] <= high_enc
            else:
                in_high = row_key < high_enc
            if in_low and in_high and all(r != rid for r, _ in results):
                results.append((rid, row))
        results.sort(
            key=lambda pair: (
                encode_key(self.schema.index_key_of(index, pair[1])), pair[0]
            )
        )
        if limit is not None:
            results = results[:limit]
        return results

    # -- internals ---------------------------------------------------------------------

    def _local_rows(self) -> List[Tuple[int, Tuple[Any, ...]]]:
        """Rows written by this transaction (insert/update), excluding
        deletes; used to make a transaction read its own writes through
        table access paths."""
        rows = []
        for key, payload in self.txn.local_writes().items():
            table_id, rid = key
            if table_id == self.schema.table_id and payload is not TOMBSTONE:
                rows.append((rid, payload))
        return rows

    def _locally_deleted_rids(self) -> set:
        return {
            rid
            for (table_id, rid), payload in self.txn.local_writes().items()
            if table_id == self.schema.table_id and payload is TOMBSTONE
        }

    def _check_unique(self, index: IndexDef, row: Tuple[Any, ...]) -> Generator:
        """DuplicateKey if a live row already holds the unique key; dead
        index entries found on the way are collected."""
        key = self.schema.index_key_of(index, row)
        matches = yield from self.lookup(index, key)
        for rid, existing in matches:
            if existing is not row:
                raise DuplicateKey(
                    f"{self.schema.name}: duplicate key {key!r} on {index.name}"
                )

    def _maybe_gc_entry(
        self,
        tree: DistributedBTree,
        index: IndexDef,
        key: Tuple[Any, ...],
        rid: int,
    ) -> Generator:
        """Read-side index GC: remove the entry if no version of the
        record (that any active transaction could still see) carries the
        indexed key, i.e. V_a \\ G = ∅."""
        storage_key = data_key(self.schema.table_id, rid)
        record, _cell_version = yield effects.Get(DATA_SPACE, storage_key)
        if record is not None and self._key_still_referenced(record, index, key):
            return
        yield from tree.delete(encode_key(key), rid)

    def _key_still_referenced(
        self, record: VersionedRecord, index: IndexDef, key: Tuple[Any, ...]
    ) -> bool:
        surviving = record.collect_garbage(self.txn.lav)
        for payload in surviving.payloads:
            if payload is TOMBSTONE:
                continue
            if self.schema.index_key_of(index, payload) == key:
                return True
        return False
