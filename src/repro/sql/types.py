"""Column types and value coercion for the relational layer."""

from __future__ import annotations

import enum
from typing import Any, Optional

from repro.errors import SchemaError


class ColumnType(enum.Enum):
    """The SQL types the reproduction supports (enough for TPC-C)."""

    INT = "int"
    BIGINT = "bigint"
    FLOAT = "float"
    DECIMAL = "decimal"   # stored as float; TPC-C money columns
    TEXT = "text"
    BOOL = "bool"
    TIMESTAMP = "timestamp"  # stored as float seconds

    @classmethod
    def from_sql(cls, name: str) -> "ColumnType":
        normalized = name.strip().upper()
        aliases = {
            "INT": cls.INT,
            "INTEGER": cls.INT,
            "SMALLINT": cls.INT,
            "BIGINT": cls.BIGINT,
            "FLOAT": cls.FLOAT,
            "REAL": cls.FLOAT,
            "DOUBLE": cls.FLOAT,
            "DECIMAL": cls.DECIMAL,
            "NUMERIC": cls.DECIMAL,
            "TEXT": cls.TEXT,
            "VARCHAR": cls.TEXT,
            "CHAR": cls.TEXT,
            "STRING": cls.TEXT,
            "BOOL": cls.BOOL,
            "BOOLEAN": cls.BOOL,
            "TIMESTAMP": cls.TIMESTAMP,
            "DATETIME": cls.TIMESTAMP,
        }
        base = normalized.split("(")[0].strip()
        try:
            return aliases[base]
        except KeyError:
            raise SchemaError(f"unsupported column type {name!r}")


def coerce(value: Any, column_type: ColumnType, column_name: str = "?") -> Any:
    """Validate/convert ``value`` for storage in a column.

    ``None`` passes through (nullability is checked separately).

    Runs once per column per row built, so the well-typed cases (an
    ``int`` in an INT column, a ``str`` in TEXT, ...) are resolved with
    two identity checks before the general validation ladder.
    """
    if value is None:
        return None
    cls = value.__class__
    if column_type is ColumnType.INT or column_type is ColumnType.BIGINT:
        if cls is int:
            return value
        if isinstance(value, bool) or not isinstance(value, int):
            if isinstance(value, float) and value.is_integer():
                return int(value)
            raise SchemaError(
                f"column {column_name}: expected integer, got {value!r}"
            )
        return value
    if (
        column_type is ColumnType.FLOAT
        or column_type is ColumnType.DECIMAL
        or column_type is ColumnType.TIMESTAMP
    ):
        if cls is float:
            return value
        if cls is int:
            return float(value)
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise SchemaError(
                f"column {column_name}: expected numeric, got {value!r}"
            )
        return float(value)
    if column_type is ColumnType.TEXT:
        if cls is str or isinstance(value, str):
            return value
        raise SchemaError(
            f"column {column_name}: expected text, got {value!r}"
        )
    if column_type is ColumnType.BOOL:
        if cls is bool or isinstance(value, bool):
            return value
        raise SchemaError(
            f"column {column_name}: expected bool, got {value!r}"
        )
    raise SchemaError(f"unknown column type {column_type!r}")
