"""Column types and value coercion for the relational layer."""

from __future__ import annotations

import enum
from typing import Any, Optional

from repro.errors import SchemaError


class ColumnType(enum.Enum):
    """The SQL types the reproduction supports (enough for TPC-C)."""

    INT = "int"
    BIGINT = "bigint"
    FLOAT = "float"
    DECIMAL = "decimal"   # stored as float; TPC-C money columns
    TEXT = "text"
    BOOL = "bool"
    TIMESTAMP = "timestamp"  # stored as float seconds

    @classmethod
    def from_sql(cls, name: str) -> "ColumnType":
        normalized = name.strip().upper()
        aliases = {
            "INT": cls.INT,
            "INTEGER": cls.INT,
            "SMALLINT": cls.INT,
            "BIGINT": cls.BIGINT,
            "FLOAT": cls.FLOAT,
            "REAL": cls.FLOAT,
            "DOUBLE": cls.FLOAT,
            "DECIMAL": cls.DECIMAL,
            "NUMERIC": cls.DECIMAL,
            "TEXT": cls.TEXT,
            "VARCHAR": cls.TEXT,
            "CHAR": cls.TEXT,
            "STRING": cls.TEXT,
            "BOOL": cls.BOOL,
            "BOOLEAN": cls.BOOL,
            "TIMESTAMP": cls.TIMESTAMP,
            "DATETIME": cls.TIMESTAMP,
        }
        base = normalized.split("(")[0].strip()
        try:
            return aliases[base]
        except KeyError:
            raise SchemaError(f"unsupported column type {name!r}")


def coerce(value: Any, column_type: ColumnType, column_name: str = "?") -> Any:
    """Validate/convert ``value`` for storage in a column.

    ``None`` passes through (nullability is checked separately).
    """
    if value is None:
        return None
    if column_type in (ColumnType.INT, ColumnType.BIGINT):
        if isinstance(value, bool) or not isinstance(value, int):
            if isinstance(value, float) and value.is_integer():
                return int(value)
            raise SchemaError(
                f"column {column_name}: expected integer, got {value!r}"
            )
        return value
    if column_type in (ColumnType.FLOAT, ColumnType.DECIMAL, ColumnType.TIMESTAMP):
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise SchemaError(
                f"column {column_name}: expected numeric, got {value!r}"
            )
        return float(value)
    if column_type is ColumnType.TEXT:
        if not isinstance(value, str):
            raise SchemaError(
                f"column {column_name}: expected text, got {value!r}"
            )
        return value
    if column_type is ColumnType.BOOL:
        if not isinstance(value, bool):
            raise SchemaError(
                f"column {column_name}: expected bool, got {value!r}"
            )
        return value
    raise SchemaError(f"unknown column type {column_type!r}")
