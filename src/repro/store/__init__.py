"""Shared storage substrate: a replicated in-memory record store.

This package plays the role RAMCloud plays for Tell in the paper: a
strongly consistent, in-memory key-value store with atomic get/put,
LL/SC conditional writes, range/hash partitioning across storage nodes,
synchronous replication for fault tolerance, and a management node that
detects failures and fails partitions over to replicas.
"""

from repro.store.cell import Cell, approx_size
from repro.store.node import StorageNode
from repro.store.partition import HashPartitioner, PartitionMap
from repro.store.cluster import StorageCluster
from repro.store.management import ManagementNode

__all__ = [
    "Cell",
    "HashPartitioner",
    "ManagementNode",
    "PartitionMap",
    "StorageCluster",
    "StorageNode",
    "approx_size",
]
